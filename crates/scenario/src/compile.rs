//! Validation and lowering: [`ScenarioSpec`] → [`ScenarioSystem`].
//!
//! Compilation resolves every name to a dense id (queues, events,
//! variables, fault/branch points, functions), type-checks every
//! expression (`int` / `dur` / `bool`), builds the
//! [`csnake_inject::Registry`] through the same [`RegistryBuilder`] the
//! hand-coded targets use — declaration order fixes the dense ids, so a
//! faithful port produces an identical registry — and evaluates each
//! workload's configuration into a concrete variable table. Every
//! diagnostic carries the span of the offending name.
//!
//! The registry layer requires `&'static str` names; scenario strings are
//! interned through a process-global leak cache, so loading
//! the same spec repeatedly (lint loops, test suites) does not grow
//! memory.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, OnceLock};

use csnake_core::{KnownBug, TargetSystem, TestCase};
use csnake_inject::{
    BoolSource, BranchId, ExceptionCategory, FaultId, FnId, InjectionPlan, Registry,
    RegistryBuilder, RunTrace, TestId,
};
use csnake_sim::VirtualTime;

use crate::ast::*;
use crate::interp;
use crate::ScenarioError;

/// Interns a string into the process-global leak cache, deduplicating so
/// repeated loads of the same spec never leak twice.
pub(crate) fn intern(s: &str) -> &'static str {
    static CACHE: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut cache = CACHE
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .expect("intern cache poisoned");
    if let Some(existing) = cache.get(s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    cache.insert(leaked);
    leaked
}

/// Expression/value types of the scenario language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Ty {
    /// Signed integer.
    Int,
    /// Virtual-time duration.
    Dur,
    /// Boolean.
    Bool,
}

impl std::fmt::Display for Ty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Ty::Int => "int",
            Ty::Dur => "dur",
            Ty::Bool => "bool",
        })
    }
}

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Value {
    /// Integer.
    Int(i64),
    /// Duration.
    Dur(VirtualTime),
    /// Boolean.
    Bool(bool),
}

/// Lowered expression: all names resolved to dense indices.
#[derive(Debug, Clone)]
pub(crate) enum CExpr {
    Int(i64),
    Dur(VirtualTime),
    Bool(bool),
    /// Workload variable, by variable-table index.
    Var(usize),
    Len(usize),
    Empty(usize),
    Submitted(usize),
    Age,
    Retries,
    Now,
    Not(Box<CExpr>),
    Bin(BinOp, Box<CExpr>, Box<CExpr>),
}

/// Lowered statement.
#[derive(Debug, Clone)]
pub(crate) enum CStmt {
    Advance(CExpr),
    Frame(FnId, Vec<CStmt>),
    Branch(BranchId, CExpr),
    Guard(FaultId),
    ThrowIf(FaultId, CExpr),
    Check {
        point: FaultId,
        error_when: bool,
        value: CExpr,
        onerr: Vec<CStmt>,
    },
    Flag(&'static str),
    ConstLoop {
        point: FaultId,
        bound: u32,
        body: Vec<CStmt>,
    },
    DrainLoop {
        point: FaultId,
        queue: usize,
        body: Vec<CStmt>,
    },
    Submit {
        queue: usize,
        every: CExpr,
    },
    Push(usize),
    Requeue(usize),
    Repeat(CExpr, Vec<CStmt>),
    If(CExpr, Vec<CStmt>, Vec<CStmt>),
    Try(Vec<CStmt>, Vec<CStmt>),
    Sched {
        event: usize,
        after: CExpr,
    },
}

/// Lowered handler: the implicit call frame plus the body.
#[derive(Debug, Clone)]
pub(crate) struct CHandler {
    pub func: FnId,
    pub body: Vec<CStmt>,
}

/// Lowered workload-setup statement (all expressions pre-evaluated).
#[derive(Debug, Clone)]
pub(crate) enum CSetup {
    Spawn {
        event: usize,
        count: u64,
        every: VirtualTime,
    },
    Sched {
        event: usize,
        after: VirtualTime,
    },
    Arrive {
        event: usize,
        arrival: csnake_workload::Arrival,
        count: u64,
    },
}

/// Lowered workload: test metadata, variable table, horizon, schedule.
#[derive(Debug, Clone)]
pub(crate) struct CWorkload {
    pub test: TestCase,
    /// Values of the scenario's variables, indexed by variable id.
    pub vars: Vec<Value>,
    pub horizon: VirtualTime,
    pub setup: Vec<CSetup>,
}

/// The fully-lowered scenario the interpreter executes.
pub(crate) struct Compiled {
    pub name: &'static str,
    pub registry: Arc<Registry>,
    pub queue_count: usize,
    pub handlers: Vec<CHandler>,
    pub workloads: Vec<CWorkload>,
    pub bugs: Vec<KnownBug>,
    /// Shape-family sidecar per bug (same order as `bugs`).
    pub bug_shapes: Vec<Option<&'static str>>,
    pub expected: Vec<&'static str>,
}

/// A scenario compiled into a runnable target system.
///
/// Plugs into everything a hand-coded target does: staged
/// [`csnake_core::Session`]s, snapshots, the evaluation binaries, the
/// baseline fuzzers.
pub struct ScenarioSystem {
    compiled: Compiled,
}

impl ScenarioSystem {
    /// The spec's declared name.
    pub fn scenario_name(&self) -> &'static str {
        self.compiled.name
    }

    /// Ground-truth shape family of a declared bug (`bug … shape <family>`),
    /// as recorded by the scenario generator. `None` when the bug id is
    /// unknown or carries no sidecar (every hand-written corpus bug).
    pub fn bug_shape(&self, bug_id: &str) -> Option<&'static str> {
        self.compiled
            .bugs
            .iter()
            .position(|b| b.id == bug_id)
            .and_then(|i| self.compiled.bug_shapes[i])
    }

    /// Looks up a declared fault point by its label.
    pub fn point_by_label(&self, label: &str) -> Option<FaultId> {
        self.compiled
            .registry
            .points()
            .iter()
            .find(|p| p.label == label)
            .map(|p| p.id)
    }
}

impl TargetSystem for ScenarioSystem {
    fn name(&self) -> &'static str {
        self.compiled.name
    }

    fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.compiled.registry)
    }

    fn tests(&self) -> Vec<TestCase> {
        self.compiled.workloads.iter().map(|w| w.test).collect()
    }

    fn run(&self, test: TestId, plan: Option<InjectionPlan>, seed: u64) -> RunTrace {
        interp::run(&self.compiled, test, plan, seed)
    }

    fn known_bugs(&self) -> Vec<KnownBug> {
        self.compiled.bugs.clone()
    }

    fn expected_contention_labels(&self) -> Vec<&'static str> {
        self.compiled.expected.clone()
    }
}

/// Validates and lowers a parsed spec into a runnable target system.
pub fn compile(spec: &ScenarioSpec) -> Result<ScenarioSystem, ScenarioError> {
    Compiler::new(spec)?.finish()
}

/// Kind summary used for point-reference checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PKind {
    Loop,
    ConstLoop(u32),
    Throw,
    Negation(bool),
}

struct Compiler<'a> {
    spec: &'a ScenarioSpec,
    queues: HashMap<&'a str, usize>,
    components: HashSet<&'a str>,
    fn_ids: HashMap<&'a str, FnId>,
    points: HashMap<&'a str, (FaultId, PKind)>,
    branch_ids: HashMap<&'a str, BranchId>,
    events: HashMap<&'a str, usize>,
    /// Variable table: name → index; types inferred from the first
    /// workload binding each variable.
    vars: Vec<(&'a str, Ty)>,
    var_ids: HashMap<&'a str, usize>,
    registry: Registry,
}

impl<'a> Compiler<'a> {
    fn new(spec: &'a ScenarioSpec) -> Result<Self, ScenarioError> {
        // --- structural prerequisites -----------------------------------
        if spec.workloads.is_empty() {
            return Err(ScenarioError::at(
                spec.name.span,
                format!("scenario `{}` declares no workloads", spec.name),
            ));
        }
        if spec.points.is_empty() {
            return Err(ScenarioError::at(
                spec.name.span,
                format!("scenario `{}` declares no fault points", spec.name),
            ));
        }
        if spec.handlers.is_empty() {
            return Err(ScenarioError::at(
                spec.name.span,
                format!("scenario `{}` declares no handlers", spec.name),
            ));
        }

        // --- components and queues --------------------------------------
        let mut components = HashSet::new();
        let mut queues = HashMap::new();
        for c in &spec.components {
            if !components.insert(c.name.name.as_str()) {
                return Err(ScenarioError::at(
                    c.name.span,
                    format!("duplicate component `{}`", c.name),
                ));
            }
            for q in &c.queues {
                let id = queues.len();
                if queues.insert(q.name.as_str(), id).is_some() {
                    return Err(ScenarioError::at(
                        q.span,
                        format!("duplicate queue `{q}` (queue names are scenario-global)"),
                    ));
                }
            }
        }

        // --- functions ---------------------------------------------------
        let mut builder = RegistryBuilder::new(intern(&spec.name.name));
        let mut fn_ids = HashMap::new();
        for f in &spec.fns {
            if fn_ids.contains_key(f.alias.name.as_str()) {
                return Err(ScenarioError::at(
                    f.alias.span,
                    format!("duplicate fn alias `{}`", f.alias),
                ));
            }
            fn_ids.insert(f.alias.name.as_str(), builder.func(intern(&f.path)));
        }

        // --- fault and branch points ------------------------------------
        let mut points: HashMap<&str, (FaultId, PKind)> = HashMap::new();
        let mut branch_ids: HashMap<&str, BranchId> = HashMap::new();
        let lookup_fn = |fn_ids: &HashMap<&str, FnId>, func: &Ident| {
            fn_ids
                .get(func.name.as_str())
                .copied()
                .ok_or_else(|| ScenarioError::at(func.span, format!("unknown fn alias `{func}`")))
        };
        for p in &spec.points {
            if points.contains_key(p.label.name.as_str()) {
                return Err(ScenarioError::at(
                    p.label.span,
                    format!("duplicate point id `{}`", p.label),
                ));
            }
            let f = lookup_fn(&fn_ids, &p.func)?;
            let label = intern(&p.label.name);
            let (id, pk) = match &p.kind {
                PointKind::Loop { io, .. } => {
                    (builder.workload_loop(f, p.line, *io, label), PKind::Loop)
                }
                PointKind::ConstLoop { bound } => (
                    builder.const_loop(f, p.line, *bound, label),
                    PKind::ConstLoop(*bound),
                ),
                PointKind::Throw {
                    class,
                    category,
                    test_only,
                } => {
                    let id = if *test_only {
                        builder.test_only_throw(f, p.line, intern(class), label)
                    } else {
                        let cat = match category {
                            ThrowCategory::System => ExceptionCategory::SystemSpecific,
                            ThrowCategory::Runtime => ExceptionCategory::ExplicitRuntime,
                            ThrowCategory::Reflection => ExceptionCategory::Reflection,
                            ThrowCategory::Security => ExceptionCategory::Security,
                        };
                        builder.throw_point(f, p.line, intern(class), cat, label)
                    };
                    (id, PKind::Throw)
                }
                PointKind::LibCall { class } => (
                    builder.lib_call(f, p.line, intern(class), label),
                    PKind::Throw,
                ),
                PointKind::Negation { error_when, source } => {
                    let src = match source {
                        NegSource::Detector => BoolSource::ErrorDetector,
                        NegSource::Jdk => BoolSource::JdkUtility,
                        NegSource::Config => BoolSource::FinalConfigOnly,
                        NegSource::Constant => BoolSource::ConstantOrUnused,
                        NegSource::Primitive => BoolSource::PrimitiveUtility,
                    };
                    (
                        builder.negation_point(f, p.line, *error_when, src, label),
                        PKind::Negation(*error_when),
                    )
                }
            };
            points.insert(p.label.name.as_str(), (id, pk));
        }
        // Parent/sibling links, now that every loop id exists.
        for p in &spec.points {
            if let PointKind::Loop {
                parent, sibling, ..
            } = &p.kind
            {
                let child = points[p.label.name.as_str()].0;
                for (what, target, link) in [("parent", parent, true), ("sibling", sibling, false)]
                {
                    let Some(target) = target else { continue };
                    let Some((tid, tk)) = points.get(target.name.as_str()).copied() else {
                        return Err(ScenarioError::at(
                            target.span,
                            format!("unknown {what} loop `{target}`"),
                        ));
                    };
                    if !matches!(tk, PKind::Loop | PKind::ConstLoop(_)) {
                        return Err(ScenarioError::at(
                            target.span,
                            format!("{what} `{target}` is not a loop point"),
                        ));
                    }
                    if link {
                        builder.set_parent(child, tid);
                    } else {
                        builder.set_sibling(child, tid);
                    }
                }
            }
        }
        for b in &spec.branches {
            if points.contains_key(b.label.name.as_str())
                || branch_ids.contains_key(b.label.name.as_str())
            {
                return Err(ScenarioError::at(
                    b.label.span,
                    format!("duplicate point id `{}`", b.label),
                ));
            }
            let f = lookup_fn(&fn_ids, &b.func)?;
            branch_ids.insert(b.label.name.as_str(), builder.branch(f, b.line));
        }

        // --- events ------------------------------------------------------
        let mut events = HashMap::new();
        for (i, h) in spec.handlers.iter().enumerate() {
            if events.insert(h.event.name.as_str(), i).is_some() {
                return Err(ScenarioError::at(
                    h.event.span,
                    format!("duplicate handler for event `{}`", h.event),
                ));
            }
            if let Some(c) = &h.component {
                if !components.contains(c.name.as_str()) {
                    return Err(ScenarioError::at(
                        c.span,
                        format!("unknown component `{c}`"),
                    ));
                }
            }
        }

        // --- variable table from workload bindings ----------------------
        let mut vars: Vec<(&str, Ty)> = Vec::new();
        let mut var_ids: HashMap<&str, usize> = HashMap::new();
        let mut workload_names = HashSet::new();
        let mut bound: HashMap<&str, HashSet<&str>> = HashMap::new();
        for wl in &spec.workloads {
            if !workload_names.insert(wl.name.name.as_str()) {
                return Err(ScenarioError::at(
                    wl.name.span,
                    format!("duplicate workload `{}`", wl.name),
                ));
            }
            let seen = bound.entry(wl.name.name.as_str()).or_default();
            for (var, value) in &wl.lets {
                if !seen.insert(var.name.as_str()) {
                    return Err(ScenarioError::at(
                        var.span,
                        format!("workload `{}` binds `${var}` twice", wl.name),
                    ));
                }
                let ty = match value {
                    Expr::Int(..) => Ty::Int,
                    Expr::Dur(..) => Ty::Dur,
                    _ => unreachable!("parser restricts workload lets to literals"),
                };
                match var_ids.get(var.name.as_str()) {
                    None => {
                        var_ids.insert(var.name.as_str(), vars.len());
                        vars.push((var.name.as_str(), ty));
                    }
                    Some(&id) => {
                        if vars[id].1 != ty {
                            return Err(ScenarioError::at(
                                var.span,
                                format!(
                                    "`${var}` is {} here but {} in an earlier workload",
                                    ty, vars[id].1
                                ),
                            ));
                        }
                    }
                }
            }
        }
        // Every workload must bind every variable (handlers are shared).
        for wl in &spec.workloads {
            let seen = &bound[wl.name.name.as_str()];
            for (name, _) in &vars {
                if !seen.contains(name) {
                    return Err(ScenarioError::at(
                        wl.name.span,
                        format!("workload `{}` does not bind `${name}`", wl.name),
                    ));
                }
            }
        }

        Ok(Compiler {
            spec,
            queues,
            components,
            fn_ids,
            points,
            branch_ids,
            events,
            vars,
            var_ids,
            registry: builder.build(),
        })
    }

    fn queue(&self, q: &Ident) -> Result<usize, ScenarioError> {
        self.queues.get(q.name.as_str()).copied().ok_or_else(|| {
            ScenarioError::at(
                q.span,
                format!("unknown queue `{q}` (no component declares it)"),
            )
        })
    }

    fn event(&self, e: &Ident) -> Result<usize, ScenarioError> {
        self.events.get(e.name.as_str()).copied().ok_or_else(|| {
            ScenarioError::at(
                e.span,
                format!("unknown event `{e}` (no handler declares it)"),
            )
        })
    }

    fn point(&self, p: &Ident) -> Result<(FaultId, PKind), ScenarioError> {
        self.points
            .get(p.name.as_str())
            .copied()
            .ok_or_else(|| ScenarioError::at(p.span, format!("unknown fault point `{p}`")))
    }

    /// Type-checks and lowers an expression. `in_item` gates
    /// `age(item)`/`retries(item)`.
    fn expr(&self, e: &Expr, in_item: bool) -> Result<(CExpr, Ty), ScenarioError> {
        match e {
            Expr::Int(n, _) => Ok((CExpr::Int(*n), Ty::Int)),
            Expr::Dur(us, _) => Ok((CExpr::Dur(VirtualTime::from_micros(*us)), Ty::Dur)),
            Expr::Bool(b, _) => Ok((CExpr::Bool(*b), Ty::Bool)),
            Expr::Var(v) => {
                let Some(&id) = self.var_ids.get(v.name.as_str()) else {
                    return Err(ScenarioError::at(
                        v.span,
                        format!("unknown variable `${v}` (no workload binds it)"),
                    ));
                };
                Ok((CExpr::Var(id), self.vars[id].1))
            }
            Expr::Len(q) => Ok((CExpr::Len(self.queue(q)?), Ty::Int)),
            Expr::Empty(q) => Ok((CExpr::Empty(self.queue(q)?), Ty::Bool)),
            Expr::Submitted(q) => Ok((CExpr::Submitted(self.queue(q)?), Ty::Int)),
            Expr::AgeItem(m) => {
                if !in_item {
                    return Err(ScenarioError::at(
                        m.0,
                        "`age(item)` is only available inside a drain loop",
                    ));
                }
                Ok((CExpr::Age, Ty::Dur))
            }
            Expr::RetriesItem(m) => {
                if !in_item {
                    return Err(ScenarioError::at(
                        m.0,
                        "`retries(item)` is only available inside a drain loop",
                    ));
                }
                Ok((CExpr::Retries, Ty::Int))
            }
            Expr::Now(_) => Ok((CExpr::Now, Ty::Dur)),
            Expr::Not(inner) => {
                let (c, ty) = self.expr(inner, in_item)?;
                if ty != Ty::Bool {
                    return Err(self.type_err(inner, Ty::Bool, ty));
                }
                Ok((CExpr::Not(Box::new(c)), Ty::Bool))
            }
            Expr::Bin { op, lhs, rhs } => {
                let (cl, tl) = self.expr(lhs, in_item)?;
                let (cr, tr) = self.expr(rhs, in_item)?;
                let out = match op {
                    BinOp::And | BinOp::Or => {
                        if tl != Ty::Bool {
                            return Err(self.type_err(lhs, Ty::Bool, tl));
                        }
                        if tr != Ty::Bool {
                            return Err(self.type_err(rhs, Ty::Bool, tr));
                        }
                        Ty::Bool
                    }
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
                        if tl != tr || tl == Ty::Bool {
                            return Err(ScenarioError::at(
                                expr_span(lhs),
                                format!("cannot compare {tl} with {tr}"),
                            ));
                        }
                        Ty::Bool
                    }
                    BinOp::Add | BinOp::Sub => {
                        if tl != tr || tl == Ty::Bool {
                            return Err(ScenarioError::at(
                                expr_span(lhs),
                                format!("cannot apply +/- to {tl} and {tr}"),
                            ));
                        }
                        tl
                    }
                    BinOp::Mul => match (tl, tr) {
                        (Ty::Int, Ty::Int) => Ty::Int,
                        (Ty::Dur, Ty::Int) | (Ty::Int, Ty::Dur) => Ty::Dur,
                        _ => {
                            return Err(ScenarioError::at(
                                expr_span(lhs),
                                format!("cannot multiply {tl} by {tr}"),
                            ))
                        }
                    },
                };
                Ok((CExpr::Bin(*op, Box::new(cl), Box::new(cr)), out))
            }
        }
    }

    fn type_err(&self, e: &Expr, want: Ty, got: Ty) -> ScenarioError {
        ScenarioError::at(expr_span(e), format!("expected {want}, found {got}"))
    }

    fn typed_expr(&self, e: &Expr, want: Ty, in_item: bool) -> Result<CExpr, ScenarioError> {
        let (c, ty) = self.expr(e, in_item)?;
        if ty != want {
            return Err(self.type_err(e, want, ty));
        }
        Ok(c)
    }

    fn block(&self, stmts: &[Stmt], in_item: bool) -> Result<Vec<CStmt>, ScenarioError> {
        stmts.iter().map(|s| self.stmt(s, in_item)).collect()
    }

    fn stmt(&self, s: &Stmt, in_item: bool) -> Result<CStmt, ScenarioError> {
        Ok(match s {
            Stmt::Advance(e) => CStmt::Advance(self.typed_expr(e, Ty::Dur, in_item)?),
            Stmt::Frame { func, body } => {
                let f = self
                    .fn_ids
                    .get(func.name.as_str())
                    .copied()
                    .ok_or_else(|| {
                        ScenarioError::at(func.span, format!("unknown fn alias `{func}`"))
                    })?;
                CStmt::Frame(f, self.block(body, in_item)?)
            }
            Stmt::Branch { point, cond } => {
                let Some(&b) = self.branch_ids.get(point.name.as_str()) else {
                    return Err(ScenarioError::at(
                        point.span,
                        format!("unknown branch point `{point}`"),
                    ));
                };
                CStmt::Branch(b, self.typed_expr(cond, Ty::Bool, in_item)?)
            }
            Stmt::Guard(p) => {
                let (id, kind) = self.point(p)?;
                if kind != PKind::Throw {
                    return Err(ScenarioError::at(
                        p.span,
                        format!("`guard {p}` requires a throw/libcall point"),
                    ));
                }
                CStmt::Guard(id)
            }
            Stmt::ThrowIf { point, cond } => {
                let (id, kind) = self.point(point)?;
                if kind != PKind::Throw {
                    return Err(ScenarioError::at(
                        point.span,
                        format!("`throwif {point}` requires a throw/libcall point"),
                    ));
                }
                CStmt::ThrowIf(id, self.typed_expr(cond, Ty::Bool, in_item)?)
            }
            Stmt::Check {
                point,
                value,
                onerr,
            } => {
                let (id, kind) = self.point(point)?;
                let PKind::Negation(error_when) = kind else {
                    return Err(ScenarioError::at(
                        point.span,
                        format!("`check {point}` requires a negation point"),
                    ));
                };
                CStmt::Check {
                    point: id,
                    error_when,
                    value: self.typed_expr(value, Ty::Bool, in_item)?,
                    onerr: self.block(onerr, in_item)?,
                }
            }
            Stmt::Flag(name) => CStmt::Flag(intern(name)),
            Stmt::ConstLoop { point, body } => {
                let (id, kind) = self.point(point)?;
                let PKind::ConstLoop(bound) = kind else {
                    return Err(ScenarioError::at(
                        point.span,
                        format!("`constloop {point}` requires a constant-bound loop point"),
                    ));
                };
                CStmt::ConstLoop {
                    point: id,
                    bound,
                    body: self.block(body, in_item)?,
                }
            }
            Stmt::DrainLoop { point, queue, body } => {
                let (id, kind) = self.point(point)?;
                if kind != PKind::Loop {
                    return Err(ScenarioError::at(
                        point.span,
                        format!("`loop {point} drain` requires a workload-dependent loop point"),
                    ));
                }
                CStmt::DrainLoop {
                    point: id,
                    queue: self.queue(queue)?,
                    body: self.block(body, true)?,
                }
            }
            Stmt::Submit { queue, every } => CStmt::Submit {
                queue: self.queue(queue)?,
                every: self.typed_expr(every, Ty::Dur, in_item)?,
            },
            Stmt::Push(q) => CStmt::Push(self.queue(q)?),
            Stmt::Requeue(q) => {
                if !in_item {
                    return Err(ScenarioError::at(
                        q.span,
                        "`requeue` is only available inside a drain loop",
                    ));
                }
                CStmt::Requeue(self.queue(q)?)
            }
            Stmt::Repeat { count, body } => CStmt::Repeat(
                self.typed_expr(count, Ty::Int, in_item)?,
                self.block(body, in_item)?,
            ),
            Stmt::If { cond, then, els } => CStmt::If(
                self.typed_expr(cond, Ty::Bool, in_item)?,
                self.block(then, in_item)?,
                self.block(els, in_item)?,
            ),
            Stmt::Try { body, onerr } => {
                CStmt::Try(self.block(body, in_item)?, self.block(onerr, in_item)?)
            }
            Stmt::Sched { event, after } => CStmt::Sched {
                event: self.event(event)?,
                after: self.typed_expr(after, Ty::Dur, in_item)?,
            },
        })
    }

    /// Rejects run-state references (queues, the clock, items) in an
    /// expression evaluated at workload scope, where no simulation exists
    /// yet. Anything that passes is safe for [`interp::eval_const`].
    fn check_const(&self, e: &Expr) -> Result<(), ScenarioError> {
        let err = |span, what: &str| {
            Err(ScenarioError::at(
                span,
                format!(
                    "`{what}` is not available in workload scope \
                     (horizon/spawn/sched take literals and $vars only)"
                ),
            ))
        };
        match e {
            Expr::Int(..) | Expr::Dur(..) | Expr::Bool(..) | Expr::Var(_) => Ok(()),
            Expr::Len(q) => err(q.span, "len"),
            Expr::Empty(q) => err(q.span, "empty"),
            Expr::Submitted(q) => err(q.span, "submitted"),
            Expr::AgeItem(m) => err(m.0, "age(item)"),
            Expr::RetriesItem(m) => err(m.0, "retries(item)"),
            Expr::Now(m) => err(m.0, "now"),
            Expr::Not(inner) => self.check_const(inner),
            Expr::Bin { lhs, rhs, .. } => {
                self.check_const(lhs)?;
                self.check_const(rhs)
            }
        }
    }

    /// Evaluates a workload-scope expression (vars + literals only).
    fn workload_value(&self, e: &Expr, want: Ty, vars: &[Value]) -> Result<Value, ScenarioError> {
        self.check_const(e)?;
        let c = self.typed_expr(e, want, false)?;
        Ok(interp::eval_const(&c, vars))
    }

    fn finish(self) -> Result<ScenarioSystem, ScenarioError> {
        let spec = self.spec;

        // Handlers.
        let mut handlers = Vec::with_capacity(spec.handlers.len());
        for h in &spec.handlers {
            let f = self
                .fn_ids
                .get(h.func.name.as_str())
                .copied()
                .ok_or_else(|| {
                    ScenarioError::at(h.func.span, format!("unknown fn alias `{}`", h.func))
                })?;
            handlers.push(CHandler {
                func: f,
                body: self.block(&h.body, false)?,
            });
        }

        // Workloads.
        let mut workloads = Vec::with_capacity(spec.workloads.len());
        for (i, wl) in spec.workloads.iter().enumerate() {
            let mut vars = vec![Value::Int(0); self.vars.len()];
            for (var, value) in &wl.lets {
                let id = self.var_ids[var.name.as_str()];
                vars[id] = match value {
                    Expr::Int(n, _) => Value::Int(*n),
                    Expr::Dur(us, _) => Value::Dur(VirtualTime::from_micros(*us)),
                    _ => unreachable!("parser restricts workload lets to literals"),
                };
            }
            let horizon = match self.workload_value(&wl.horizon, Ty::Dur, &vars)? {
                Value::Dur(d) => d,
                _ => unreachable!("typed_expr enforced dur"),
            };
            let mut setup = Vec::with_capacity(wl.setup.len());
            for s in &wl.setup {
                setup.push(match s {
                    SetupStmt::Spawn {
                        event,
                        count,
                        every,
                    } => {
                        let ev = self.event(event)?;
                        let count = match self.workload_value(count, Ty::Int, &vars)? {
                            Value::Int(n) => n.max(0) as u64,
                            _ => unreachable!(),
                        };
                        let every = match self.workload_value(every, Ty::Dur, &vars)? {
                            Value::Dur(d) => d,
                            _ => unreachable!(),
                        };
                        CSetup::Spawn {
                            event: ev,
                            count,
                            every,
                        }
                    }
                    SetupStmt::Sched { event, after } => {
                        let ev = self.event(event)?;
                        let after = match self.workload_value(after, Ty::Dur, &vars)? {
                            Value::Dur(d) => d,
                            _ => unreachable!(),
                        };
                        CSetup::Sched { event: ev, after }
                    }
                    SetupStmt::Arrive {
                        event,
                        process,
                        count,
                    } => {
                        let ev = self.event(event)?;
                        let rate = |e: &Expr| -> Result<f64, ScenarioError> {
                            match self.workload_value(e, Ty::Int, &vars)? {
                                Value::Int(n) => Ok(n.max(0) as f64),
                                _ => unreachable!(),
                            }
                        };
                        let dur = |e: &Expr| -> Result<VirtualTime, ScenarioError> {
                            match self.workload_value(e, Ty::Dur, &vars)? {
                                Value::Dur(d) => Ok(d),
                                _ => unreachable!(),
                            }
                        };
                        let arrival = match process {
                            ArrivalSpec::Poisson { rate: r } => csnake_workload::Arrival::Poisson {
                                rate_per_sec: rate(r)?,
                            },
                            ArrivalSpec::Bursty { rate: r, on, off } => {
                                csnake_workload::Arrival::Bursty {
                                    rate_per_sec: rate(r)?,
                                    on: dur(on)?,
                                    off: dur(off)?,
                                }
                            }
                            ArrivalSpec::Diurnal { low, high, period } => {
                                csnake_workload::Arrival::Diurnal {
                                    low_per_sec: rate(low)?,
                                    high_per_sec: rate(high)?,
                                    period: dur(period)?,
                                }
                            }
                        };
                        let count = match self.workload_value(count, Ty::Int, &vars)? {
                            Value::Int(n) => n.max(0) as u64,
                            _ => unreachable!(),
                        };
                        CSetup::Arrive {
                            event: ev,
                            arrival,
                            count,
                        }
                    }
                });
            }
            workloads.push(CWorkload {
                test: TestCase {
                    id: TestId(i as u32),
                    name: intern(&wl.name.name),
                    description: intern(&wl.description),
                },
                vars,
                horizon,
                setup,
            });
        }

        // Ground truth.
        let mut bugs = Vec::with_capacity(spec.bugs.len());
        let mut bug_shapes = Vec::with_capacity(spec.bugs.len());
        let mut bug_ids = HashSet::new();
        for b in &spec.bugs {
            if !bug_ids.insert(b.id.name.as_str()) {
                return Err(ScenarioError::at(
                    b.id.span,
                    format!("duplicate bug `{}`", b.id),
                ));
            }
            let mut labels = Vec::with_capacity(b.labels.len());
            for l in &b.labels {
                self.point(l)?;
                labels.push(intern(&l.name));
            }
            bugs.push(KnownBug {
                id: intern(&b.id.name),
                jira: intern(&b.jira),
                summary: intern(&b.summary),
                labels,
            });
            bug_shapes.push(b.shape.as_ref().map(|s| intern(&s.name)));
        }
        let mut expected = Vec::with_capacity(spec.expected_contention.len());
        for l in &spec.expected_contention {
            let (_, kind) = self.point(l)?;
            if !matches!(kind, PKind::Loop | PKind::ConstLoop(_)) {
                return Err(ScenarioError::at(
                    l.span,
                    format!("expected_contention label `{l}` is not a loop point"),
                ));
            }
            expected.push(intern(&l.name));
        }

        let _ = &self.components;
        Ok(ScenarioSystem {
            compiled: Compiled {
                name: intern(&spec.name.name),
                registry: Arc::new(self.registry),
                queue_count: self.queues.len(),
                handlers,
                workloads,
                bugs,
                bug_shapes,
                expected,
            },
        })
    }
}

/// Best-effort span of an expression, for type errors.
fn expr_span(e: &Expr) -> Span {
    match e {
        Expr::Var(i) | Expr::Len(i) | Expr::Empty(i) | Expr::Submitted(i) => i.span,
        Expr::Int(_, m) | Expr::Dur(_, m) | Expr::Bool(_, m) => m.0,
        Expr::AgeItem(m) | Expr::RetriesItem(m) => m.0,
        Expr::Not(inner) => expr_span(inner),
        Expr::Bin { lhs, .. } => expr_span(lhs),
        Expr::Now(m) => m.0,
    }
}

/// Validates a spec without building the interpreter: parse + compile,
/// reporting the first error. Used by the `scenario_lint` tool (which
/// lives in `csnake-gen`, alongside the generated-batch lint mode).
pub fn validate(spec: &ScenarioSpec) -> Result<(), ScenarioError> {
    compile(spec).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_str;

    fn compile_src(src: &str) -> Result<ScenarioSystem, ScenarioError> {
        compile(&parse_str(src)?)
    }

    const OK_SRC: &str = r#"
        scenario demo
        component S { queue q }
        fn f = "X.f"
        fn g = "X.g"
        loop l at f:1 io
        throw t at g:2 class "IOException" category system
        negation n at g:3 error_when true source detector
        branchpoint br at f:4
        handler T in S fn f {
          branch br not empty(q)
          loop l drain q {
            try { frame g { guard t throwif t age(item) > 5s } } onerr { requeue q }
          }
          check n ok len(q) < 10 onerr { flag "bad" }
          sched T after 1s
        }
        workload w "desc" {
          let n = 3
          horizon 30s
          spawn T count $n every 10ms
        }
        bug demo-1 jira "J" summary "s" labels [l, t]
    "#;

    #[test]
    fn valid_scenario_compiles_into_a_target() {
        let sys = compile_src(OK_SRC).unwrap();
        assert_eq!(sys.name(), "demo");
        assert_eq!(sys.registry().points().len(), 3);
        assert_eq!(sys.registry().branches().len(), 1);
        assert_eq!(sys.tests().len(), 1);
        assert_eq!(sys.known_bugs()[0].labels, vec!["l", "t"]);
        assert_eq!(sys.point_by_label("t"), Some(FaultId(1)));
    }

    #[test]
    fn interning_deduplicates() {
        let a = intern("same-string-for-intern-test");
        let b = intern("same-string-for-intern-test");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn duplicate_point_id_is_rejected_with_span() {
        let err = compile_src(
            "scenario d\nfn f = \"X.f\"\nloop l at f:1\nloop l at f:2\n\
             handler T fn f { sched T after 1s }\nworkload w \"d\" { horizon 1s }",
        )
        .map(|_| ())
        .unwrap_err();
        assert!(err.message.contains("duplicate point id"), "{err}");
        assert_eq!(err.span.unwrap(), Span { line: 4, col: 6 });
    }

    #[test]
    fn guard_on_a_loop_point_is_a_kind_error() {
        let src = OK_SRC.replace("guard t", "guard l");
        let err = compile_src(&src).map(|_| ()).unwrap_err();
        assert!(err.message.contains("requires a throw"), "{err}");
    }

    #[test]
    fn unbound_variable_is_rejected_naming_the_workload() {
        let src = OK_SRC.replace("let n = 3", "let m = 3").replace("$n", "$m");
        // Now add a second workload missing the binding.
        let src = format!("{src}\nworkload w2 \"d\" {{ horizon 1s sched T after 1ms }}");
        let err = compile_src(&src).map(|_| ()).unwrap_err();
        assert!(err.message.contains("does not bind `$m`"), "{err}");
    }

    #[test]
    fn type_errors_are_reported() {
        let src = OK_SRC.replace("check n ok len(q) < 10", "check n ok len(q) + 10");
        let err = compile_src(&src).map(|_| ()).unwrap_err();
        assert!(err.message.contains("expected bool, found int"), "{err}");
    }
}
