//! File loading, `include` resolution, the bundled corpus, and the
//! scenario-aware target resolver.
//!
//! A scenario file may `include "relative/path"` fragments (shared decoy
//! inventories, common handler libraries); the loader splices each
//! fragment's items at the directive's position and rejects include
//! cycles with the span of the offending directive.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use csnake_core::{CsnakeError, TargetSystem};

use crate::ast::{Item, ScenarioSpec};
use crate::compile::{compile, ScenarioSystem};
use crate::parser::{assemble, parse_items};
use crate::ScenarioError;

/// File extension of scenario specs.
pub const SCENARIO_EXT: &str = "csnake-scn";

/// Parses a self-contained source string (no `include`s) into a spec.
pub fn parse_str(src: &str) -> Result<ScenarioSpec, ScenarioError> {
    assemble(parse_items(src)?)
}

/// Loads, include-resolves and parses a scenario file into a spec.
pub fn load_spec_file(path: impl AsRef<Path>) -> Result<ScenarioSpec, ScenarioError> {
    let path = path.as_ref();
    let mut stack = Vec::new();
    let items = load_items(path, &mut stack)?;
    assemble(items).map_err(|e| e.with_path(path))
}

/// Loads and compiles a scenario file into a runnable target system.
pub fn load_file(path: impl AsRef<Path>) -> Result<ScenarioSystem, ScenarioError> {
    let path = path.as_ref();
    let spec = load_spec_file(path)?;
    compile(&spec).map_err(|e| e.with_path(path))
}

fn read_source(path: &Path) -> Result<String, ScenarioError> {
    std::fs::read_to_string(path).map_err(|e| {
        ScenarioError::general(format!("cannot read scenario file: {e}")).with_path(path)
    })
}

/// Stable identity of a file for cycle detection; canonicalization
/// follows symlinks so `a.scn -> b.scn -> a.scn` is caught regardless of
/// how the paths are spelled.
fn file_key(path: &Path) -> PathBuf {
    std::fs::canonicalize(path).unwrap_or_else(|_| path.to_path_buf())
}

fn load_items(path: &Path, stack: &mut Vec<PathBuf>) -> Result<Vec<Item>, ScenarioError> {
    let key = file_key(path);
    if stack.contains(&key) {
        let chain: Vec<String> = stack
            .iter()
            .map(|p| p.display().to_string())
            .chain([key.display().to_string()])
            .collect();
        return Err(ScenarioError::general(format!(
            "cyclic include: {}",
            chain.join(" -> ")
        )));
    }
    stack.push(key);
    let src = read_source(path)?;
    let raw = parse_items(&src).map_err(|e| e.with_path(path))?;
    let mut out = Vec::with_capacity(raw.len());
    for item in raw {
        match item {
            Item::Include { path: rel, span } => {
                let target = path.parent().unwrap_or_else(|| Path::new(".")).join(&rel);
                let mut included = load_items(&target, stack).map_err(|mut e| {
                    if e.span.is_none() {
                        e.span = Some(span);
                    }
                    if e.path.is_none() {
                        e = e.with_path(path);
                    }
                    e
                })?;
                out.append(&mut included);
            }
            other => out.push(other),
        }
    }
    stack.pop();
    Ok(out)
}

/// The bundled scenario corpus directory: `$CSNAKE_SCENARIO_DIR` when
/// set, otherwise the workspace's `scenarios/` directory.
pub fn corpus_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CSNAKE_SCENARIO_DIR") {
        return PathBuf::from(dir);
    }
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios"))
}

/// Parses every `*.csnake-scn` file in the corpus, keyed by declared
/// scenario name, in deterministic (name) order.
pub fn corpus_specs() -> Result<BTreeMap<String, (PathBuf, ScenarioSpec)>, ScenarioError> {
    corpus_specs_in(&corpus_dir())
}

/// Like [`corpus_specs`] for an explicit directory.
pub fn corpus_specs_in(
    dir: &Path,
) -> Result<BTreeMap<String, (PathBuf, ScenarioSpec)>, ScenarioError> {
    let mut out = BTreeMap::new();
    let entries = std::fs::read_dir(dir).map_err(|e| {
        ScenarioError::general(format!("cannot read scenario directory: {e}")).with_path(dir)
    })?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|x| x.to_str()) == Some(SCENARIO_EXT))
        .collect();
    paths.sort();
    for path in paths {
        let spec = load_spec_file(&path)?;
        let name = spec.name.name.clone();
        if let Some((prev, _)) = out.insert(name.clone(), (path.clone(), spec)) {
            return Err(ScenarioError::general(format!(
                "duplicate scenario name `{name}` ({} and {})",
                prev.display(),
                path.display()
            )));
        }
    }
    Ok(out)
}

/// Resolves a target by name: the hand-coded builtins first, then the
/// scenario corpus by declared scenario name. Unknown names are a typed
/// [`CsnakeError::InvalidTarget`] listing every known name — builtin and
/// scenario-file-loaded alike.
pub fn by_name(name: &str) -> Result<Box<dyn TargetSystem>, CsnakeError> {
    by_name_in(name, &corpus_dir())
}

/// Like [`by_name`] with an explicit corpus directory.
pub fn by_name_in(name: &str, dir: &Path) -> Result<Box<dyn TargetSystem>, CsnakeError> {
    if let Ok(t) = csnake_targets::by_name(name) {
        return Ok(t);
    }
    // Workload pseudo-targets carry their own prefix, so a `workload:`
    // name is always theirs — let that resolver produce the hit or the
    // (more specific) unknown-pseudo-target error.
    if name.starts_with(csnake_workload::PSEUDO_TARGET_PREFIX) {
        return csnake_workload::by_name(name);
    }
    // No corpus directory at all just narrows the known-name list, but a
    // directory that fails to load (one malformed spec, duplicate names)
    // must surface: swallowing it would misreport every valid corpus
    // scenario as "unknown target".
    let corpus = if dir.is_dir() {
        corpus_specs_in(dir).map_err(|e| {
            CsnakeError::InvalidTarget(format!(
                "cannot resolve {name:?}: scenario corpus under {} failed to load: {e}",
                dir.display()
            ))
        })?
    } else {
        Default::default()
    };
    if let Some((path, spec)) = corpus.get(name) {
        let system =
            compile(spec).map_err(|e| CsnakeError::InvalidTarget(e.with_path(path).to_string()))?;
        return Ok(Box::new(system));
    }
    let mut known = csnake_targets::builtin_names()
        .into_iter()
        .map(str::to_string)
        .collect::<Vec<_>>();
    known.extend(corpus.keys().filter(|n| n.as_str() != "toy").cloned());
    known.extend(
        csnake_workload::pseudo_target_names()
            .into_iter()
            .map(str::to_string),
    );
    // Deterministic sorted order: the builtin list is declaration-ordered
    // and the corpus is directory-derived, so without the sort the message
    // depends on registration/readdir order and snapshot tests on it flap.
    known.sort();
    known.dedup();
    Err(CsnakeError::InvalidTarget(format!(
        "unknown target {name:?}; known targets: {}",
        known.join(", ")
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("csnake-scenario-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const BASE: &str = r#"
        scenario inc-demo
        component S { queue q }
        fn f = "X.f"
        include "points.scn-inc"
        handler T fn f {
          loop l drain q { advance 1ms }
          sched T after 1s
        }
        workload w "d" { horizon 5s sched T after 10ms }
    "#;

    #[test]
    fn includes_splice_fragment_items_in_place() {
        let dir = tmp_dir("inc");
        std::fs::write(dir.join("main.csnake-scn"), BASE).unwrap();
        std::fs::write(dir.join("points.scn-inc"), "loop l at f:1 io\n").unwrap();
        let spec = load_spec_file(dir.join("main.csnake-scn")).unwrap();
        assert_eq!(spec.points.len(), 1);
        assert_eq!(spec.points[0].label.name, "l");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cyclic_includes_are_rejected() {
        let dir = tmp_dir("cycle");
        std::fs::write(
            dir.join("a.csnake-scn"),
            "scenario a\ninclude \"b.scn-inc\"\n",
        )
        .unwrap();
        std::fs::write(dir.join("b.scn-inc"), "include \"c.scn-inc\"\n").unwrap();
        std::fs::write(dir.join("c.scn-inc"), "include \"b.scn-inc\"\n").unwrap();
        let err = load_spec_file(dir.join("a.csnake-scn")).unwrap_err();
        assert!(err.message.contains("cyclic include"), "{err}");
        assert!(err.message.contains("b.scn-inc"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_include_reports_the_directive_site() {
        let dir = tmp_dir("missing");
        std::fs::write(
            dir.join("a.csnake-scn"),
            "scenario a\ninclude \"nope.scn-inc\"\n",
        )
        .unwrap();
        let err = load_spec_file(dir.join("a.csnake-scn")).unwrap_err();
        assert!(err.message.contains("cannot read"), "{err}");
        assert_eq!(err.span.unwrap().line, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn broken_corpus_surfaces_instead_of_unknown_target() {
        let dir = tmp_dir("byname-broken");
        std::fs::write(dir.join("good.csnake-scn"), BASE).unwrap();
        std::fs::write(dir.join("points.scn-inc"), "loop l at f:1 io\n").unwrap();
        std::fs::write(dir.join("bad.csnake-scn"), "scenario bad\nloop l at\n").unwrap();
        let msg = match by_name_in("inc-demo", &dir) {
            Err(e) => e.to_string(),
            Ok(t) => panic!("unexpectedly resolved {:?}", t.name()),
        };
        assert!(msg.contains("corpus"), "{msg}");
        assert!(msg.contains("bad.csnake-scn"), "{msg}");
        assert!(!msg.contains("unknown target"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn by_name_prefers_builtins_and_lists_all_known() {
        let dir = tmp_dir("byname-empty");
        let toy = by_name_in("toy", &dir).unwrap();
        assert_eq!(toy.name(), "toy");
        let msg = match by_name_in("no-such-system", &dir) {
            Err(e) => e.to_string(),
            Ok(t) => panic!("unexpectedly resolved {:?}", t.name()),
        };
        assert!(msg.contains("no-such-system"), "{msg}");
        assert!(msg.contains("mini-hdfs2"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn workload_pseudo_targets_resolve_and_are_listed() {
        let dir = tmp_dir("byname-workload");
        let wl = by_name_in("workload:poisson", &dir).unwrap();
        assert_eq!(wl.name(), "workload:poisson");
        // Unknown plain names list the workload pseudo-targets next to the
        // builtins.
        let msg = match by_name_in("no-such-system", &dir) {
            Err(e) => e.to_string(),
            Ok(t) => panic!("unexpectedly resolved {:?}", t.name()),
        };
        for name in csnake_workload::pseudo_target_names() {
            assert!(msg.contains(name), "{msg}");
        }
        // An unknown `workload:` name gets the workload resolver's own,
        // more specific error.
        let msg = match by_name_in("workload:nope", &dir) {
            Err(e) => e.to_string(),
            Ok(t) => panic!("unexpectedly resolved {:?}", t.name()),
        };
        assert!(msg.contains("unknown workload pseudo-target"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
