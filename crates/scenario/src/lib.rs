//! `csnake-scenario`: fault-injection targets as data.
//!
//! Every bundled target in `csnake-targets` is a hand-coded Rust module:
//! adding a system means writing simulator code, wiring a registry and
//! deriving workload suites by hand. This crate makes new targets **data**
//! — a small declarative scenario language (files conventionally named
//! `*.csnake-scn`) plus an interpreter that compiles a parsed
//! [`ScenarioSpec`] into a full [`csnake_core::TargetSystem`] that runs on
//! the deterministic simulator and plugs into `Session`, snapshots and the
//! evaluation binaries unchanged.
//!
//! Like the snapshot codec, parsing is first-party: the workspace's
//! vendored `serde` is compile-only, so the lexer and parser are
//! hand-written and report errors with line/column spans
//! ([`ScenarioError`]).
//!
//! # Write your own scenario
//!
//! A spec has five sections. Walking through the shape of
//! `scenarios/toy.csnake-scn` (the port of the hand-coded toy target,
//! proven to produce a field-identical `DetectionReport`):
//!
//! **1. Name, components and state.** Components group the queues that
//! hold in-flight work items; every item carries its (open-loop) submit
//! time and a retry counter:
//!
//! ```text
//! scenario toy
//! component JobServer { queue jobs }
//! ```
//!
//! **2. Instrumentation inventory.** Function names are interned in
//! declaration order; fault points (loops, throws, negations) and branch
//! monitor points are declared with the source location and static
//! metadata the `csnake-analyzer` filters need — including deliberately
//! filterable decoys (`constloop`, `source jdk`, `category reflection`):
//!
//! ```text
//! fn server = "JobServer.tick"
//! fn process = "JobServer.processJob"
//! loop work_loop at server:20 io
//! constloop warmup at server:10 bound 3
//! throw job_ioe at process:42 class "IOException" category system
//! negation queue_healthy at health:7 error_when false source detector
//! branchpoint batch_nonempty at server:21
//! ```
//!
//! **3. Handlers.** Each handler is one event type of the discrete-event
//! world; its body is a small imperative program over queues, items and
//! instrumentation hooks. `guard`/`throwif` raise faults that propagate
//! (unwinding call frames) to the nearest `try`:
//!
//! ```text
//! handler Tick in JobServer fn server {
//!   branch batch_nonempty not empty(jobs)
//!   loop work_loop drain jobs {
//!     try {
//!       frame process {
//!         advance 2ms
//!         guard job_ioe
//!         throwif job_ioe age(item) > 12s
//!       }
//!     } onerr {
//!       if ($retry_fanout > 0) and (retries(item) < $max_retries) {
//!         repeat $retry_fanout { requeue jobs }
//!       }
//!     }
//!   }
//!   if (submitted(jobs) < $jobs) or (not empty(jobs)) {
//!     sched Tick after 100ms
//!   } else {
//!     sched Tick after 1s
//!   }
//! }
//! ```
//!
//! **4. Workloads.** Each workload is one integration test with its own
//! cluster configuration (`let` bindings are the `$vars` handlers read), a
//! horizon, and the initial event schedule. No single workload should
//! satisfy all conditions of a seeded cycle — that is what causal
//! stitching exists for:
//!
//! ```text
//! workload test_many_jobs "150 jobs, retries disabled — volume workload" {
//!   let jobs = 150
//!   let submit_interval = 20ms
//!   let retry_fanout = 0
//!   let max_retries = 0
//!   horizon 900s
//!   spawn Submit count $jobs every $submit_interval
//!   sched Tick after 100ms
//!   sched Health after 1s
//! }
//! ```
//!
//! **5. Ground truth.** Seeded cycles are labelled for evaluation only —
//! the detector never sees them:
//!
//! ```text
//! bug toy-retry-storm jira "TOY-1"
//!   summary "work-loop delay times out jobs whose retries re-load the loop"
//!   labels [work_loop, job_ioe]
//! ```
//!
//! Compile and drive it exactly like a hand-coded target:
//!
//! ```no_run
//! use csnake_scenario::load_file;
//! use csnake_core::{detect, DetectConfig};
//!
//! let system = load_file("scenarios/toy.csnake-scn")?;
//! let detection = detect(&system, &DetectConfig::default());
//! for m in &detection.report.matches {
//!     println!("found {}", m.bug.id);
//! }
//! # Ok::<(), csnake_scenario::ScenarioError>(())
//! ```
//!
//! # Module map
//!
//! * [`ast`] — the parsed [`ScenarioSpec`]; spans compare equal so
//!   pretty-print → reparse round-trips are identity.
//! * [`lexer`] / [`parser`] — hand-written tokenizer and recursive-descent
//!   parser with line/column error spans.
//! * [`printer`] — the canonical pretty-printer ([`print()`]).
//! * [`mod@compile`] — validation plus lowering into a [`ScenarioSystem`]
//!   (registry built through `csnake_inject::RegistryBuilder`, names
//!   interned/leaked once per process).
//! * [`interp`] — the statement interpreter: one `World` over the
//!   deterministic simulator, instrumented through the injection agent.
//! * [`loader`] — file loading with `include` resolution (cycle
//!   detection), the bundled-corpus directory, and the scenario-aware
//!   target resolver [`by_name`].

pub mod ast;
pub mod compile;
pub mod interp;
pub mod lexer;
pub mod loader;
pub mod parser;
pub mod printer;

use std::fmt;
use std::path::PathBuf;

pub use ast::{ScenarioSpec, Span};
pub use compile::{compile, ScenarioSystem};
pub use loader::{by_name, corpus_dir, corpus_specs, load_file, parse_str};
pub use printer::print;

/// A scenario-language failure: lexing, parsing, validation, include
/// resolution or file I/O — always with the most precise location known.
#[derive(Debug)]
pub struct ScenarioError {
    /// What went wrong.
    pub message: String,
    /// Line/column of the offending token or name, when known.
    pub span: Option<Span>,
    /// The file involved, when the spec came from disk.
    pub path: Option<PathBuf>,
}

impl ScenarioError {
    /// An error anchored at a source span.
    pub fn at(span: Span, message: impl Into<String>) -> Self {
        ScenarioError {
            message: message.into(),
            span: Some(span),
            path: None,
        }
    }

    /// An error with no useful span (I/O, include cycles).
    pub fn general(message: impl Into<String>) -> Self {
        ScenarioError {
            message: message.into(),
            span: None,
            path: None,
        }
    }

    /// Attaches the file the spec was read from.
    pub fn with_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.path = Some(path.into());
        self
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(p) = &self.path {
            write!(f, "{}: ", p.display())?;
        }
        if let Some(s) = self.span {
            write!(f, "{}:{}: ", s.line, s.col)?;
        }
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ScenarioError {}
