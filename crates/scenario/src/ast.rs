//! The parsed form of a scenario file.
//!
//! Every name-shaped node is an [`Ident`]: a string plus the source
//! [`Span`] it was read from. Spans are carried for error reporting only —
//! they are ignored by `PartialEq`, so a pretty-printed and reparsed spec
//! compares equal to the original (the property `tests/roundtrip.rs`
//! checks).

use std::fmt;

/// A line/column source position (1-based, columns in characters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A name with the span it was parsed at. Equality ignores the span.
#[derive(Debug, Clone, Eq)]
pub struct Ident {
    /// The name itself.
    pub name: String,
    /// Where it appeared.
    pub span: Span,
}

impl Ident {
    /// An identifier with a default (zero) span — used by generated specs.
    pub fn new(name: impl Into<String>) -> Self {
        Ident {
            name: name.into(),
            span: Span::default(),
        }
    }
}

impl PartialEq for Ident {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// A bare span carrier for keyword-shaped nodes (`age(item)`, …).
/// Equality is always true, so spans never affect spec comparison.
#[derive(Debug, Clone, Copy, Eq, Default)]
pub struct Mark(pub Span);

impl PartialEq for Mark {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

/// A full scenario: one system-under-test as data.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// System name (becomes `Registry::system` / `TargetSystem::name`).
    pub name: Ident,
    /// Components and the queues they own.
    pub components: Vec<Component>,
    /// Interned function names, in declaration order.
    pub fns: Vec<FnDecl>,
    /// Fault points, in declaration order (ids are dense).
    pub points: Vec<PointDecl>,
    /// Branch monitor points, in declaration order.
    pub branches: Vec<BranchDecl>,
    /// Event handlers, in declaration order (the event alphabet).
    pub handlers: Vec<Handler>,
    /// Integration-test workloads, in declaration order (ids are dense).
    pub workloads: Vec<Workload>,
    /// Ground-truth seeded bugs (evaluation only).
    pub bugs: Vec<BugDecl>,
    /// Loop labels whose mutual contention is expected behaviour.
    pub expected_contention: Vec<Ident>,
}

/// A named component owning a set of queues.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// Component name.
    pub name: Ident,
    /// Queues owned by the component (names are scenario-global).
    pub queues: Vec<Ident>,
}

/// One interned function name: `fn server = "JobServer.tick"`.
#[derive(Debug, Clone, PartialEq)]
pub struct FnDecl {
    /// The alias handlers and points refer to.
    pub alias: Ident,
    /// The conceptual `Class.method` path.
    pub path: String,
}

/// Origin category of a `throw` point (mirrors
/// `csnake_inject::ExceptionCategory`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThrowCategory {
    /// Thrown in system code.
    System,
    /// Explicit unchecked exception.
    Runtime,
    /// Reflection-related (analyzer-filtered).
    Reflection,
    /// Security-related (analyzer-filtered).
    Security,
}

/// Provenance of a negation point's boolean (mirrors
/// `csnake_inject::BoolSource`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NegSource {
    /// Genuine system-specific error detector.
    Detector,
    /// JDK/stdlib utility (filtered).
    Jdk,
    /// Final-configuration-derived (filtered).
    Config,
    /// Constant or unused (filtered).
    Constant,
    /// Primitive-type utility (filtered).
    Primitive,
}

/// Kind-specific metadata of a fault-point declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum PointKind {
    /// `loop l at f:N [io] [parent p] [sibling s]` — workload-dependent.
    Loop {
        /// Loop body performs I/O (never short-execution-filtered).
        io: bool,
        /// Enclosing loop (ICFG edge).
        parent: Option<Ident>,
        /// Next consecutive sibling loop (CFG edge).
        sibling: Option<Ident>,
    },
    /// `constloop l at f:N bound K` — constant-bound (analyzer-filtered).
    ConstLoop {
        /// The constant iteration bound.
        bound: u32,
    },
    /// `throw t at f:N class "X" category c [test_only]`.
    Throw {
        /// Exception class name.
        class: String,
        /// Origin category.
        category: ThrowCategory,
        /// Only reachable from test code (analyzer-filtered).
        test_only: bool,
    },
    /// `libcall t at f:N class "X"` — library call site.
    LibCall {
        /// Exception class name.
        class: String,
    },
    /// `negation n at f:N error_when B source s`.
    Negation {
        /// The boolean value signalling "error".
        error_when: bool,
        /// Provenance for the §7 filters.
        source: NegSource,
    },
}

/// One fault-point declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct PointDecl {
    /// Ground-truth label (scenario-unique).
    pub label: Ident,
    /// Enclosing function alias.
    pub func: Ident,
    /// Conceptual source line.
    pub line: u32,
    /// Kind-specific metadata.
    pub kind: PointKind,
}

/// One branch monitor point: `branchpoint b at f:N`.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchDecl {
    /// Scenario-unique label.
    pub label: Ident,
    /// Enclosing function alias.
    pub func: Ident,
    /// Conceptual source line.
    pub line: u32,
}

/// One event handler: `handler Ev [in Component] fn f { ... }`.
#[derive(Debug, Clone, PartialEq)]
pub struct Handler {
    /// Event name (the scheduling alphabet).
    pub event: Ident,
    /// Component the handler belongs to, if declared.
    pub component: Option<Ident>,
    /// Function frame the body runs under.
    pub func: Ident,
    /// The body.
    pub body: Vec<Stmt>,
}

/// Binary operators, lowest-precedence first in the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Logical or.
    Or,
    /// Logical and.
    And,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
}

/// An expression. Types are `int`, `dur` (virtual-time duration) and
/// `bool`; the compiler type-checks every use site.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Mark),
    /// Duration literal, stored in microseconds.
    Dur(u64, Mark),
    /// Boolean literal.
    Bool(bool, Mark),
    /// `$name` — workload configuration variable.
    Var(Ident),
    /// `len(q)` — queue length.
    Len(Ident),
    /// `empty(q)` — queue emptiness.
    Empty(Ident),
    /// `submitted(q)` — open-loop submissions so far on a queue.
    Submitted(Ident),
    /// `age(item)` — now minus the current item's submit time.
    AgeItem(Mark),
    /// `retries(item)` — the current item's retry count.
    RetriesItem(Mark),
    /// `now` — current virtual time.
    Now(Mark),
    /// `not e`.
    Not(Box<Expr>),
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

/// One handler statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `advance d` — model computation cost.
    Advance(Expr),
    /// `frame f { ... }` — push a call frame around the block.
    Frame {
        /// Function alias.
        func: Ident,
        /// Enclosed statements.
        body: Vec<Stmt>,
    },
    /// `branch b e` — record a branch outcome.
    Branch {
        /// Branch point.
        point: Ident,
        /// Outcome.
        cond: Expr,
    },
    /// `guard t` — exception guard hook; raises if the plan fires.
    Guard(Ident),
    /// `throwif t e` — natural throw when the condition holds.
    ThrowIf {
        /// Throw point.
        point: Ident,
        /// Guard condition.
        cond: Expr,
    },
    /// `check n ok e [onerr { ... }]` — negation-point hook; the block
    /// runs when the (possibly negated) value signals "error".
    Check {
        /// Negation point.
        point: Ident,
        /// The healthy/raw boolean the detector computes.
        value: Expr,
        /// Statements to run on an error outcome.
        onerr: Vec<Stmt>,
    },
    /// `flag "name"` — raise a system-level failure flag.
    Flag(String),
    /// `constloop l { ... }` — run the declared constant bound.
    ConstLoop {
        /// Const-loop point.
        point: Ident,
        /// Per-iteration body.
        body: Vec<Stmt>,
    },
    /// `loop l drain q { ... }` — drain the queue into a batch and run the
    /// body once per item under the loop guard.
    DrainLoop {
        /// Workload-loop point.
        point: Ident,
        /// Drained queue.
        queue: Ident,
        /// Per-item body (`item` in scope).
        body: Vec<Stmt>,
    },
    /// `submit q every d` — open-loop arrival: the item's latency clock is
    /// its intended submission time `d * submitted(q)`.
    Submit {
        /// Target queue.
        queue: Ident,
        /// Submission interval.
        every: Expr,
    },
    /// `push q` — enqueue a fresh item submitted now.
    Push(Ident),
    /// `requeue q` — enqueue a retry of the current item (submitted now,
    /// retry count incremented).
    Requeue(Ident),
    /// `repeat e { ... }` — plain (uninstrumented) repetition.
    Repeat {
        /// Repetition count.
        count: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `if e { ... } [else { ... }]`.
    If {
        /// Condition.
        cond: Expr,
        /// Then-block.
        then: Vec<Stmt>,
        /// Else-block (possibly empty).
        els: Vec<Stmt>,
    },
    /// `try { ... } onerr { ... }` — catch propagating faults.
    Try {
        /// Guarded block.
        body: Vec<Stmt>,
        /// Fault handler block.
        onerr: Vec<Stmt>,
    },
    /// `sched Ev after d` — schedule an event.
    Sched {
        /// Event name.
        event: Ident,
        /// Delay from now.
        after: Expr,
    },
}

/// One workload-setup statement (runs before the simulation starts).
#[derive(Debug, Clone, PartialEq)]
pub enum SetupStmt {
    /// `spawn Ev count n every d` — schedule `n` events at `0, d, 2d, …`.
    Spawn {
        /// Event name.
        event: Ident,
        /// Number of events.
        count: Expr,
        /// Inter-arrival interval.
        every: Expr,
    },
    /// `sched Ev after d`.
    Sched {
        /// Event name.
        event: Ident,
        /// Absolute delay from time zero.
        after: Expr,
    },
    /// `arrive Ev <process> count n` — schedule `n` open-loop arrivals
    /// sampled from a `csnake-workload` arrival process (seed-derived, so
    /// the stream is a pure function of the run seed).
    Arrive {
        /// Event name.
        event: Ident,
        /// The arrival process shape and its parameters.
        process: ArrivalSpec,
        /// Number of arrivals to schedule.
        count: Expr,
    },
}

/// The arrival-process clause of an `arrive` setup statement. Rates are
/// integer requests-per-second; windows and periods are durations.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalSpec {
    /// `poisson rate r` — exponential inter-arrival gaps, mean rate `r`/s.
    Poisson {
        /// Mean arrival rate, requests per second.
        rate: Expr,
    },
    /// `bursty rate r on d off d` — Poisson at `r`/s inside each on-window.
    Bursty {
        /// Arrival rate while the source is on.
        rate: Expr,
        /// Active window length.
        on: Expr,
        /// Silent window length.
        off: Expr,
    },
    /// `diurnal low r high r period d` — raised-cosine rate curve.
    Diurnal {
        /// Trough rate, requests per second.
        low: Expr,
        /// Peak rate, requests per second.
        high: Expr,
        /// Full low→high→low cycle length.
        period: Expr,
    },
}

/// One integration-test workload with its cluster configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Workload name (becomes the `TestCase` name).
    pub name: Ident,
    /// Human description.
    pub description: String,
    /// Configuration bindings for the `$vars` handlers read. Values are
    /// literal `int` or duration expressions.
    pub lets: Vec<(Ident, Expr)>,
    /// Simulation horizon.
    pub horizon: Expr,
    /// Initial event schedule.
    pub setup: Vec<SetupStmt>,
}

/// One ground-truth seeded bug.
#[derive(Debug, Clone, PartialEq)]
pub struct BugDecl {
    /// Short stable id.
    pub id: Ident,
    /// Issue-tracker reference.
    pub jira: String,
    /// One-line summary.
    pub summary: String,
    /// Fault-point labels that must all appear in a matching cycle.
    pub labels: Vec<Ident>,
    /// Cycle shape family (`shape queue`) — the ground-truth sidecar the
    /// scenario generator records so evaluation harnesses can report
    /// per-shape recall without re-deriving the planted structure.
    /// Evaluation-only, like the labels; `None` for hand-written bugs.
    pub shape: Option<Ident>,
}

/// One top-level item, in file order. The loader flattens `include`s into
/// the surrounding item stream before assembly.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `scenario name` — exactly one, first.
    Name(Ident),
    /// `include "path"` — spliced by the loader.
    Include {
        /// Relative path of the included fragment.
        path: String,
        /// Where the directive appeared.
        span: Span,
    },
    /// A component block.
    Component(Component),
    /// A function declaration.
    Fn(FnDecl),
    /// A fault-point declaration.
    Point(PointDecl),
    /// A branch-point declaration.
    Branch(BranchDecl),
    /// A handler.
    Handler(Handler),
    /// A workload.
    Workload(Workload),
    /// A bug declaration.
    Bug(BugDecl),
    /// `expected_contention [a, b]`.
    ExpectedContention(Vec<Ident>),
}
