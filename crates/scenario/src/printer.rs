//! Canonical pretty-printer.
//!
//! [`print()`] emits the canonical textual form of a [`ScenarioSpec`]; the
//! parser accepts exactly this form (plus whitespace/comments), so
//! `parse_str(&print(spec)) == spec` holds for every valid spec — the
//! property `tests/roundtrip.rs` exercises. Binary subexpressions are
//! always parenthesised, which keeps the printer independent of the
//! parser's precedence table.

use std::fmt::Write as _;

use crate::ast::*;

/// Pretty-prints a spec in canonical form.
pub fn print(spec: &ScenarioSpec) -> String {
    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(w, "scenario {}", spec.name);
    for c in &spec.components {
        let _ = writeln!(w, "component {} {{", c.name);
        for q in &c.queues {
            let _ = writeln!(w, "  queue {q}");
        }
        let _ = writeln!(w, "}}");
    }
    for f in &spec.fns {
        let _ = writeln!(w, "fn {} = {}", f.alias, quoted(&f.path));
    }
    for p in &spec.points {
        print_point(w, p);
    }
    for b in &spec.branches {
        let _ = writeln!(w, "branchpoint {} at {}:{}", b.label, b.func, b.line);
    }
    for h in &spec.handlers {
        match &h.component {
            Some(c) => {
                let _ = writeln!(w, "handler {} in {} fn {} {{", h.event, c, h.func);
            }
            None => {
                let _ = writeln!(w, "handler {} fn {} {{", h.event, h.func);
            }
        }
        print_block_body(w, &h.body, 1);
        let _ = writeln!(w, "}}");
    }
    for wl in &spec.workloads {
        let _ = writeln!(w, "workload {} {} {{", wl.name, quoted(&wl.description));
        for (var, value) in &wl.lets {
            let _ = writeln!(w, "  let {} = {}", var, expr(value));
        }
        let _ = writeln!(w, "  horizon {}", expr(&wl.horizon));
        for s in &wl.setup {
            match s {
                SetupStmt::Spawn {
                    event,
                    count,
                    every,
                } => {
                    let _ = writeln!(
                        w,
                        "  spawn {} count {} every {}",
                        event,
                        expr(count),
                        expr(every)
                    );
                }
                SetupStmt::Sched { event, after } => {
                    let _ = writeln!(w, "  sched {} after {}", event, expr(after));
                }
                SetupStmt::Arrive {
                    event,
                    process,
                    count,
                } => {
                    let _ = write!(w, "  arrive {event} ");
                    match process {
                        ArrivalSpec::Poisson { rate } => {
                            let _ = write!(w, "poisson rate {}", expr(rate));
                        }
                        ArrivalSpec::Bursty { rate, on, off } => {
                            let _ = write!(
                                w,
                                "bursty rate {} on {} off {}",
                                expr(rate),
                                expr(on),
                                expr(off)
                            );
                        }
                        ArrivalSpec::Diurnal { low, high, period } => {
                            let _ = write!(
                                w,
                                "diurnal low {} high {} period {}",
                                expr(low),
                                expr(high),
                                expr(period)
                            );
                        }
                    }
                    let _ = writeln!(w, " count {}", expr(count));
                }
            }
        }
        let _ = writeln!(w, "}}");
    }
    for b in &spec.bugs {
        let _ = write!(
            w,
            "bug {} jira {} summary {} labels {}",
            b.id,
            quoted(&b.jira),
            quoted(&b.summary),
            labels(&b.labels)
        );
        if let Some(s) = &b.shape {
            let _ = write!(w, " shape {s}");
        }
        let _ = writeln!(w);
    }
    if !spec.expected_contention.is_empty() {
        let _ = writeln!(
            w,
            "expected_contention {}",
            labels(&spec.expected_contention)
        );
    }
    out
}

fn labels(idents: &[Ident]) -> String {
    let names: Vec<&str> = idents.iter().map(|i| i.name.as_str()).collect();
    format!("[{}]", names.join(", "))
}

fn print_point(w: &mut String, p: &PointDecl) {
    let site = format!("{} at {}:{}", p.label, p.func, p.line);
    match &p.kind {
        PointKind::Loop {
            io,
            parent,
            sibling,
        } => {
            let _ = write!(w, "loop {site}");
            if *io {
                let _ = write!(w, " io");
            }
            if let Some(p) = parent {
                let _ = write!(w, " parent {p}");
            }
            if let Some(s) = sibling {
                let _ = write!(w, " sibling {s}");
            }
            let _ = writeln!(w);
        }
        PointKind::ConstLoop { bound } => {
            let _ = writeln!(w, "constloop {site} bound {bound}");
        }
        PointKind::Throw {
            class,
            category,
            test_only,
        } => {
            let cat = match category {
                ThrowCategory::System => "system",
                ThrowCategory::Runtime => "runtime",
                ThrowCategory::Reflection => "reflection",
                ThrowCategory::Security => "security",
            };
            let _ = write!(w, "throw {site} class {} category {cat}", quoted(class));
            if *test_only {
                let _ = write!(w, " test_only");
            }
            let _ = writeln!(w);
        }
        PointKind::LibCall { class } => {
            let _ = writeln!(w, "libcall {site} class {}", quoted(class));
        }
        PointKind::Negation { error_when, source } => {
            let src = match source {
                NegSource::Detector => "detector",
                NegSource::Jdk => "jdk",
                NegSource::Config => "config",
                NegSource::Constant => "constant",
                NegSource::Primitive => "primitive",
            };
            let _ = writeln!(w, "negation {site} error_when {error_when} source {src}");
        }
    }
}

fn print_block_body(w: &mut String, body: &[Stmt], depth: usize) {
    for s in body {
        print_stmt(w, s, depth);
    }
}

fn indent(w: &mut String, depth: usize) {
    for _ in 0..depth {
        w.push_str("  ");
    }
}

fn print_block(w: &mut String, body: &[Stmt], depth: usize) {
    w.push_str("{\n");
    print_block_body(w, body, depth + 1);
    indent(w, depth);
    w.push('}');
}

fn print_stmt(w: &mut String, s: &Stmt, depth: usize) {
    indent(w, depth);
    match s {
        Stmt::Advance(e) => {
            let _ = writeln!(w, "advance {}", expr(e));
        }
        Stmt::Frame { func, body } => {
            let _ = write!(w, "frame {func} ");
            print_block(w, body, depth);
            w.push('\n');
        }
        Stmt::Branch { point, cond } => {
            let _ = writeln!(w, "branch {} {}", point, expr(cond));
        }
        Stmt::Guard(p) => {
            let _ = writeln!(w, "guard {p}");
        }
        Stmt::ThrowIf { point, cond } => {
            let _ = writeln!(w, "throwif {} {}", point, expr(cond));
        }
        Stmt::Check {
            point,
            value,
            onerr,
        } => {
            let _ = write!(w, "check {} ok {}", point, expr(value));
            if !onerr.is_empty() {
                w.push_str(" onerr ");
                print_block(w, onerr, depth);
            }
            w.push('\n');
        }
        Stmt::Flag(name) => {
            let _ = writeln!(w, "flag {}", quoted(name));
        }
        Stmt::ConstLoop { point, body } => {
            let _ = write!(w, "constloop {point} ");
            print_block(w, body, depth);
            w.push('\n');
        }
        Stmt::DrainLoop { point, queue, body } => {
            let _ = write!(w, "loop {point} drain {queue} ");
            print_block(w, body, depth);
            w.push('\n');
        }
        Stmt::Submit { queue, every } => {
            let _ = writeln!(w, "submit {} every {}", queue, expr(every));
        }
        Stmt::Push(q) => {
            let _ = writeln!(w, "push {q}");
        }
        Stmt::Requeue(q) => {
            let _ = writeln!(w, "requeue {q}");
        }
        Stmt::Repeat { count, body } => {
            let _ = write!(w, "repeat {} ", expr(count));
            print_block(w, body, depth);
            w.push('\n');
        }
        Stmt::If { cond, then, els } => {
            let _ = write!(w, "if {} ", expr(cond));
            print_block(w, then, depth);
            if !els.is_empty() {
                w.push_str(" else ");
                print_block(w, els, depth);
            }
            w.push('\n');
        }
        Stmt::Try { body, onerr } => {
            w.push_str("try ");
            print_block(w, body, depth);
            w.push_str(" onerr ");
            print_block(w, onerr, depth);
            w.push('\n');
        }
        Stmt::Sched { event, after } => {
            let _ = writeln!(w, "sched {} after {}", event, expr(after));
        }
    }
}

/// Canonical duration rendering: the largest unit that divides evenly.
fn duration(us: u64) -> String {
    if us == 0 {
        "0s".to_string()
    } else if us.is_multiple_of(1_000_000) {
        format!("{}s", us / 1_000_000)
    } else if us.is_multiple_of(1_000) {
        format!("{}ms", us / 1_000)
    } else {
        format!("{us}us")
    }
}

fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an expression; binary operands are parenthesised whenever they
/// are compound, so the output reparses identically at any precedence.
fn expr(e: &Expr) -> String {
    match e {
        Expr::Int(n, _) => n.to_string(),
        Expr::Dur(us, _) => duration(*us),
        Expr::Bool(b, _) => b.to_string(),
        Expr::Var(v) => format!("${v}"),
        Expr::Len(q) => format!("len({q})"),
        Expr::Empty(q) => format!("empty({q})"),
        Expr::Submitted(q) => format!("submitted({q})"),
        Expr::AgeItem(_) => "age(item)".to_string(),
        Expr::RetriesItem(_) => "retries(item)".to_string(),
        Expr::Now(_) => "now".to_string(),
        Expr::Not(inner) => format!("not {}", operand(inner)),
        Expr::Bin { op, lhs, rhs } => {
            let sym = match op {
                BinOp::Or => "or",
                BinOp::And => "and",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
            };
            format!("{} {} {}", operand(lhs), sym, operand(rhs))
        }
    }
}

fn operand(e: &Expr) -> String {
    match e {
        Expr::Bin { .. } | Expr::Not(_) => format!("({})", expr(e)),
        _ => expr(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{assemble, parse_items};

    #[test]
    fn duration_uses_largest_even_unit() {
        assert_eq!(duration(0), "0s");
        assert_eq!(duration(12_000_000), "12s");
        assert_eq!(duration(100_000), "100ms");
        assert_eq!(duration(2_500), "2500us");
    }

    #[test]
    fn print_reparse_is_identity_on_a_rich_spec() {
        let src = r#"
        scenario demo
        component S { queue q queue r }
        fn f = "X.f"
        fn g = "X.g"
        loop l at f:1 io parent l sibling l
        constloop c at f:2 bound 3
        throw t at g:3 class "IOException" category system test_only
        libcall lc at g:4 class "SocketException"
        negation n at g:5 error_when false source detector
        branchpoint b at f:6
        handler T in S fn f {
          advance 2ms
          branch b not empty(q)
          loop l drain q {
            try {
              frame g {
                guard t
                throwif t (age(item) > 12s) and (retries(item) < $max)
              }
            } onerr {
              if $fanout > 0 { repeat $fanout { requeue q } } else { push r }
            }
          }
          constloop c { advance 1us }
          check n ok len(q) < 500 onerr { flag "unhealthy" }
          submit q every $ival
          if (submitted(q) < $n) or (now < 5s) { sched T after 100ms }
        }
        workload w "desc \"quoted\"" {
          let n = 5
          let max = 2
          let fanout = 4
          let ival = 20ms
          horizon 900s
          spawn T count $n every $ival
          sched T after 1s
        }
        bug demo-bug jira "J-1" summary "s" labels [l, t] shape queue
        expected_contention [l]
        "#;
        let spec = assemble(parse_items(src).unwrap()).unwrap();
        let printed = print(&spec);
        let reparsed = assemble(parse_items(&printed).unwrap())
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(spec, reparsed, "\n--- printed ---\n{printed}");
        // And printing is a fixed point.
        assert_eq!(printed, print(&reparsed));
    }
}
