//! Hand-written tokenizer with line/column spans.
//!
//! The token stream is deliberately small: identifiers (keywords are
//! resolved by the parser), `$vars`, integer and duration literals,
//! double-quoted strings with `\"`/`\\` escapes, and punctuation.
//! Comments run from `#` to end of line.

use crate::ast::Span;
use crate::ScenarioError;

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (`work_loop`, `handler`, `JobServer.tick`
    /// is *not* one — paths live in strings).
    Ident(String),
    /// `$name` configuration variable.
    Var(String),
    /// Integer literal.
    Int(i64),
    /// Duration literal, in microseconds (`12s`, `100ms`, `250us`).
    Dur(u64),
    /// Double-quoted string literal (unescaped).
    Str(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `=`
    Assign,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// End of input (always the final token).
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Var(s) => write!(f, "`${s}`"),
            Tok::Int(n) => write!(f, "integer {n}"),
            Tok::Dur(us) => write!(f, "duration {us}us"),
            Tok::Str(_) => write!(f, "string literal"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::Assign => write!(f, "`=`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::EqEq => write!(f, "`==`"),
            Tok::Ne => write!(f, "`!=`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token plus the span of its first character.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Source position of the token's first character.
    pub span: Span,
}

/// Tokenizes a whole source string.
pub fn lex(src: &str) -> Result<Vec<Token>, ScenarioError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if let Some(c) = c {
                if c == '\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
            }
            c
        }};
    }

    loop {
        let span = Span { line, col };
        let Some(&c) = chars.peek() else {
            out.push(Token {
                tok: Tok::Eof,
                span,
            });
            return Ok(out);
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '#' => {
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    bump!();
                }
            }
            '{' | '}' | '[' | ']' | '(' | ')' | ',' | ':' | '+' | '*' => {
                bump!();
                let tok = match c {
                    '{' => Tok::LBrace,
                    '}' => Tok::RBrace,
                    '[' => Tok::LBracket,
                    ']' => Tok::RBracket,
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    ',' => Tok::Comma,
                    ':' => Tok::Colon,
                    '+' => Tok::Plus,
                    _ => Tok::Star,
                };
                out.push(Token { tok, span });
            }
            '=' => {
                bump!();
                let tok = if chars.peek() == Some(&'=') {
                    bump!();
                    Tok::EqEq
                } else {
                    Tok::Assign
                };
                out.push(Token { tok, span });
            }
            '<' => {
                bump!();
                let tok = if chars.peek() == Some(&'=') {
                    bump!();
                    Tok::Le
                } else {
                    Tok::Lt
                };
                out.push(Token { tok, span });
            }
            '>' => {
                bump!();
                let tok = if chars.peek() == Some(&'=') {
                    bump!();
                    Tok::Ge
                } else {
                    Tok::Gt
                };
                out.push(Token { tok, span });
            }
            '!' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    out.push(Token { tok: Tok::Ne, span });
                } else {
                    return Err(ScenarioError::at(span, "expected `!=`".to_string()));
                }
            }
            '"' => {
                bump!();
                let mut s = String::new();
                loop {
                    match bump!() {
                        None => return Err(ScenarioError::at(span, "unterminated string literal")),
                        Some('"') => break,
                        Some('\\') => match bump!() {
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some(other) => {
                                return Err(ScenarioError::at(
                                    span,
                                    format!("unsupported escape `\\{other}` in string"),
                                ))
                            }
                            None => {
                                return Err(ScenarioError::at(span, "unterminated string literal"))
                            }
                        },
                        Some('\n') => {
                            return Err(ScenarioError::at(
                                span,
                                "string literal spans a line break",
                            ))
                        }
                        Some(c) => s.push(c),
                    }
                }
                out.push(Token {
                    tok: Tok::Str(s),
                    span,
                });
            }
            '$' => {
                bump!();
                let name = lex_word(&mut chars, &mut line, &mut col);
                if name.is_empty() {
                    return Err(ScenarioError::at(span, "`$` must be followed by a name"));
                }
                out.push(Token {
                    tok: Tok::Var(name),
                    span,
                });
            }
            '-' => {
                bump!();
                // Negative integer literal or bare minus.
                if chars.peek().is_some_and(|c| c.is_ascii_digit()) {
                    let (tok, err) = lex_number(&mut chars, &mut line, &mut col, true);
                    if let Some(msg) = err {
                        return Err(ScenarioError::at(span, msg));
                    }
                    out.push(Token { tok, span });
                } else {
                    out.push(Token {
                        tok: Tok::Minus,
                        span,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let (tok, err) = lex_number(&mut chars, &mut line, &mut col, false);
                if let Some(msg) = err {
                    return Err(ScenarioError::at(span, msg));
                }
                out.push(Token { tok, span });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let name = lex_word(&mut chars, &mut line, &mut col);
                out.push(Token {
                    tok: Tok::Ident(name),
                    span,
                });
            }
            other => {
                return Err(ScenarioError::at(
                    span,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
}

/// Consumes an identifier tail (`[A-Za-z0-9_.-]`; dots and dashes allow
/// bug ids like `toy-retry-storm`).
fn lex_word(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    line: &mut u32,
    col: &mut u32,
) -> String {
    let mut s = String::new();
    while let Some(&c) = chars.peek() {
        if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
            s.push(c);
            chars.next();
            let _ = line;
            *col += 1;
        } else {
            break;
        }
    }
    s
}

/// Consumes a number with an optional duration suffix (`us`, `ms`, `s`).
fn lex_number(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    line: &mut u32,
    col: &mut u32,
    negative: bool,
) -> (Tok, Option<String>) {
    let mut digits = String::new();
    while let Some(&c) = chars.peek() {
        if c.is_ascii_digit() || c == '_' {
            if c != '_' {
                digits.push(c);
            }
            chars.next();
            *col += 1;
        } else {
            break;
        }
    }
    let _ = line;
    let Ok(value) = digits.parse::<i64>() else {
        return (
            Tok::Int(0),
            Some(format!("integer literal `{digits}` overflows")),
        );
    };
    // Duration suffix?
    let mut suffix = String::new();
    while let Some(&c) = chars.peek() {
        if c.is_ascii_alphabetic() {
            suffix.push(c);
            chars.next();
            *col += 1;
        } else {
            break;
        }
    }
    let scaled = |unit: u64| match (value as u64).checked_mul(unit) {
        Some(us) => (Tok::Dur(us), None),
        None => (
            Tok::Int(0),
            Some(format!("duration literal `{digits}` overflows")),
        ),
    };
    match suffix.as_str() {
        "" => (Tok::Int(if negative { -value } else { value }), None),
        _ if negative => (
            Tok::Int(0),
            Some("negative durations are not allowed".into()),
        ),
        "us" => scaled(1),
        "ms" => scaled(1_000),
        "s" => scaled(1_000_000),
        other => (
            Tok::Int(0),
            Some(format!("unknown duration suffix `{other}` (use us/ms/s)")),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn words_numbers_durations_strings() {
        assert_eq!(
            toks(r#"loop work_loop 42 12s 100ms "IOException" $jobs"#),
            vec![
                Tok::Ident("loop".into()),
                Tok::Ident("work_loop".into()),
                Tok::Int(42),
                Tok::Dur(12_000_000),
                Tok::Dur(100_000),
                Tok::Str("IOException".into()),
                Tok::Var("jobs".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn comments_and_spans() {
        let t = lex("a # comment\n  b").unwrap();
        assert_eq!(t[0].span, Span { line: 1, col: 1 });
        assert_eq!(t[1].span, Span { line: 2, col: 3 });
        assert_eq!(t[1].tok, Tok::Ident("b".into()));
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("< <= > >= == != = + - * ( ) not"),
            vec![
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::EqEq,
                Tok::Ne,
                Tok::Assign,
                Tok::Plus,
                Tok::Minus,
                Tok::Star,
                Tok::LParen,
                Tok::RParen,
                Tok::Ident("not".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn negative_numbers_and_bad_suffix() {
        assert_eq!(toks("-5"), vec![Tok::Int(-5), Tok::Eof]);
        let err = lex("5m").unwrap_err();
        assert!(err.message.contains("unknown duration suffix"), "{err}");
        assert_eq!(err.span.unwrap(), Span { line: 1, col: 1 });
    }

    #[test]
    fn unterminated_string_has_span() {
        let err = lex("x \"abc").unwrap_err();
        assert!(err.message.contains("unterminated"), "{err}");
        assert_eq!(err.span.unwrap(), Span { line: 1, col: 3 });
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            toks(r#""a\"b\\c""#),
            vec![Tok::Str(r#"a"b\c"#.into()), Tok::Eof]
        );
    }
}
