//! The scenario interpreter: one deterministic discrete-event `World`.
//!
//! Each compiled handler is one event type; the run state is the set of
//! declared queues (items carry their open-loop submit time and a retry
//! counter) plus per-queue submission counters. Statements call the
//! injection agent's hooks exactly like hand-coded targets do — frames
//! and loops through RAII guards, faults propagating through `Result` to
//! the nearest `try` — so a faithful port of a hand-coded target records
//! byte-identical traces.

use std::collections::VecDeque;
use std::rc::Rc;

use csnake_inject::{Agent, Fault, InjectionPlan, TestId};
use csnake_sim::{Clock, Sim, VirtualTime, World};
use csnake_targets::common::run_world;

use crate::compile::{CExpr, CSetup, CStmt, CWorkload, Compiled, Value};

/// One in-flight work item.
#[derive(Debug, Clone, Copy)]
struct Item {
    /// Open-loop intended submission time (the latency clock).
    submitted: VirtualTime,
    /// Retry generation (0 for fresh items).
    retries: i64,
}

/// Executes one workload of a compiled scenario.
pub(crate) fn run(
    c: &Compiled,
    test: TestId,
    plan: Option<InjectionPlan>,
    seed: u64,
) -> csnake_inject::RunTrace {
    let wl = c
        .workloads
        .get(test.0 as usize)
        .unwrap_or_else(|| panic!("scenario {} has no workload {test}", c.name));
    run_world(&c.registry, plan, seed, wl.horizon, |agent, sim| {
        for s in &wl.setup {
            match *s {
                CSetup::Spawn {
                    event,
                    count,
                    every,
                } => {
                    for i in 0..count {
                        sim.schedule_at(every * i, event);
                    }
                }
                CSetup::Sched { event, after } => {
                    sim.schedule(after, event);
                }
                CSetup::Arrive {
                    event,
                    ref arrival,
                    count,
                } => {
                    // Seed-derived stream: the run's RNG forks a labelled
                    // child per stanza, so arrivals are a pure function of
                    // (run seed, stanza order).
                    let mut rng = sim.rng().derive("scenario-arrive");
                    for t in arrival.times(&mut rng, count as usize) {
                        sim.schedule_at(t, event);
                    }
                }
            }
        }
        ScnWorld {
            c,
            wl,
            agent,
            queues: vec![VecDeque::new(); c.queue_count],
            submitted: vec![0; c.queue_count],
        }
    })
}

/// Evaluates a constant expression (workload scope: vars and literals
/// only — no queues, no clock). Used by the compiler for horizons and
/// setup schedules.
pub(crate) fn eval_const(e: &CExpr, vars: &[Value]) -> Value {
    match e {
        CExpr::Int(n) => Value::Int(*n),
        CExpr::Dur(d) => Value::Dur(*d),
        CExpr::Bool(b) => Value::Bool(*b),
        CExpr::Var(id) => vars[*id],
        CExpr::Not(inner) => match eval_const(inner, vars) {
            Value::Bool(b) => Value::Bool(!b),
            _ => unreachable!("type-checked"),
        },
        CExpr::Bin(op, lhs, rhs) => bin_op(*op, eval_const(lhs, vars), eval_const(rhs, vars)),
        _ => unreachable!("workload-scope expressions cannot touch run state"),
    }
}

fn bin_op(op: crate::ast::BinOp, l: Value, r: Value) -> Value {
    use crate::ast::BinOp::*;
    use Value::*;
    match (op, l, r) {
        (And, Bool(a), Bool(b)) => Bool(a && b),
        (Or, Bool(a), Bool(b)) => Bool(a || b),
        (Lt, Int(a), Int(b)) => Bool(a < b),
        (Le, Int(a), Int(b)) => Bool(a <= b),
        (Gt, Int(a), Int(b)) => Bool(a > b),
        (Ge, Int(a), Int(b)) => Bool(a >= b),
        (Eq, Int(a), Int(b)) => Bool(a == b),
        (Ne, Int(a), Int(b)) => Bool(a != b),
        (Lt, Dur(a), Dur(b)) => Bool(a < b),
        (Le, Dur(a), Dur(b)) => Bool(a <= b),
        (Gt, Dur(a), Dur(b)) => Bool(a > b),
        (Ge, Dur(a), Dur(b)) => Bool(a >= b),
        (Eq, Dur(a), Dur(b)) => Bool(a == b),
        (Ne, Dur(a), Dur(b)) => Bool(a != b),
        (Add, Int(a), Int(b)) => Int(a.wrapping_add(b)),
        (Sub, Int(a), Int(b)) => Int(a.wrapping_sub(b)),
        (Mul, Int(a), Int(b)) => Int(a.wrapping_mul(b)),
        (Add, Dur(a), Dur(b)) => Dur(a.saturating_add(b)),
        (Sub, Dur(a), Dur(b)) => Dur(a.saturating_sub(b)),
        (Mul, Dur(a), Int(b)) | (Mul, Int(b), Dur(a)) => Dur(a * b.max(0) as u64),
        _ => unreachable!("type-checked operand mix"),
    }
}

struct ScnWorld<'a> {
    c: &'a Compiled,
    wl: &'a CWorkload,
    agent: Rc<Agent>,
    queues: Vec<VecDeque<Item>>,
    submitted: Vec<u64>,
}

impl World for ScnWorld<'_> {
    type Event = usize;

    fn handle(&mut self, sim: &mut Sim<usize>, ev: usize) {
        let handler = &self.c.handlers[ev];
        let _f = self.agent.frame(handler.func);
        // A fault that escapes every `try` terminates the handler, like an
        // exception unwinding out of a Java service loop's dispatch.
        let _ = self.exec_block(&handler.body, sim, None);
    }
}

impl ScnWorld<'_> {
    fn eval(&self, e: &CExpr, sim: &Sim<usize>, item: Option<&Item>) -> Value {
        match e {
            CExpr::Int(n) => Value::Int(*n),
            CExpr::Dur(d) => Value::Dur(*d),
            CExpr::Bool(b) => Value::Bool(*b),
            CExpr::Var(id) => self.wl.vars[*id],
            CExpr::Len(q) => Value::Int(self.queues[*q].len() as i64),
            CExpr::Empty(q) => Value::Bool(self.queues[*q].is_empty()),
            CExpr::Submitted(q) => Value::Int(self.submitted[*q] as i64),
            CExpr::Age => {
                let item = item.expect("age(item) validated to run inside a drain loop");
                Value::Dur(sim.now().saturating_sub(item.submitted))
            }
            CExpr::Retries => {
                let item = item.expect("retries(item) validated to run inside a drain loop");
                Value::Int(item.retries)
            }
            CExpr::Now => Value::Dur(sim.now()),
            CExpr::Not(inner) => match self.eval(inner, sim, item) {
                Value::Bool(b) => Value::Bool(!b),
                _ => unreachable!("type-checked"),
            },
            CExpr::Bin(op, lhs, rhs) => {
                bin_op(*op, self.eval(lhs, sim, item), self.eval(rhs, sim, item))
            }
        }
    }

    fn eval_bool(&self, e: &CExpr, sim: &Sim<usize>, item: Option<&Item>) -> bool {
        match self.eval(e, sim, item) {
            Value::Bool(b) => b,
            _ => unreachable!("type-checked bool"),
        }
    }

    fn eval_dur(&self, e: &CExpr, sim: &Sim<usize>, item: Option<&Item>) -> VirtualTime {
        match self.eval(e, sim, item) {
            Value::Dur(d) => d,
            _ => unreachable!("type-checked dur"),
        }
    }

    fn eval_int(&self, e: &CExpr, sim: &Sim<usize>, item: Option<&Item>) -> i64 {
        match self.eval(e, sim, item) {
            Value::Int(n) => n,
            _ => unreachable!("type-checked int"),
        }
    }

    fn exec_block(
        &mut self,
        stmts: &[CStmt],
        sim: &mut Sim<usize>,
        item: Option<&Item>,
    ) -> Result<(), Fault> {
        for s in stmts {
            self.exec(s, sim, item)?;
        }
        Ok(())
    }

    fn exec(&mut self, s: &CStmt, sim: &mut Sim<usize>, item: Option<&Item>) -> Result<(), Fault> {
        match s {
            CStmt::Advance(e) => {
                let d = self.eval_dur(e, sim, item);
                sim.advance(d);
            }
            CStmt::Frame(f, body) => {
                let _g = self.agent.frame(*f);
                self.exec_block(body, sim, item)?;
            }
            CStmt::Branch(b, cond) => {
                let v = self.eval_bool(cond, sim, item);
                self.agent.branch(*b, v);
            }
            CStmt::Guard(p) => {
                if let Some(fault) = self.agent.throw_guard(*p) {
                    return Err(fault);
                }
            }
            CStmt::ThrowIf(p, cond) => {
                if self.eval_bool(cond, sim, item) {
                    return Err(self.agent.throw_fired(*p));
                }
            }
            CStmt::Check {
                point,
                error_when,
                value,
                onerr,
            } => {
                let v = self.eval_bool(value, sim, item);
                let out = self.agent.negation_point(*point, v);
                if out == *error_when {
                    self.exec_block(onerr, sim, item)?;
                }
            }
            CStmt::Flag(name) => self.agent.mark_flag(name),
            CStmt::ConstLoop { point, bound, body } => {
                let guard = self.agent.loop_enter(*point);
                for _ in 0..*bound {
                    guard.iter(sim);
                    self.exec_block(body, sim, item)?;
                }
            }
            CStmt::DrainLoop { point, queue, body } => {
                let batch: Vec<Item> = self.queues[*queue].drain(..).collect();
                let guard = self.agent.loop_enter(*point);
                for it in batch {
                    guard.iter(sim);
                    self.exec_block(body, sim, Some(&it))?;
                }
            }
            CStmt::Submit { queue, every } => {
                let every = self.eval_dur(every, sim, item);
                let intended = every * self.submitted[*queue];
                self.queues[*queue].push_back(Item {
                    submitted: intended,
                    retries: 0,
                });
                self.submitted[*queue] += 1;
            }
            CStmt::Push(q) => {
                let now = sim.now();
                self.queues[*q].push_back(Item {
                    submitted: now,
                    retries: 0,
                });
            }
            CStmt::Requeue(q) => {
                let it = item.expect("requeue validated to run inside a drain loop");
                let now = sim.now();
                self.queues[*q].push_back(Item {
                    submitted: now,
                    retries: it.retries.saturating_add(1),
                });
            }
            CStmt::Repeat(count, body) => {
                let n = self.eval_int(count, sim, item).max(0);
                for _ in 0..n {
                    self.exec_block(body, sim, item)?;
                }
            }
            CStmt::If(cond, then, els) => {
                if self.eval_bool(cond, sim, item) {
                    self.exec_block(then, sim, item)?;
                } else {
                    self.exec_block(els, sim, item)?;
                }
            }
            CStmt::Try(body, onerr) => {
                if self.exec_block(body, sim, item).is_err() {
                    self.exec_block(onerr, sim, item)?;
                }
            }
            CStmt::Sched { event, after } => {
                let d = self.eval_dur(after, sim, item);
                sim.schedule(d, *event);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, parse_str};
    use csnake_core::TargetSystem;

    /// A miniature retry amplifier exercising most statement forms.
    const SRC: &str = r#"
        scenario mini
        component S { queue q }
        fn f = "S.tick"
        fn g = "S.process"
        loop work at f:1 io
        constloop warm at f:2 bound 2
        throw ioe at g:3 class "IOException" category system
        negation healthy at f:4 error_when false source detector
        branchpoint nonempty at f:5
        handler Submit fn f { submit q every 10ms }
        handler Tick fn f {
          constloop warm { advance 1us }
          branch nonempty not empty(q)
          loop work drain q {
            try {
              frame g {
                advance 1ms
                guard ioe
                throwif ioe age(item) > 5s
              }
            } onerr {
              if retries(item) < $max { repeat $fanout { requeue q } }
            }
          }
          check healthy ok len(q) < 100 onerr { flag "unhealthy" }
          if (submitted(q) < $jobs) or (not empty(q)) {
            sched Tick after 50ms
          }
        }
        workload volume "many jobs" {
          let jobs = 40
          let fanout = 0
          let max = 0
          horizon 60s
          spawn Submit count $jobs every 10ms
          sched Tick after 50ms
        }
        workload retry "few jobs with fanout" {
          let jobs = 5
          let fanout = 3
          let max = 1
          horizon 60s
          spawn Submit count $jobs every 50ms
          sched Tick after 50ms
        }
        bug mini-storm jira "M-1" summary "retry storm" labels [work, ioe]
    "#;

    fn system() -> crate::ScenarioSystem {
        compile(&parse_str(SRC).unwrap()).unwrap()
    }

    #[test]
    fn profile_run_is_deterministic_and_covers_points() {
        let sys = system();
        let a = sys.run(TestId(0), None, 7);
        let b = sys.run(TestId(0), None, 7);
        assert_eq!(a.loop_counts, b.loop_counts);
        assert_eq!(a.events, b.events);
        let work = sys.point_by_label("work").unwrap();
        assert_eq!(a.loop_count(work), 40, "all jobs processed exactly once");
        let ioe = sys.point_by_label("ioe").unwrap();
        assert!(a.coverage.contains(&ioe));
        assert!(!a.occurred(ioe), "no natural timeouts in profile");
    }

    #[test]
    fn delay_injection_causes_timeouts_in_volume_workload() {
        let sys = system();
        let work = sys.point_by_label("work").unwrap();
        let ioe = sys.point_by_label("ioe").unwrap();
        let plan = InjectionPlan::delay(work, VirtualTime::from_millis(800));
        let t = sys.run(TestId(0), Some(plan), 3);
        assert!(t.injected.is_some());
        assert!(t.occurred(ioe), "delay must age items past the deadline");
    }

    #[test]
    fn throw_injection_amplifies_loop_in_retry_workload_only() {
        let sys = system();
        let work = sys.point_by_label("work").unwrap();
        let ioe = sys.point_by_label("ioe").unwrap();

        let base = sys.run(TestId(1), None, 3).loop_count(work);
        let inj = sys
            .run(TestId(1), Some(InjectionPlan::throw(ioe)), 3)
            .loop_count(work);
        assert!(inj >= base + 3, "fanout must amplify: {inj} vs {base}");

        let base0 = sys.run(TestId(0), None, 3).loop_count(work);
        let inj0 = sys
            .run(TestId(0), Some(InjectionPlan::throw(ioe)), 3)
            .loop_count(work);
        assert_eq!(inj0, base0, "no fanout in the volume workload");
    }

    #[test]
    fn negation_injection_flags_and_records() {
        let sys = system();
        let healthy = sys.point_by_label("healthy").unwrap();
        let t = sys.run(TestId(1), Some(InjectionPlan::negate(healthy)), 3);
        assert!(t.occurred(healthy));
        assert!(t.flags.contains("unhealthy"));
        let p = sys.run(TestId(1), None, 3);
        assert!(!p.occurred(healthy), "quiet without injection");
    }

    #[test]
    fn const_loop_counts_are_a_bound_multiple() {
        let sys = system();
        let warm = sys.point_by_label("warm").unwrap();
        let t = sys.run(TestId(1), None, 3);
        let c = t.loop_count(warm);
        assert!(c > 0 && c.is_multiple_of(2), "{c}");
    }

    /// Open-loop `arrive` stanzas: each workload offers a fixed request
    /// count from a seed-derived process; every request is handled within
    /// the horizon and reruns are bit-identical.
    const ARRIVE_SRC: &str = r#"
        scenario arrivals
        component S { queue q }
        fn f = "S.req"
        loop work at f:1 io
        handler Req fn f {
          submit q every 1ms
          loop work drain q { advance 100us }
        }
        workload open_poisson "poisson stream" {
          let rate = 500
          let n = 400
          horizon 30s
          arrive Req poisson rate $rate count $n
        }
        workload open_bursty "bursty stream" {
          let rate = 800
          let n = 200
          horizon 30s
          arrive Req bursty rate $rate on 100ms off 400ms count $n
        }
        workload open_diurnal "diurnal stream" {
          let rate = 900
          let n = 300
          horizon 60s
          arrive Req diurnal low 50 high $rate period 10s count $n
        }
    "#;

    #[test]
    fn arrive_stanzas_offer_exact_deterministic_streams() {
        let sys = compile(&parse_str(ARRIVE_SRC).unwrap()).unwrap();
        let work = sys.point_by_label("work").unwrap();
        for (test, offered) in [(TestId(0), 400), (TestId(1), 200), (TestId(2), 300)] {
            let a = sys.run(test, None, 11);
            let b = sys.run(test, None, 11);
            assert_eq!(a.loop_counts, b.loop_counts, "{test} rerun identical");
            assert_eq!(a.events, b.events, "{test} rerun identical");
            assert_eq!(
                a.loop_count(work),
                offered,
                "{test}: every offered request handled exactly once"
            );
        }
    }
}
