//! The runtime injection and monitoring agent.
//!
//! One [`Agent`] drives one run of one workload. Target-system code calls the
//! agent's hooks inline (the reproduction's equivalent of Byteman-instrumented
//! bytecode). The agent is used through an `Rc` so that RAII guards —
//! [`FrameGuard`] for call-stack tracking and [`LoopGuard`] for loop
//! iteration tracking — can own a handle and unwind correctly when an
//! injected exception propagates out through `?`.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use csnake_sim::sim::Clock;
use csnake_sim::VirtualTime;

use crate::fault::{Fault, InjectAction, InjectionPlan};
use crate::registry::{BranchId, FaultId, FaultKind, FnId, Registry};
use crate::trace::{CallStack2, Occurrence, RunTrace};

struct LoopActivation {
    id: FaultId,
    /// Branch events of the current iteration.
    iter_buf: Vec<(BranchId, bool)>,
    /// Whether `iter()` has been called at least once in this activation.
    started: bool,
    /// Call-stack depth at entry; used to decide whether a fault site is
    /// *syntactically* enclosed by this loop (same function).
    depth: usize,
}

struct Inner {
    plan: Option<InjectionPlan>,
    /// One-shot throw/negate still pending.
    armed: bool,
    tracing: bool,
    stack: Vec<FnId>,
    frame_traces: Vec<Vec<(BranchId, bool)>>,
    loop_stack: Vec<LoopActivation>,
    trace: RunTrace,
}

/// Runtime injection + monitoring agent for a single run.
///
/// # Examples
///
/// ```
/// use std::rc::Rc;
/// use std::sync::Arc;
/// use csnake_inject::{Agent, ExceptionCategory, InjectionPlan, RegistryBuilder};
///
/// let mut b = RegistryBuilder::new("demo");
/// let f = b.func("Server.handle");
/// let tp = b.throw_point(f, 3, "IOException", ExceptionCategory::SystemSpecific, "ioe");
/// let reg = Arc::new(b.build());
///
/// let agent = Rc::new(Agent::new(reg, Some(InjectionPlan::throw(tp))));
/// let _frame = agent.frame(f);
/// let fault = agent.throw_guard(tp).expect("armed plan fires");
/// assert!(fault.injected);
/// assert!(agent.throw_guard(tp).is_none(), "one-shot");
/// ```
pub struct Agent {
    registry: Arc<Registry>,
    inner: RefCell<Inner>,
}

impl Agent {
    /// Creates an agent, optionally with an injection plan.
    pub fn new(registry: Arc<Registry>, plan: Option<InjectionPlan>) -> Self {
        Agent {
            registry,
            inner: RefCell::new(Inner {
                plan,
                armed: plan.is_some(),
                tracing: true,
                stack: Vec::with_capacity(16),
                frame_traces: Vec::with_capacity(16),
                loop_stack: Vec::with_capacity(8),
                trace: RunTrace::default(),
            }),
        }
    }

    /// The registry this agent instruments.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Enables/disables monitoring (used by the §8.5 overhead benchmark;
    /// injection still works either way).
    pub fn set_tracing(&self, on: bool) {
        self.inner.borrow_mut().tracing = on;
    }

    /// Closest two call-stack levels above the current (top) frame.
    fn stack2(inner: &Inner) -> CallStack2 {
        let s = &inner.stack;
        let n = s.len();
        let a = if n >= 2 { Some(s[n - 2]) } else { None };
        let b = if n >= 3 { Some(s[n - 3]) } else { None };
        [a, b]
    }

    /// Local-compatibility state at a fault site: the branch trace of the
    /// enclosing loop iteration (if the innermost active loop lives in the
    /// current function) or of the enclosing function, plus the 2-level
    /// call stack (§6.2).
    fn occurrence_state(inner: &Inner) -> Occurrence {
        let stack = Self::stack2(inner);
        let local = match inner.loop_stack.last() {
            Some(l) if l.depth == inner.stack.len() => l.iter_buf.clone(),
            _ => inner.frame_traces.last().cloned().unwrap_or_default(),
        };
        Occurrence::new(stack, local)
    }

    /// Pushes a call frame; returns a guard that pops it on drop.
    ///
    /// Also records a dynamic call-graph edge (§B.1).
    pub fn frame(self: &Rc<Self>, f: FnId) -> FrameGuard {
        {
            let mut inner = self.inner.borrow_mut();
            inner.trace.hook_count += 1;
            if inner.tracing {
                if let Some(&caller) = inner.stack.last() {
                    inner.trace.call_edges.insert((caller, f));
                }
            }
            inner.stack.push(f);
            inner.frame_traces.push(Vec::new());
        }
        FrameGuard {
            agent: Rc::clone(self),
        }
    }

    /// Records a branch evaluation; returns `outcome` so it can be used
    /// inline: `if agent.branch(B1, x > 0) { ... }`.
    pub fn branch(&self, b: BranchId, outcome: bool) -> bool {
        let mut inner = self.inner.borrow_mut();
        inner.trace.hook_count += 1;
        if inner.tracing {
            if let Some(buf) = inner.frame_traces.last_mut() {
                buf.push((b, outcome));
            }
            if let Some(l) = inner.loop_stack.last_mut() {
                l.iter_buf.push((b, outcome));
            }
        }
        outcome
    }

    fn record_occurrence(inner: &mut Inner, p: FaultId) -> Occurrence {
        let occ = Self::occurrence_state(inner);
        if inner.tracing {
            inner
                .trace
                .occurrences
                .entry(p)
                .or_default()
                .push(occ.clone());
        }
        occ
    }

    /// Hook at an exception guard (if-statement or library call site).
    ///
    /// Returns `Some(fault)` when the injection plan targets this point and
    /// is still armed — the caller must propagate the fault exactly as it
    /// would its natural exception.
    pub fn throw_guard(&self, p: FaultId) -> Option<Fault> {
        let mut inner = self.inner.borrow_mut();
        inner.trace.hook_count += 1;
        inner.trace.coverage.insert(p);
        let fire = matches!(
            inner.plan,
            Some(InjectionPlan {
                target,
                action: InjectAction::Throw
            }) if target == p
        ) && inner.armed;
        if !fire {
            return None;
        }
        inner.armed = false;
        let occ = Self::record_occurrence(&mut inner, p);
        inner.trace.injected = Some((p, occ));
        let class = self
            .registry
            .point(p)
            .exception
            .as_ref()
            .map(|e| e.class)
            .unwrap_or("InjectedException");
        Some(Fault {
            point: p,
            exception: class,
            injected: true,
        })
    }

    /// Hook on the natural throw path: the guard condition was true and the
    /// system is about to raise its own exception.
    pub fn throw_fired(&self, p: FaultId) -> Fault {
        let mut inner = self.inner.borrow_mut();
        inner.trace.hook_count += 1;
        inner.trace.coverage.insert(p);
        Self::record_occurrence(&mut inner, p);
        let class = self
            .registry
            .point(p)
            .exception
            .as_ref()
            .map(|e| e.class)
            .unwrap_or("Exception");
        Fault {
            point: p,
            exception: class,
            injected: false,
        }
    }

    /// Hook wrapping the return value of a boolean error detector.
    ///
    /// Returns the (possibly negated) value the caller must use. An error
    /// occurrence is recorded when the produced value signals "error" per the
    /// point's [`crate::registry::NegationMeta::error_when`] polarity, or
    /// when the negation injection fired.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a negation point.
    pub fn negation_point(&self, p: FaultId, value: bool) -> bool {
        let meta = *self
            .registry
            .point(p)
            .negation
            .as_ref()
            .expect("negation_point called on non-negation fault point");
        let mut inner = self.inner.borrow_mut();
        inner.trace.hook_count += 1;
        inner.trace.coverage.insert(p);
        let fire = matches!(
            inner.plan,
            Some(InjectionPlan {
                target,
                action: InjectAction::Negate
            }) if target == p
        ) && inner.armed;
        let out = if fire { !value } else { value };
        if fire {
            inner.armed = false;
            let occ = Self::record_occurrence(&mut inner, p);
            inner.trace.injected = Some((p, occ));
        } else if out == meta.error_when {
            Self::record_occurrence(&mut inner, p);
        }
        out
    }

    /// Enters a loop; returns a guard whose [`LoopGuard::iter`] must be
    /// called at the head of every iteration.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a loop point.
    pub fn loop_enter(self: &Rc<Self>, p: FaultId) -> LoopGuard {
        assert_eq!(
            self.registry.point(p).kind,
            FaultKind::LoopPoint,
            "loop_enter called on non-loop fault point"
        );
        {
            let mut inner = self.inner.borrow_mut();
            inner.trace.hook_count += 1;
            inner.trace.coverage.insert(p);
            let stack = Self::stack2(&inner);
            let depth = inner.stack.len();
            if inner.tracing {
                inner
                    .trace
                    .loop_states
                    .entry(p)
                    .or_default()
                    .entry_stacks
                    .insert(stack);
            }
            inner.loop_stack.push(LoopActivation {
                id: p,
                iter_buf: Vec::new(),
                started: false,
                depth,
            });
        }
        LoopGuard {
            agent: Rc::clone(self),
            id: p,
        }
    }

    fn finalize_iteration(inner: &mut Inner) {
        let Some(l) = inner.loop_stack.last_mut() else {
            return;
        };
        if !l.started {
            return;
        }
        let sig = crate::trace::fnv1a(
            l.iter_buf
                .iter()
                .map(|(b, o)| ((b.0 as u64) << 1) | (*o as u64)),
        );
        let id = l.id;
        l.iter_buf.clear();
        if inner.tracing {
            inner
                .trace
                .loop_states
                .entry(id)
                .or_default()
                .iter_sigs
                .insert(sig);
        }
    }

    fn loop_iter(&self, id: FaultId, clock: &mut dyn Clock) {
        let mut inner = self.inner.borrow_mut();
        inner.trace.hook_count += 1;
        debug_assert_eq!(
            inner.loop_stack.last().map(|l| l.id),
            Some(id),
            "LoopGuard::iter called out of LIFO order"
        );
        Self::finalize_iteration(&mut inner);
        if let Some(l) = inner.loop_stack.last_mut() {
            l.started = true;
        }
        *inner.trace.loop_counts.entry(id).or_insert(0) += 1;
        if let Some(InjectionPlan {
            target,
            action: InjectAction::Delay(d),
        }) = inner.plan
        {
            if target == id {
                clock.advance(d);
                if inner.trace.injected.is_none() {
                    let occ = Occurrence::new(Self::stack2(&inner), Vec::new());
                    inner.trace.injected = Some((id, occ));
                }
            }
        }
    }

    fn loop_exit(&self, id: FaultId) {
        let mut inner = self.inner.borrow_mut();
        Self::finalize_iteration(&mut inner);
        let popped = inner.loop_stack.pop();
        debug_assert_eq!(
            popped.map(|l| l.id),
            Some(id),
            "LoopGuard dropped out of LIFO order"
        );
    }

    fn frame_exit(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.stack.pop();
        inner.frame_traces.pop();
    }

    /// Raises a system-level failure flag (oracle for the black-box fuzzer).
    pub fn mark_flag(&self, flag: &str) {
        self.inner.borrow_mut().trace.flags.insert(flag.to_string());
    }

    /// `true` if the plan's one-shot action already fired (or a delay plan
    /// applied at least once).
    pub fn injection_fired(&self) -> bool {
        self.inner.borrow().trace.injected.is_some()
    }

    /// Finalizes the run and extracts the trace.
    pub fn finish(&self, end_time: VirtualTime, events: u64) -> RunTrace {
        let mut inner = self.inner.borrow_mut();
        let mut t = std::mem::take(&mut inner.trace);
        t.end_time = end_time;
        t.events = events;
        t
    }
}

/// RAII call-frame guard; pops the agent's shadow stack on drop.
pub struct FrameGuard {
    agent: Rc<Agent>,
}

impl Drop for FrameGuard {
    fn drop(&mut self) {
        self.agent.frame_exit();
    }
}

/// RAII loop guard; finalizes iteration signatures and pops the loop stack
/// on drop.
pub struct LoopGuard {
    agent: Rc<Agent>,
    id: FaultId,
}

impl LoopGuard {
    /// Marks the head of one loop iteration; applies delay injection.
    pub fn iter(&self, clock: &mut dyn Clock) {
        self.agent.loop_iter(self.id, clock);
    }
}

impl Drop for LoopGuard {
    fn drop(&mut self) {
        self.agent.loop_exit(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{BoolSource, ExceptionCategory, RegistryBuilder};

    struct TestClock(VirtualTime);
    impl Clock for TestClock {
        fn now(&self) -> VirtualTime {
            self.0
        }
        fn advance(&mut self, d: VirtualTime) {
            self.0 += d;
        }
    }

    struct Fixture {
        agent: Rc<Agent>,
        f_outer: FnId,
        f_inner: FnId,
        tp: FaultId,
        np: FaultId,
        lp: FaultId,
        br: BranchId,
    }

    fn fixture(plan: Option<InjectionPlan>) -> Fixture {
        let mut b = RegistryBuilder::new("t");
        let f_outer = b.func("Outer.run");
        let f_inner = b.func("Inner.step");
        let tp = b.throw_point(
            f_inner,
            5,
            "IOException",
            ExceptionCategory::SystemSpecific,
            "tp",
        );
        let np = b.negation_point(f_inner, 9, true, BoolSource::ErrorDetector, "np");
        let lp = b.workload_loop(f_outer, 2, false, "lp");
        let br = b.branch(f_inner, 4);
        let reg = Arc::new(b.build());
        Fixture {
            agent: Rc::new(Agent::new(reg, plan)),
            f_outer,
            f_inner,
            tp,
            np,
            lp,
            br,
        }
    }

    #[test]
    fn throw_guard_fires_once_then_stays_quiet() {
        let fx = fixture(Some(InjectionPlan::throw(fx_tp())));
        fn fx_tp() -> FaultId {
            FaultId(0)
        }
        let _f = fx.agent.frame(fx.f_inner);
        let fault = fx.agent.throw_guard(fx.tp).expect("fires");
        assert!(fault.injected);
        assert_eq!(fault.exception, "IOException");
        assert!(fx.agent.throw_guard(fx.tp).is_none());
        assert!(fx.agent.injection_fired());
    }

    #[test]
    fn throw_guard_ignores_other_points() {
        let fx = fixture(Some(InjectionPlan::throw(FaultId(1))));
        let _f = fx.agent.frame(fx.f_inner);
        assert!(fx.agent.throw_guard(fx.tp).is_none());
        assert!(!fx.agent.injection_fired());
    }

    #[test]
    fn natural_throw_recorded_with_stack() {
        let fx = fixture(None);
        let _o = fx.agent.frame(fx.f_outer);
        let _i = fx.agent.frame(fx.f_inner);
        let fault = fx.agent.throw_fired(fx.tp);
        assert!(!fault.injected);
        let t = fx.agent.finish(VirtualTime::ZERO, 0);
        let occ = &t.occurrences[&fx.tp][0];
        assert_eq!(occ.stack, [Some(fx.f_outer), None]);
    }

    #[test]
    fn negation_flips_once_and_records_error_occurrence() {
        let fx = fixture(Some(InjectionPlan::negate(FaultId(1))));
        let _f = fx.agent.frame(fx.f_inner);
        // error_when = true; healthy value = false. Injection flips to true.
        assert!(fx.agent.negation_point(fx.np, false));
        // One-shot: second call passes through.
        assert!(!fx.agent.negation_point(fx.np, false));
        let t = fx.agent.finish(VirtualTime::ZERO, 0);
        assert_eq!(t.occurrences[&fx.np].len(), 1);
        assert_eq!(t.injected.as_ref().unwrap().0, fx.np);
    }

    #[test]
    fn natural_detector_error_recorded_without_plan() {
        let fx = fixture(None);
        let _f = fx.agent.frame(fx.f_inner);
        assert!(fx.agent.negation_point(fx.np, true)); // true == error_when
        assert!(!fx.agent.negation_point(fx.np, false)); // healthy: no record
        let t = fx.agent.finish(VirtualTime::ZERO, 0);
        assert_eq!(t.occurrences[&fx.np].len(), 1);
        assert!(t.injected.is_none());
    }

    #[test]
    fn loop_counts_and_iteration_sigs() {
        let fx = fixture(None);
        let _o = fx.agent.frame(fx.f_outer);
        let mut clock = TestClock(VirtualTime::ZERO);
        {
            let lg = fx.agent.loop_enter(fx.lp);
            for i in 0..5 {
                lg.iter(&mut clock);
                // Branch outcome varies per iteration → ≥2 distinct sigs.
                let _f = fx.agent.frame(fx.f_inner);
                fx.agent.branch(fx.br, i % 2 == 0);
            }
        }
        let t = fx.agent.finish(VirtualTime::ZERO, 0);
        assert_eq!(t.loop_count(fx.lp), 5);
        let st = &t.loop_states[&fx.lp];
        assert_eq!(st.iter_sigs.len(), 2);
        assert!(st.entry_stacks.contains(&[None, None]));
        assert_eq!(clock.now(), VirtualTime::ZERO, "no delay without plan");
    }

    #[test]
    fn delay_plan_advances_clock_every_iteration() {
        let fx = fixture(Some(InjectionPlan::delay(
            FaultId(2),
            VirtualTime::from_millis(100),
        )));
        let _o = fx.agent.frame(fx.f_outer);
        let mut clock = TestClock(VirtualTime::ZERO);
        {
            let lg = fx.agent.loop_enter(fx.lp);
            for _ in 0..7 {
                lg.iter(&mut clock);
            }
        }
        assert_eq!(clock.now(), VirtualTime::from_millis(700));
        assert!(fx.agent.injection_fired());
        let t = fx.agent.finish(VirtualTime::ZERO, 0);
        assert_eq!(t.injected.as_ref().unwrap().0, fx.lp);
    }

    #[test]
    fn branch_trace_feeds_occurrence_state_in_loop() {
        // A fault inside a loop in the same function uses the current
        // iteration's branch buffer, not the whole frame history.
        let fx = fixture(None);
        let _o = fx.agent.frame(fx.f_outer);
        let br_outer = BranchId(0);
        let lg = fx.agent.loop_enter(fx.lp);
        lg.iter(&mut TestClock(VirtualTime::ZERO));
        fx.agent.branch(br_outer, true);
        lg.iter(&mut TestClock(VirtualTime::ZERO));
        fx.agent.branch(br_outer, false);
        // Fault in iteration 2: local trace must be just [(br, false)].
        let fault_occ = {
            // tp lives in f_inner, but for this test record at loop level via
            // a throw point declared in f_outer.
            let inner = Agent::occurrence_state(&fx.agent.inner.borrow());
            inner
        };
        assert_eq!(fault_occ.local_trace, vec![(br_outer, false)]);
        drop(lg);
    }

    #[test]
    fn call_edges_form_dynamic_call_graph() {
        let fx = fixture(None);
        {
            let _o = fx.agent.frame(fx.f_outer);
            let _i = fx.agent.frame(fx.f_inner);
        }
        let t = fx.agent.finish(VirtualTime::ZERO, 0);
        assert!(t.call_edges.contains(&(fx.f_outer, fx.f_inner)));
        assert_eq!(t.call_edges.len(), 1);
    }

    #[test]
    fn coverage_tracks_reached_points_only() {
        let fx = fixture(None);
        let _f = fx.agent.frame(fx.f_inner);
        let _ = fx.agent.throw_guard(fx.tp);
        let t = fx.agent.finish(VirtualTime::ZERO, 0);
        assert!(t.coverage.contains(&fx.tp));
        assert!(!t.coverage.contains(&fx.np));
        assert!(!t.occurred(fx.tp), "guard reach is not an occurrence");
    }

    #[test]
    fn tracing_off_still_injects_but_skips_recording() {
        let fx = fixture(Some(InjectionPlan::throw(FaultId(0))));
        fx.agent.set_tracing(false);
        let _f = fx.agent.frame(fx.f_inner);
        fx.agent.branch(fx.br, true);
        assert!(fx.agent.throw_guard(fx.tp).is_some());
        let t = fx.agent.finish(VirtualTime::ZERO, 0);
        assert!(!t.occurrences.contains_key(&fx.tp));
        assert!(t.call_edges.is_empty());
        assert!(t.hook_count > 0);
    }

    #[test]
    fn nested_loops_track_independently() {
        let fx = fixture(None);
        let mut b = RegistryBuilder::new("t2");
        let f = b.func("X.f");
        let outer_lp = b.workload_loop(f, 1, false, "outer");
        let inner_lp = b.workload_loop(f, 2, false, "inner");
        let reg = Arc::new(b.build());
        let agent = Rc::new(Agent::new(reg, None));
        let mut clock = TestClock(VirtualTime::ZERO);
        let _frame = agent.frame(f);
        {
            let lo = agent.loop_enter(outer_lp);
            for _ in 0..3 {
                lo.iter(&mut clock);
                let li = agent.loop_enter(inner_lp);
                for _ in 0..4 {
                    li.iter(&mut clock);
                }
            }
        }
        let t = agent.finish(VirtualTime::ZERO, 0);
        assert_eq!(t.loop_count(outer_lp), 3);
        assert_eq!(t.loop_count(inner_lp), 12);
        drop(fx);
    }
}
