//! Execution traces recorded by the runtime agent.

use std::collections::{BTreeMap, BTreeSet};

use csnake_sim::VirtualTime;
use serde::{Deserialize, Serialize};

use crate::registry::{BranchId, FaultId, FnId};

/// FNV-1a hash, used for local-trace signatures.
///
/// A tiny, dependency-free, stable hash is all the compatibility check needs;
/// signatures are compared within one detection campaign only.
pub fn fnv1a(bytes: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in bytes {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

/// The two closest call-stack levels above a site's enclosing function
/// (§6.2 "2-call-site sensitivity").
pub type CallStack2 = [Option<FnId>; 2];

/// Packs a 2-level call stack injectively into a pair of words
/// (`None → 0`, `Some(f) → f + 1`), so stack sets can be compared and
/// merged as plain sorted `u64` pairs without touching `Option`s.
///
/// Used by the stitch index's state canonicaliser; exactness matters
/// (a hash here would risk false compatibility).
pub fn stack_key(stack: &CallStack2) -> (u64, u64) {
    let slot = |s: Option<FnId>| s.map(|f| f.0 as u64 + 1).unwrap_or(0);
    (slot(stack[0]), slot(stack[1]))
}

/// The sorted, deduplicated signature multiset of an occurrence list — the
/// §6.2 compatibility check depends on signatures only, so this is the
/// canonical form consumers (the stitch index, the compatibility merge)
/// intern and intersect.
pub fn occurrence_sigs_sorted(occs: &[Occurrence]) -> Vec<u64> {
    let mut sigs: Vec<u64> = occs.iter().map(|o| o.sig).collect();
    sigs.sort_unstable();
    sigs.dedup();
    sigs
}

/// One observed fault occurrence with its local-compatibility state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Occurrence {
    /// Closest two callers (excluding the enclosing function itself).
    pub stack: CallStack2,
    /// Local branch trace: branch monitor points and their outcomes in the
    /// fault's enclosing loop iteration or function.
    pub local_trace: Vec<(BranchId, bool)>,
    /// Signature: hash of `stack` + `local_trace`.
    pub sig: u64,
}

impl Occurrence {
    /// Builds an occurrence, computing its signature.
    pub fn new(stack: CallStack2, local_trace: Vec<(BranchId, bool)>) -> Self {
        let sig = Self::signature(&stack, &local_trace);
        Occurrence {
            stack,
            local_trace,
            sig,
        }
    }

    /// Computes the signature of a (stack, trace) pair.
    pub fn signature(stack: &CallStack2, trace: &[(BranchId, bool)]) -> u64 {
        let stack_words = stack.iter().map(|s| s.map(|f| f.0 as u64 + 1).unwrap_or(0));
        let trace_words = trace
            .iter()
            .map(|(b, o)| ((b.0 as u64) << 1) | (*o as u64) | (1 << 62));
        fnv1a(stack_words.chain(trace_words))
    }
}

/// Compatibility state of a loop fault point in one run.
///
/// Delay injection covers *all* iterations, so the paper "conservatively
/// checks for matching traces in any loop iteration between tests" (§6.2):
/// we keep the set of distinct per-iteration signatures.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopState {
    /// Call stacks observed at loop entry (closest two callers of the
    /// enclosing function); a loop re-entered from different request paths
    /// accumulates several.
    pub entry_stacks: BTreeSet<CallStack2>,
    /// Distinct signatures of individual iterations.
    pub iter_sigs: BTreeSet<u64>,
}

impl LoopState {
    /// The entry stacks as exact packed word pairs, in sorted order
    /// (`BTreeSet` iteration order is preserved by the injective packing).
    pub fn stack_keys(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.entry_stacks.iter().map(stack_key)
    }
}

/// Deduplicated union of a fault point's occurrences across a set of
/// runs, sorted by signature so the §6.2 compatibility check runs as a
/// linear merge.
///
/// Shared by the fault-causality analysis' reference and indexed paths.
/// Like [`merged_loop_state`], this is deliberately computed on demand
/// rather than eagerly in [`crate::TraceIndex`]: the analysis needs the
/// merged union only for the few points that emit edges, and profiling
/// showed eager merging of every occurring point dominates the index
/// build.
pub fn merged_occurrences(traces: &[RunTrace], p: FaultId) -> Vec<Occurrence> {
    let mut out: Vec<Occurrence> = Vec::new();
    for t in traces {
        if let Some(occs) = t.occurrences.get(&p) {
            for o in occs {
                // Occurrence lists are tiny; a linear scan over the kept
                // occurrences beats a set.
                if !out.iter().any(|m| m.sig == o.sig) {
                    out.push(o.clone());
                }
            }
        }
    }
    out.sort_unstable_by_key(|o| o.sig);
    out
}

/// Union of a loop point's compatibility state across a set of runs
/// (`None` when no run recorded one).
///
/// Shared by the fault-causality analysis' reference and indexed paths;
/// set union is order-independent, so both produce identical states. Kept
/// out of [`crate::TraceIndex`] deliberately: profiling showed merging
/// every reached loop eagerly at index build costs more than the few
/// merges per experiment the analysis actually performs (only loops that
/// emit edges need their state).
pub fn merged_loop_state(traces: &[RunTrace], l: FaultId) -> Option<LoopState> {
    let mut merged: Option<LoopState> = None;
    for t in traces {
        if let Some(st) = t.loop_states.get(&l) {
            let m = merged.get_or_insert_with(LoopState::default);
            m.entry_stacks.extend(st.entry_stacks.iter().cloned());
            m.iter_sigs.extend(st.iter_sigs.iter().copied());
        }
    }
    merged
}

/// Everything the agent recorded during one run of one workload.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunTrace {
    /// Fault points whose hook executed at least once.
    pub coverage: BTreeSet<FaultId>,
    /// Error occurrences per fault point: natural throws fired, detector
    /// errors observed, and the injected occurrence itself.
    pub occurrences: BTreeMap<FaultId, Vec<Occurrence>>,
    /// Total iteration count per loop point.
    pub loop_counts: BTreeMap<FaultId, u64>,
    /// Compatibility state per loop point.
    pub loop_states: BTreeMap<FaultId, LoopState>,
    /// The injected fault and its occurrence state, if the plan fired.
    pub injected: Option<(FaultId, Occurrence)>,
    /// Dynamic call-graph edges (caller, callee) observed (§B.1).
    pub call_edges: BTreeSet<(FnId, FnId)>,
    /// Total number of agent hook executions (monitoring-overhead proxy).
    pub hook_count: u64,
    /// System-level failure flags raised by the target (fuzzer oracle).
    pub flags: BTreeSet<String>,
    /// Virtual time at which the workload finished.
    pub end_time: VirtualTime,
    /// Simulator events executed.
    pub events: u64,
}

impl RunTrace {
    /// `true` if the given fault point had at least one error occurrence.
    pub fn occurred(&self, f: FaultId) -> bool {
        self.occurrences.get(&f).is_some_and(|v| !v.is_empty())
    }

    /// Iteration count of a loop point (0 if never reached).
    pub fn loop_count(&self, f: FaultId) -> u64 {
        self.loop_counts.get(&f).copied().unwrap_or(0)
    }

    /// All fault points with at least one occurrence.
    pub fn occurring_points(&self) -> impl Iterator<Item = FaultId> + '_ {
        self.occurrences
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(k, _)| *k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a([1, 2, 3]), fnv1a([1, 2, 3]));
        assert_ne!(fnv1a([1, 2, 3]), fnv1a([1, 2, 4]));
        assert_ne!(fnv1a([1, 2]), fnv1a([2, 1]));
        assert_ne!(fnv1a([]), fnv1a([0]));
    }

    #[test]
    fn occurrence_signature_depends_on_stack_and_trace() {
        let o1 = Occurrence::new([Some(FnId(1)), None], vec![(BranchId(0), true)]);
        let o2 = Occurrence::new([Some(FnId(2)), None], vec![(BranchId(0), true)]);
        let o3 = Occurrence::new([Some(FnId(1)), None], vec![(BranchId(0), false)]);
        let o4 = Occurrence::new([Some(FnId(1)), None], vec![(BranchId(0), true)]);
        assert_ne!(o1.sig, o2.sig);
        assert_ne!(o1.sig, o3.sig);
        assert_eq!(o1.sig, o4.sig);
    }

    #[test]
    fn empty_stack_slot_differs_from_fn_zero() {
        let with_none = Occurrence::new([None, None], vec![]);
        let with_zero = Occurrence::new([Some(FnId(0)), None], vec![]);
        assert_ne!(with_none.sig, with_zero.sig);
    }

    #[test]
    fn run_trace_queries() {
        let mut t = RunTrace::default();
        assert!(!t.occurred(FaultId(1)));
        assert_eq!(t.loop_count(FaultId(2)), 0);
        t.occurrences
            .entry(FaultId(1))
            .or_default()
            .push(Occurrence::new([None, None], vec![]));
        t.loop_counts.insert(FaultId(2), 17);
        assert!(t.occurred(FaultId(1)));
        assert_eq!(t.loop_count(FaultId(2)), 17);
        assert_eq!(t.occurring_points().collect::<Vec<_>>(), vec![FaultId(1)]);
    }
}
