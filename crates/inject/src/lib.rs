//! Fault-point registry, runtime injection agent, and trace recorder.
//!
//! This crate is the reproduction's stand-in for the paper's WALA-based
//! instrumentor and Byteman-based runtime agent (§4.2, §7). Real CSnake
//! rewrites Java bytecode to insert hooks at *throw points*, *library call
//! sites*, *negation points* (boolean error detectors) and *loop points*;
//! here, target systems declare the same sites in a [`Registry`] and call
//! the corresponding [`Agent`] hooks inline.
//!
//! The agent implements the paper's runtime behaviours:
//!
//! * **Exception injection** — a one-shot throw when the guarded if-statement
//!   or library call site is reached ([`Agent::throw_guard`]).
//! * **Negation injection** — flipping the return value of a boolean
//!   error-detector function ([`Agent::negation_point`]).
//! * **Delay injection** — a spinning delay at the head of every iteration of
//!   a loop ([`LoopGuard::iter`]), realised as a virtual-time advance.
//! * **Monitoring** — coverage, error occurrences with their *local branch
//!   trace* and *2-level call stack* (the paper's local-compatibility state,
//!   §6.2), per-loop iteration counts, and the dynamic call graph (§B.1).

pub mod agent;
pub mod fault;
pub mod index;
pub mod registry;
pub mod trace;

/// Thread-local switch used by harnesses to run targets with monitoring
/// disabled (the §8.5 overhead comparison). Targets construct their own
/// [`Agent`]; the shared run harness consults this switch at construction.
pub mod tracing_switch {
    use std::cell::Cell;

    std::thread_local! {
        static TRACING: Cell<bool> = const { Cell::new(true) };
    }

    /// Enables/disables monitoring for agents created on this thread.
    pub fn set(on: bool) {
        TRACING.with(|t| t.set(on));
    }

    /// Current switch state (default: enabled).
    pub fn get() -> bool {
        TRACING.with(|t| t.get())
    }
}

pub use agent::{Agent, FrameGuard, LoopGuard};
pub use fault::{Fault, InjectAction, InjectionPlan};
pub use index::TraceIndex;
pub use registry::{
    BoolSource, BranchId, BranchPoint, ExceptionCategory, ExceptionMeta, FaultId, FaultKind,
    FaultPoint, FnId, LoopBound, LoopMeta, NegationMeta, Registry, RegistryBuilder, Site, TestId,
};
pub use trace::{
    fnv1a, merged_loop_state, merged_occurrences, occurrence_sigs_sorted, stack_key, CallStack2,
    LoopState, Occurrence, RunTrace,
};
