//! Dense per-trace-set index for the campaign analysis hot path.
//!
//! The fault-causality analysis (FCA, §4.3) compares every injection
//! experiment against profile runs of the same test. The straightforward
//! implementation re-walks every [`RunTrace`] for every one of the
//! registry's fault points — `O(points × runs)` map probes per experiment,
//! plus repeated occurrence/loop-state merges for every edge it emits.
//!
//! A [`TraceIndex`] is built **once per trace set** (once per test for the
//! cached profile runs; once per experiment for its injection runs) and
//! answers every question FCA asks in O(1) or with a precomputed slice:
//!
//! * **occurrence presence** — a dense per-point count of runs with at
//!   least one occurrence, plus the sorted list of occurring points (FCA
//!   only emits edges for points that occurred, so iterating the sparse
//!   list replaces the dense registry scan);
//! * **loop-count matrix** — per registry loop point, the run-ordered
//!   iteration counts as one contiguous `f64` row, ready for batched
//!   Welch t-tests; plus the sorted list of loops reached at least once;
//! * **injection bookkeeping** — the run-ordered `(fault, occurrence)`
//!   pairs of fired injections, from which FCA derives the cause state.
//!
//! Occurrence and loop-state merges are deliberately *not* eager — see
//! [`crate::trace::merged_occurrences`] and
//! [`crate::trace::merged_loop_state`]: the analysis needs merged states
//! only for the few points/loops that emit edges, and profiling showed
//! pre-merging every occurring point and reached loop dominates the whole
//! index build.
//!
//! Build cost is one walk over each trace's sparse maps:
//! `O(runs × entries)` plus the dense presence vectors.

use crate::registry::{FaultKind, Registry};
use crate::trace::{Occurrence, RunTrace};
use crate::FaultId;

/// Sentinel slot for "not a loop point / never occurred".
const NO_SLOT: u32 = u32::MAX;

/// Immutable index over one set of runs of one workload (see the module
/// docs for the contents and complexity).
#[derive(Debug, Clone, Default)]
pub struct TraceIndex {
    n_runs: usize,
    /// Dense per registry point: number of runs with ≥ 1 occurrence.
    occ_runs: Vec<u32>,
    /// Points with `occ_runs > 0`, ascending (= registry order).
    occurring: Vec<FaultId>,
    /// Registry loop points, ascending.
    loop_points: Vec<FaultId>,
    /// Dense per registry point: index into the loop arrays.
    loop_slot: Vec<u32>,
    /// Row-major loop-count matrix: `loop_points.len() × n_runs`, rows in
    /// run order (bit-identical to walking the traces per point).
    loop_counts: Vec<f64>,
    /// Loop slots with at least one non-zero count, ascending.
    active_loops: Vec<u32>,
    /// Fired injections in run order.
    injected: Vec<(FaultId, Occurrence)>,
}

impl TraceIndex {
    /// Builds the index for one set of runs against one registry.
    ///
    /// Fault ids outside the registry's range are ignored, matching the
    /// analysis' behaviour of only ever querying registry points.
    pub fn build(registry: &Registry, traces: &[RunTrace]) -> TraceIndex {
        let n_points = registry.points().len();
        let n_runs = traces.len();

        // Occurrence presence counts.
        let mut occ_runs = vec![0u32; n_points];
        for t in traces {
            for (f, occs) in &t.occurrences {
                if !occs.is_empty() {
                    if let Some(slot) = occ_runs.get_mut(f.0 as usize) {
                        *slot += 1;
                    }
                }
            }
        }
        let occurring: Vec<FaultId> = (0..n_points as u32)
            .filter(|&i| occ_runs[i as usize] > 0)
            .map(FaultId)
            .collect();

        // Loop-count matrix over the registry's loop points, filled from
        // one pass over each trace's sparse count map (absent = 0.0).
        let loop_points: Vec<FaultId> = registry
            .points_of_kind(FaultKind::LoopPoint)
            .map(|p| p.id)
            .collect();
        let mut loop_slot = vec![NO_SLOT; n_points];
        for (slot, l) in loop_points.iter().enumerate() {
            loop_slot[l.0 as usize] = slot as u32;
        }
        let mut loop_counts = vec![0.0f64; loop_points.len() * n_runs];
        for (r, t) in traces.iter().enumerate() {
            for (l, &c) in &t.loop_counts {
                match loop_slot.get(l.0 as usize) {
                    Some(&s) if s != NO_SLOT => {
                        loop_counts[s as usize * n_runs + r] = c as f64;
                    }
                    _ => {}
                }
            }
        }
        let active_loops: Vec<u32> = (0..loop_points.len() as u32)
            .filter(|&s| {
                loop_counts[s as usize * n_runs..(s as usize + 1) * n_runs]
                    .iter()
                    .any(|&c| c != 0.0)
            })
            .collect();

        let injected: Vec<(FaultId, Occurrence)> =
            traces.iter().filter_map(|t| t.injected.clone()).collect();

        TraceIndex {
            n_runs,
            occ_runs,
            occurring,
            loop_points,
            loop_slot,
            loop_counts,
            active_loops,
            injected,
        }
    }

    /// Number of runs the index covers.
    pub fn n_runs(&self) -> usize {
        self.n_runs
    }

    /// Number of runs in which the point had at least one occurrence.
    pub fn occ_runs(&self, f: FaultId) -> u32 {
        self.occ_runs.get(f.0 as usize).copied().unwrap_or(0)
    }

    /// `true` if the point occurred in any run.
    pub fn occurred(&self, f: FaultId) -> bool {
        self.occ_runs(f) > 0
    }

    /// Points with at least one occurrence, ascending by id.
    pub fn occurring_points(&self) -> &[FaultId] {
        &self.occurring
    }

    /// Registry loop points, ascending by id.
    pub fn loop_points(&self) -> &[FaultId] {
        &self.loop_points
    }

    /// Dense slot of a loop point, if `f` is one.
    pub fn loop_slot(&self, f: FaultId) -> Option<usize> {
        match self.loop_slot.get(f.0 as usize) {
            Some(&s) if s != NO_SLOT => Some(s as usize),
            _ => None,
        }
    }

    /// The run-ordered iteration counts of a loop slot.
    pub fn loop_counts_row(&self, slot: usize) -> &[f64] {
        &self.loop_counts[slot * self.n_runs..(slot + 1) * self.n_runs]
    }

    /// Loop slots reached (non-zero count) in at least one run, ascending.
    pub fn active_loop_slots(&self) -> &[u32] {
        &self.active_loops
    }

    /// Fired injections `(fault, occurrence)` in run order.
    pub fn injected(&self) -> &[(FaultId, Occurrence)] {
        &self.injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{BoolSource, ExceptionCategory, RegistryBuilder};

    fn registry() -> (Registry, FaultId, FaultId, FaultId, FaultId) {
        let mut b = RegistryBuilder::new("idx");
        let f = b.func("X.f");
        let tp = b.throw_point(f, 1, "IOException", ExceptionCategory::SystemSpecific, "tp");
        let np = b.negation_point(f, 2, true, BoolSource::ErrorDetector, "np");
        let l0 = b.workload_loop(f, 3, false, "l0");
        let l1 = b.workload_loop(f, 4, false, "l1");
        (b.build(), tp, np, l0, l1)
    }

    fn occ(seed: u32) -> Occurrence {
        Occurrence::new([Some(crate::FnId(seed)), None], vec![])
    }

    #[test]
    fn presence_counts_and_sparse_lists() {
        let (reg, tp, np, l0, l1) = registry();
        let mut t1 = RunTrace::default();
        t1.occurrences.entry(tp).or_default().push(occ(1));
        t1.loop_counts.insert(l0, 5);
        let mut t2 = RunTrace::default();
        t2.occurrences.entry(tp).or_default().push(occ(2));
        t2.occurrences.entry(np).or_default(); // empty list: not occurred
        let idx = TraceIndex::build(&reg, &[t1, t2]);
        assert_eq!(idx.n_runs(), 2);
        assert_eq!(idx.occ_runs(tp), 2);
        assert_eq!(idx.occ_runs(np), 0);
        assert!(idx.occurred(tp) && !idx.occurred(np));
        assert_eq!(idx.occurring_points(), &[tp]);
        // Loop matrix: l0 = [5, 0], l1 = [0, 0]; only l0 active.
        let s0 = idx.loop_slot(l0).unwrap();
        let s1 = idx.loop_slot(l1).unwrap();
        assert_eq!(idx.loop_counts_row(s0), &[5.0, 0.0]);
        assert_eq!(idx.loop_counts_row(s1), &[0.0, 0.0]);
        assert_eq!(idx.active_loop_slots(), &[s0 as u32]);
        assert!(idx.loop_slot(tp).is_none());
    }

    #[test]
    fn merged_occurrences_dedup_and_sort_by_signature() {
        use crate::trace::merged_occurrences;
        let (_, tp, ..) = registry();
        let (a, b) = (occ(1), occ(2));
        let mut t1 = RunTrace::default();
        t1.occurrences.entry(tp).or_default().push(b.clone());
        t1.occurrences.entry(tp).or_default().push(a.clone());
        let mut t2 = RunTrace::default();
        t2.occurrences.entry(tp).or_default().push(a.clone());
        let merged = merged_occurrences(&[t1, t2], tp);
        assert_eq!(merged.len(), 2);
        assert!(merged.windows(2).all(|w| w[0].sig < w[1].sig));
        assert!(merged_occurrences(&[], tp).is_empty());
    }

    #[test]
    fn loop_states_merge_across_runs() {
        use crate::trace::{merged_loop_state, LoopState};
        let (_, _, _, l0, _) = registry();
        let mut t1 = RunTrace::default();
        let mut st1 = LoopState::default();
        st1.entry_stacks.insert([Some(crate::FnId(1)), None]);
        st1.iter_sigs.insert(10);
        t1.loop_states.insert(l0, st1);
        let mut t2 = RunTrace::default();
        let mut st2 = LoopState::default();
        st2.entry_stacks.insert([Some(crate::FnId(2)), None]);
        st2.iter_sigs.insert(20);
        t2.loop_states.insert(l0, st2);
        let traces = [t1, t2];
        let merged = merged_loop_state(&traces, l0).unwrap();
        assert_eq!(merged.entry_stacks.len(), 2);
        assert_eq!(merged.iter_sigs.len(), 2);
        assert!(merged_loop_state(&traces, FaultId(0)).is_none());
    }

    #[test]
    fn injections_collected_in_run_order() {
        let (reg, tp, ..) = registry();
        let t1 = RunTrace {
            injected: Some((tp, occ(9))),
            ..RunTrace::default()
        };
        let t2 = RunTrace::default();
        let t3 = RunTrace {
            injected: Some((tp, occ(8))),
            ..RunTrace::default()
        };
        let idx = TraceIndex::build(&reg, &[t1, t2, t3]);
        assert_eq!(idx.injected().len(), 2);
        assert_eq!(idx.injected()[0].1.sig, occ(9).sig);
        assert_eq!(idx.injected()[1].1.sig, occ(8).sig);
    }

    #[test]
    fn empty_trace_set() {
        let (reg, tp, ..) = registry();
        let idx = TraceIndex::build(&reg, &[]);
        assert_eq!(idx.n_runs(), 0);
        assert!(!idx.occurred(tp));
        assert!(idx.occurring_points().is_empty());
        assert!(idx.active_loop_slots().is_empty());
        assert!(idx.injected().is_empty());
    }

    #[test]
    fn out_of_registry_ids_are_ignored() {
        let (reg, ..) = registry();
        let mut t = RunTrace::default();
        t.occurrences.entry(FaultId(999)).or_default().push(occ(1));
        let idx = TraceIndex::build(&reg, &[t]);
        assert_eq!(idx.occ_runs(FaultId(999)), 0);
        assert!(idx.occurring_points().is_empty());
    }
}
