//! Fault values and injection plans.

use std::fmt;

use csnake_sim::VirtualTime;
use serde::{Deserialize, Serialize};

use crate::registry::FaultId;

/// An in-flight fault (exception) value propagated through a target system.
///
/// Targets use `Result<T, Fault>` as their error channel; a `Fault` is either
/// *natural* (the system's own throw fired) or *injected* by the agent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// The fault point the exception originates from.
    pub point: FaultId,
    /// Exception class name.
    pub exception: &'static str,
    /// `true` if this value was produced by the injection agent.
    pub injected: bool,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({}{})",
            self.exception,
            self.point,
            if self.injected { ", injected" } else { "" }
        )
    }
}

impl std::error::Error for Fault {}

/// What to do at the targeted fault point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InjectAction {
    /// One-shot exception throw at a throw/lib-call point.
    Throw,
    /// One-shot return-value negation at a negation point.
    Negate,
    /// Spinning delay of the given length at the head of *every* iteration
    /// of the targeted loop (§4.2 "delay injection").
    Delay(VirtualTime),
}

impl InjectAction {
    /// `true` for [`InjectAction::Delay`].
    pub fn is_delay(&self) -> bool {
        matches!(self, InjectAction::Delay(_))
    }
}

/// A single-fault injection plan: one point, one action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectionPlan {
    /// The targeted fault point.
    pub target: FaultId,
    /// The action to perform when the point's hook is reached.
    pub action: InjectAction,
}

impl InjectionPlan {
    /// Plan a one-shot exception throw.
    pub fn throw(target: FaultId) -> Self {
        InjectionPlan {
            target,
            action: InjectAction::Throw,
        }
    }

    /// Plan a one-shot negation.
    pub fn negate(target: FaultId) -> Self {
        InjectionPlan {
            target,
            action: InjectAction::Negate,
        }
    }

    /// Plan a per-iteration delay.
    pub fn delay(target: FaultId, d: VirtualTime) -> Self {
        InjectionPlan {
            target,
            action: InjectAction::Delay(d),
        }
    }
}

/// The seven delay lengths the paper sweeps per delay injection
/// (100 ms – 8 s, §4.2).
pub const PAPER_DELAY_SWEEP_MS: [u64; 7] = [100, 200, 400, 800, 1600, 3200, 8000];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_marks_injected() {
        let nat = Fault {
            point: FaultId(3),
            exception: "IOException",
            injected: false,
        };
        let inj = Fault {
            point: FaultId(3),
            exception: "IOException",
            injected: true,
        };
        assert_eq!(nat.to_string(), "IOException(F3)");
        assert_eq!(inj.to_string(), "IOException(F3, injected)");
    }

    #[test]
    fn constructors_set_action() {
        assert_eq!(InjectionPlan::throw(FaultId(1)).action, InjectAction::Throw);
        assert_eq!(
            InjectionPlan::negate(FaultId(1)).action,
            InjectAction::Negate
        );
        let d = InjectionPlan::delay(FaultId(1), VirtualTime::from_millis(100));
        assert!(d.action.is_delay());
        assert!(!InjectAction::Throw.is_delay());
    }

    #[test]
    fn sweep_is_increasing_and_in_paper_range() {
        for w in PAPER_DELAY_SWEEP_MS.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(PAPER_DELAY_SWEEP_MS[0], 100);
        assert_eq!(*PAPER_DELAY_SWEEP_MS.last().unwrap(), 8000);
    }
}
