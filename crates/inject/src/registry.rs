//! Static model of a target system's instrumentable sites.
//!
//! In the paper, CSnake's static analyzer (WALA over Java bytecode, §4.1)
//! discovers throw statements, library call sites, boolean-returning
//! functions and loops, together with the metadata its filters need. In this
//! reproduction every target system *declares* the same inventory through
//! [`RegistryBuilder`]; the model-level static analyzer (`csnake-analyzer`)
//! then applies the paper's filtering rules over it.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a fault (injection) point within one registry.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct FaultId(pub u32);

impl fmt::Display for FaultId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{}", self.0)
    }
}

/// Identifier of a branch monitor point.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct BranchId(pub u32);

impl fmt::Display for BranchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// Identifier of an (interned) function name.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct FnId(pub u32);

/// Identifier of an integration-test workload of a target system.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TestId(pub u32);

impl fmt::Display for TestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// The kind of an instrumented fault point (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// A `throw` statement explicit in system code (injected at its guard).
    Throw,
    /// A library/native call site declaring a checked exception.
    LibCall,
    /// A boolean-returning system-specific error detector (negation point).
    Negation,
    /// A loop head (contention/delay injection point).
    LoopPoint,
}

/// Classification of an exception's origin, used by the §4.1 filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExceptionCategory {
    /// Thrown explicitly inside the target system's own code.
    SystemSpecific,
    /// Declared by a library/native function at a call site.
    Library,
    /// Unchecked exception thrown explicitly in system code
    /// (e.g. `IllegalArgumentException` on invalid input) — still injected.
    ExplicitRuntime,
    /// Reflection-related — filtered out (tends to terminate, not propagate).
    Reflection,
    /// Security-related — filtered out for the same reason.
    Security,
}

/// Provenance of a boolean-returning function, used by the §7 filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BoolSource {
    /// A genuine system-specific error detector (health check, status check).
    ErrorDetector,
    /// A JDK/stdlib utility (`contains()`, `isEmpty()`...) — filtered.
    JdkUtility,
    /// Return value derived only from `final` configuration — filtered.
    FinalConfigOnly,
    /// Return value constant or never used — filtered.
    ConstantOrUnused,
    /// Pure primitive-type utility (e.g. `isSorted()`) — filtered.
    PrimitiveUtility,
}

/// How a loop's iteration count is bounded, for the scalability filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoopBound {
    /// Guard provably bounded by a constant — filtered out (§4.1).
    Constant(u32),
    /// Iteration count depends on the workload — candidate for delay
    /// injection.
    WorkloadDependent,
}

/// Metadata of an exception fault point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExceptionMeta {
    /// Exception class name (as the target system names it).
    pub class: &'static str,
    /// Origin category, input to the static filters.
    pub category: ExceptionCategory,
    /// `true` if the only paths reaching this site start in test code —
    /// such sites are ignored by the analyzer (§4.1).
    pub test_only: bool,
}

/// Metadata of a negation (boolean error detector) point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NegationMeta {
    /// The boolean value that signals "error" for this detector
    /// (e.g. `true` for `isStale()`, `false` for `canPlaceFavoredNodes()`).
    pub error_when: bool,
    /// Provenance, input to the §7 filters.
    pub source: BoolSource,
}

/// Metadata of a loop fault point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoopMeta {
    /// Bound classification from the best-effort data-flow analysis.
    pub bound: LoopBound,
    /// `true` if the loop body performs I/O (never filtered by the
    /// short-execution rule).
    pub does_io: bool,
    /// Enclosing loop, for the `ICFG` parent-propagation edge (§4.3).
    pub parent: Option<FaultId>,
    /// Next consecutive loop in the same scope, for the `CFG` sibling edge.
    pub next_sibling: Option<FaultId>,
}

/// Source location of an instrumented site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Site {
    /// Enclosing function (interned).
    pub function: FnId,
    /// Line number within the (conceptual) source file.
    pub line: u32,
}

/// One instrumentable fault point with all static metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultPoint {
    /// Stable identifier within the registry.
    pub id: FaultId,
    /// Point kind.
    pub kind: FaultKind,
    /// Source location.
    pub site: Site,
    /// Human/ground-truth label (e.g. `"ibr_rpc_ioe"`); used to match
    /// reported cycles against seeded bugs, never by the detector itself.
    pub label: &'static str,
    /// Exception metadata for `Throw`/`LibCall` points.
    pub exception: Option<ExceptionMeta>,
    /// Negation metadata for `Negation` points.
    pub negation: Option<NegationMeta>,
    /// Loop metadata for `LoopPoint`s.
    pub loop_meta: Option<LoopMeta>,
}

/// One branch monitor point (§6.2 execution-trace recording).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BranchPoint {
    /// Stable identifier within the registry.
    pub id: BranchId,
    /// Source location.
    pub site: Site,
}

/// The full instrumentation inventory of one target system.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct Registry {
    /// Target system name.
    pub system: &'static str,
    fns: Vec<&'static str>,
    points: Vec<FaultPoint>,
    branches: Vec<BranchPoint>,
}

impl Registry {
    /// All fault points.
    pub fn points(&self) -> &[FaultPoint] {
        &self.points
    }

    /// All branch monitor points.
    pub fn branches(&self) -> &[BranchPoint] {
        &self.branches
    }

    /// Looks up a fault point.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this registry.
    pub fn point(&self, id: FaultId) -> &FaultPoint {
        &self.points[id.0 as usize]
    }

    /// Function name for an interned id.
    pub fn fn_name(&self, f: FnId) -> &'static str {
        self.fns[f.0 as usize]
    }

    /// Number of interned functions.
    pub fn fn_count(&self) -> usize {
        self.fns.len()
    }

    /// Human-readable description of a fault point.
    pub fn describe(&self, id: FaultId) -> String {
        let p = self.point(id);
        let kind = match p.kind {
            FaultKind::Throw => "throw",
            FaultKind::LibCall => "libcall",
            FaultKind::Negation => "negation",
            FaultKind::LoopPoint => "loop",
        };
        format!(
            "{} {} [{}] at {}:{}",
            kind,
            id,
            p.label,
            self.fn_name(p.site.function),
            p.site.line
        )
    }

    /// Fault points of a given kind.
    pub fn points_of_kind(&self, kind: FaultKind) -> impl Iterator<Item = &FaultPoint> {
        self.points.iter().filter(move |p| p.kind == kind)
    }
}

/// Builder used by target systems to declare their instrumentation inventory.
///
/// # Examples
///
/// ```
/// use csnake_inject::{BoolSource, ExceptionCategory, LoopBound, RegistryBuilder};
///
/// let mut b = RegistryBuilder::new("demo");
/// let f = b.func("Server.handle");
/// let l = b.workload_loop(f, 10, true, "request_loop");
/// let tp = b.throw_point(f, 14, "IOException", ExceptionCategory::SystemSpecific, "rpc_ioe");
/// let np = b.negation_point(f, 20, true, BoolSource::ErrorDetector, "is_stale");
/// let br = b.branch(f, 12);
/// let reg = b.build();
/// assert_eq!(reg.points().len(), 3);
/// assert_eq!(reg.point(tp).label, "rpc_ioe");
/// assert!(reg.point(l).loop_meta.is_some());
/// assert!(reg.point(np).negation.is_some());
/// assert_eq!(reg.branches().len(), 1);
/// let _ = br;
/// ```
#[derive(Debug, Default)]
pub struct RegistryBuilder {
    reg: Registry,
}

impl RegistryBuilder {
    /// Starts a registry for the named system.
    pub fn new(system: &'static str) -> Self {
        RegistryBuilder {
            reg: Registry {
                system,
                ..Registry::default()
            },
        }
    }

    /// Interns a function name.
    pub fn func(&mut self, name: &'static str) -> FnId {
        if let Some(i) = self.reg.fns.iter().position(|n| *n == name) {
            return FnId(i as u32);
        }
        self.reg.fns.push(name);
        FnId((self.reg.fns.len() - 1) as u32)
    }

    fn push_point(&mut self, p: FaultPoint) -> FaultId {
        let id = FaultId(self.reg.points.len() as u32);
        self.reg.points.push(FaultPoint { id, ..p });
        id
    }

    /// Declares a system-specific throw point.
    pub fn throw_point(
        &mut self,
        function: FnId,
        line: u32,
        class: &'static str,
        category: ExceptionCategory,
        label: &'static str,
    ) -> FaultId {
        self.push_point(FaultPoint {
            id: FaultId(0),
            kind: FaultKind::Throw,
            site: Site { function, line },
            label,
            exception: Some(ExceptionMeta {
                class,
                category,
                test_only: false,
            }),
            negation: None,
            loop_meta: None,
        })
    }

    /// Declares a library-call exception site.
    pub fn lib_call(
        &mut self,
        function: FnId,
        line: u32,
        class: &'static str,
        label: &'static str,
    ) -> FaultId {
        self.push_point(FaultPoint {
            id: FaultId(0),
            kind: FaultKind::LibCall,
            site: Site { function, line },
            label,
            exception: Some(ExceptionMeta {
                class,
                category: ExceptionCategory::Library,
                test_only: false,
            }),
            negation: None,
            loop_meta: None,
        })
    }

    /// Declares a throw point only reachable from test code (will be
    /// filtered by the analyzer).
    pub fn test_only_throw(
        &mut self,
        function: FnId,
        line: u32,
        class: &'static str,
        label: &'static str,
    ) -> FaultId {
        self.push_point(FaultPoint {
            id: FaultId(0),
            kind: FaultKind::Throw,
            site: Site { function, line },
            label,
            exception: Some(ExceptionMeta {
                class,
                category: ExceptionCategory::SystemSpecific,
                test_only: true,
            }),
            negation: None,
            loop_meta: None,
        })
    }

    /// Declares a negation point (boolean error detector).
    pub fn negation_point(
        &mut self,
        function: FnId,
        line: u32,
        error_when: bool,
        source: BoolSource,
        label: &'static str,
    ) -> FaultId {
        self.push_point(FaultPoint {
            id: FaultId(0),
            kind: FaultKind::Negation,
            site: Site { function, line },
            label,
            exception: None,
            negation: Some(NegationMeta { error_when, source }),
            loop_meta: None,
        })
    }

    /// Declares a workload-dependent loop (delay-injection candidate).
    pub fn workload_loop(
        &mut self,
        function: FnId,
        line: u32,
        does_io: bool,
        label: &'static str,
    ) -> FaultId {
        self.push_point(FaultPoint {
            id: FaultId(0),
            kind: FaultKind::LoopPoint,
            site: Site { function, line },
            label,
            exception: None,
            negation: None,
            loop_meta: Some(LoopMeta {
                bound: LoopBound::WorkloadDependent,
                does_io,
                parent: None,
                next_sibling: None,
            }),
        })
    }

    /// Declares a constant-bound loop (filtered by the analyzer).
    pub fn const_loop(
        &mut self,
        function: FnId,
        line: u32,
        bound: u32,
        label: &'static str,
    ) -> FaultId {
        self.push_point(FaultPoint {
            id: FaultId(0),
            kind: FaultKind::LoopPoint,
            site: Site { function, line },
            label,
            exception: None,
            negation: None,
            loop_meta: Some(LoopMeta {
                bound: LoopBound::Constant(bound),
                does_io: false,
                parent: None,
                next_sibling: None,
            }),
        })
    }

    /// Records that `child` is nested inside `parent` (for `ICFG` edges).
    ///
    /// # Panics
    ///
    /// Panics if either id is not a loop point.
    pub fn set_parent(&mut self, child: FaultId, parent: FaultId) {
        assert_eq!(
            self.reg.points[parent.0 as usize].kind,
            FaultKind::LoopPoint
        );
        let meta = self.reg.points[child.0 as usize]
            .loop_meta
            .as_mut()
            .expect("child must be a loop point");
        meta.parent = Some(parent);
    }

    /// Records that `next` is the consecutive sibling after `loop_id`
    /// (for `CFG` edges).
    ///
    /// # Panics
    ///
    /// Panics if either id is not a loop point.
    pub fn set_sibling(&mut self, loop_id: FaultId, next: FaultId) {
        assert_eq!(self.reg.points[next.0 as usize].kind, FaultKind::LoopPoint);
        let meta = self.reg.points[loop_id.0 as usize]
            .loop_meta
            .as_mut()
            .expect("loop_id must be a loop point");
        meta.next_sibling = Some(next);
    }

    /// Declares a branch monitor point.
    pub fn branch(&mut self, function: FnId, line: u32) -> BranchId {
        let id = BranchId(self.reg.branches.len() as u32);
        self.reg.branches.push(BranchPoint {
            id,
            site: Site { function, line },
        });
        id
    }

    /// Finalizes the registry.
    pub fn build(self) -> Registry {
        self.reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates_functions() {
        let mut b = RegistryBuilder::new("t");
        let a = b.func("X.f");
        let c = b.func("X.g");
        let a2 = b.func("X.f");
        assert_eq!(a, a2);
        assert_ne!(a, c);
        let r = b.build();
        assert_eq!(r.fn_count(), 2);
        assert_eq!(r.fn_name(a), "X.f");
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut b = RegistryBuilder::new("t");
        let f = b.func("X.f");
        let p0 = b.throw_point(f, 1, "IOException", ExceptionCategory::SystemSpecific, "a");
        let p1 = b.workload_loop(f, 2, false, "b");
        let p2 = b.negation_point(f, 3, true, BoolSource::ErrorDetector, "c");
        assert_eq!(p0, FaultId(0));
        assert_eq!(p1, FaultId(1));
        assert_eq!(p2, FaultId(2));
        let r = b.build();
        assert_eq!(r.points().len(), 3);
        assert_eq!(r.point(p1).kind, FaultKind::LoopPoint);
    }

    #[test]
    fn parent_and_sibling_links() {
        let mut b = RegistryBuilder::new("t");
        let f = b.func("X.f");
        let outer = b.workload_loop(f, 1, false, "outer");
        let inner = b.workload_loop(f, 2, false, "inner");
        let next = b.workload_loop(f, 3, false, "next");
        b.set_parent(inner, outer);
        b.set_sibling(inner, next);
        let r = b.build();
        let meta = r.point(inner).loop_meta.as_ref().unwrap();
        assert_eq!(meta.parent, Some(outer));
        assert_eq!(meta.next_sibling, Some(next));
    }

    #[test]
    #[should_panic(expected = "child must be a loop point")]
    fn set_parent_rejects_non_loops() {
        let mut b = RegistryBuilder::new("t");
        let f = b.func("X.f");
        let tp = b.throw_point(f, 1, "E", ExceptionCategory::SystemSpecific, "a");
        let l = b.workload_loop(f, 2, false, "l");
        b.set_parent(tp, l);
    }

    #[test]
    fn describe_is_informative() {
        let mut b = RegistryBuilder::new("t");
        let f = b.func("Server.handle");
        let tp = b.throw_point(
            f,
            14,
            "IOException",
            ExceptionCategory::SystemSpecific,
            "rpc",
        );
        let r = b.build();
        let d = r.describe(tp);
        assert!(d.contains("Server.handle"));
        assert!(d.contains("rpc"));
        assert!(d.contains("14"));
    }

    #[test]
    fn kind_filter_iterates_correctly() {
        let mut b = RegistryBuilder::new("t");
        let f = b.func("X.f");
        b.throw_point(f, 1, "E", ExceptionCategory::SystemSpecific, "a");
        b.workload_loop(f, 2, false, "l1");
        b.workload_loop(f, 3, false, "l2");
        let r = b.build();
        assert_eq!(r.points_of_kind(FaultKind::LoopPoint).count(), 2);
        assert_eq!(r.points_of_kind(FaultKind::Throw).count(), 1);
        assert_eq!(r.points_of_kind(FaultKind::Negation).count(), 0);
    }
}
