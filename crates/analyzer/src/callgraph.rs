//! Dynamic call graph (paper §B.1).
//!
//! The paper reconstructs a call graph from runtime stack samples because
//! WALA's static graph handles polymorphism poorly and 2-CFA does not scale.
//! Here the graph is assembled from the `call_edges` recorded by the
//! injection agent across profile runs.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use csnake_inject::{FnId, RunTrace};
use serde::{Deserialize, Serialize};

/// A directed call graph over interned function ids.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CallGraph {
    edges: BTreeMap<FnId, BTreeSet<FnId>>,
}

impl CallGraph {
    /// Adds one caller → callee edge.
    pub fn add_edge(&mut self, caller: FnId, callee: FnId) {
        self.edges.entry(caller).or_default().insert(callee);
    }

    /// Merges all call edges observed in a run trace.
    pub fn absorb(&mut self, trace: &RunTrace) {
        for (a, b) in &trace.call_edges {
            self.add_edge(*a, *b);
        }
    }

    /// Builds a graph from a set of profile-run traces.
    pub fn from_traces<'a>(traces: impl IntoIterator<Item = &'a RunTrace>) -> Self {
        let mut g = CallGraph::default();
        for t in traces {
            g.absorb(t);
        }
        g
    }

    /// Direct callees of a function.
    pub fn callees(&self, f: FnId) -> impl Iterator<Item = FnId> + '_ {
        self.edges.get(&f).into_iter().flatten().copied()
    }

    /// Transitive closure of functions reachable from `f`, including `f`.
    pub fn reachable_from(&self, f: FnId) -> BTreeSet<FnId> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::new();
        seen.insert(f);
        queue.push_back(f);
        while let Some(cur) = queue.pop_front() {
            for next in self.callees(cur) {
                if seen.insert(next) {
                    queue.push_back(next);
                }
            }
        }
        seen
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(|s| s.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FnId {
        FnId(i)
    }

    #[test]
    fn reachability_includes_self_and_transitive() {
        let mut g = CallGraph::default();
        g.add_edge(f(0), f(1));
        g.add_edge(f(1), f(2));
        g.add_edge(f(3), f(4));
        let r = g.reachable_from(f(0));
        assert_eq!(r, [f(0), f(1), f(2)].into_iter().collect());
        assert_eq!(g.reachable_from(f(4)), [f(4)].into_iter().collect());
    }

    #[test]
    fn cycles_terminate() {
        let mut g = CallGraph::default();
        g.add_edge(f(0), f(1));
        g.add_edge(f(1), f(0));
        let r = g.reachable_from(f(0));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn absorb_merges_trace_edges() {
        let mut t1 = RunTrace::default();
        t1.call_edges.insert((f(0), f(1)));
        let mut t2 = RunTrace::default();
        t2.call_edges.insert((f(1), f(2)));
        t2.call_edges.insert((f(0), f(1))); // duplicate
        let g = CallGraph::from_traces([&t1, &t2]);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.reachable_from(f(0)).len(), 3);
    }
}
