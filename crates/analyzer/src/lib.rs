//! Model-level static analyzer: fault-point filtering and loop scalability
//! analysis.
//!
//! The paper's static analyzer (§4.1, §7) runs WALA over Java bytecode to
//! enumerate injection candidates, then prunes them with conservative,
//! rule-based filters. This reproduction runs the *same filter rules* over a
//! declared [`csnake_inject::Registry`] plus the dynamic call graph collected
//! from profile runs (the paper likewise falls back to a dynamic call graph —
//! §B.1 — because WALA's static one struggles with polymorphism).
//!
//! Filters implemented:
//!
//! * **Exceptions** — reflection-/security-related classes and throw points
//!   only reachable from test code are excluded (§4.1).
//! * **Loops** — constant-bound loops are excluded; the remaining loops are
//!   ranked by the amount of code reachable from their enclosing function in
//!   the dynamic call graph, and the lowest-ranked decile is excluded unless
//!   the loop performs I/O (§4.1 "loop scalability analysis").
//! * **Negation points** — boolean-returning functions are kept only when
//!   they are genuine system-specific error detectors; JDK utilities,
//!   final-config-derived, constant/unused, and primitive-only utilities are
//!   excluded (§7).

pub mod callgraph;

use std::collections::BTreeMap;

use csnake_inject::{BoolSource, ExceptionCategory, FaultId, FaultKind, LoopBound, Registry};
use serde::{Deserialize, Serialize};

pub use callgraph::CallGraph;

/// Why a fault point was excluded from injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterReason {
    /// Reflection-/security-related exception (§4.1).
    ReflectionOrSecurity,
    /// Exception only reachable from test code (§4.1).
    TestOnly,
    /// Loop with a constant iteration bound (§4.1).
    ConstantBound,
    /// Short-execution loop (lowest decile of reachable code) without I/O.
    ShortNonIoLoop,
    /// Boolean-returning function that is not a system-specific error
    /// detector (§7 criteria 1–3 + JDK utilities).
    NonDetectorBool,
}

/// Analyzer knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// Fraction of lowest-ranked loops considered "short execution"
    /// (paper: lowest 10%).
    pub short_loop_fraction: f64,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            short_loop_fraction: 0.10,
        }
    }
}

/// Per-kind counts in the style of the paper's Table 2.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SystemStats {
    /// Declared loop points.
    pub loops: usize,
    /// Declared exception points (throw + library-call).
    pub exceptions: usize,
    /// Declared negation points.
    pub negations: usize,
    /// Declared branch monitor points.
    pub branches: usize,
    /// Loop points surviving the filters.
    pub active_loops: usize,
    /// Exception points surviving the filters.
    pub active_exceptions: usize,
    /// Negation points surviving the filters.
    pub active_negations: usize,
}

/// Result of analyzing one target system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Analysis {
    /// Fault points eligible for injection, in id order.
    pub injectable: Vec<FaultId>,
    /// Excluded points with the rule that removed them.
    pub filtered: Vec<(FaultId, FilterReason)>,
    /// Table-2-style counts.
    pub stats: SystemStats,
}

impl Analysis {
    /// `true` if the point survived filtering.
    pub fn is_injectable(&self, f: FaultId) -> bool {
        self.injectable.binary_search(&f).is_ok()
    }

    /// The reason a point was filtered, if it was.
    pub fn filter_reason(&self, f: FaultId) -> Option<FilterReason> {
        self.filtered
            .iter()
            .find(|(id, _)| *id == f)
            .map(|(_, r)| *r)
    }
}

/// Runs the full §4.1/§7 filter pipeline over a registry.
///
/// `call_graph` should be the union of dynamic call graphs observed across
/// profile runs; loops whose enclosing function never appears get rank 0
/// (they can only be deprioritized, mirroring the paper's conservative
/// stance: "fault filtering criteria is designed to be conservative").
pub fn analyze(registry: &Registry, call_graph: &CallGraph, cfg: &AnalysisConfig) -> Analysis {
    let mut injectable = Vec::new();
    let mut filtered = Vec::new();
    let mut stats = SystemStats {
        branches: registry.branches().len(),
        ..SystemStats::default()
    };

    // Loop ranking: reachable-function count from the enclosing function.
    let mut loop_rank: BTreeMap<FaultId, usize> = BTreeMap::new();
    for p in registry.points_of_kind(FaultKind::LoopPoint) {
        let reach = call_graph.reachable_from(p.site.function).len();
        loop_rank.insert(p.id, reach);
    }
    let mut ranks: Vec<usize> = loop_rank.values().copied().collect();
    ranks.sort_unstable();
    let cut_index = ((ranks.len() as f64) * cfg.short_loop_fraction).floor() as usize;
    // Rank value at the decile boundary; loops strictly below it (and without
    // I/O) are "short execution".
    let short_threshold = if cut_index == 0 || ranks.is_empty() {
        0
    } else {
        ranks[cut_index]
    };

    for p in registry.points() {
        match p.kind {
            FaultKind::Throw | FaultKind::LibCall => {
                stats.exceptions += 1;
                let meta = p.exception.as_ref().expect("exception point has meta");
                if matches!(
                    meta.category,
                    ExceptionCategory::Reflection | ExceptionCategory::Security
                ) {
                    filtered.push((p.id, FilterReason::ReflectionOrSecurity));
                } else if meta.test_only {
                    filtered.push((p.id, FilterReason::TestOnly));
                } else {
                    stats.active_exceptions += 1;
                    injectable.push(p.id);
                }
            }
            FaultKind::Negation => {
                stats.negations += 1;
                let meta = p.negation.as_ref().expect("negation point has meta");
                if meta.source == BoolSource::ErrorDetector {
                    stats.active_negations += 1;
                    injectable.push(p.id);
                } else {
                    filtered.push((p.id, FilterReason::NonDetectorBool));
                }
            }
            FaultKind::LoopPoint => {
                stats.loops += 1;
                let meta = p.loop_meta.as_ref().expect("loop point has meta");
                match meta.bound {
                    LoopBound::Constant(_) => {
                        filtered.push((p.id, FilterReason::ConstantBound));
                    }
                    LoopBound::WorkloadDependent => {
                        let rank = loop_rank.get(&p.id).copied().unwrap_or(0);
                        if rank < short_threshold && !meta.does_io {
                            filtered.push((p.id, FilterReason::ShortNonIoLoop));
                        } else {
                            stats.active_loops += 1;
                            injectable.push(p.id);
                        }
                    }
                }
            }
        }
    }

    injectable.sort_unstable();
    Analysis {
        injectable,
        filtered,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csnake_inject::RegistryBuilder;

    fn cfg() -> AnalysisConfig {
        AnalysisConfig::default()
    }

    #[test]
    fn keeps_system_specific_and_library_exceptions() {
        let mut b = RegistryBuilder::new("t");
        let f = b.func("X.f");
        let sys = b.throw_point(f, 1, "IOException", ExceptionCategory::SystemSpecific, "a");
        let lib = b.lib_call(f, 2, "SocketException", "b");
        let rt = b.throw_point(
            f,
            3,
            "IllegalArgumentException",
            ExceptionCategory::ExplicitRuntime,
            "c",
        );
        let r = b.build();
        let a = analyze(&r, &CallGraph::default(), &cfg());
        assert!(a.is_injectable(sys));
        assert!(a.is_injectable(lib));
        assert!(a.is_injectable(rt));
        assert_eq!(a.stats.active_exceptions, 3);
    }

    #[test]
    fn filters_reflection_security_and_test_only() {
        let mut b = RegistryBuilder::new("t");
        let f = b.func("X.f");
        let refl = b.throw_point(
            f,
            1,
            "ReflectiveOperationException",
            ExceptionCategory::Reflection,
            "r",
        );
        let sec = b.throw_point(f, 2, "SecurityException", ExceptionCategory::Security, "s");
        let test = b.test_only_throw(f, 3, "AssertionError", "t");
        let keep = b.throw_point(f, 4, "IOException", ExceptionCategory::SystemSpecific, "k");
        let r = b.build();
        let a = analyze(&r, &CallGraph::default(), &cfg());
        assert_eq!(
            a.filter_reason(refl),
            Some(FilterReason::ReflectionOrSecurity)
        );
        assert_eq!(
            a.filter_reason(sec),
            Some(FilterReason::ReflectionOrSecurity)
        );
        assert_eq!(a.filter_reason(test), Some(FilterReason::TestOnly));
        assert!(a.is_injectable(keep));
    }

    #[test]
    fn filters_non_detector_booleans() {
        let mut b = RegistryBuilder::new("t");
        let f = b.func("X.f");
        let det = b.negation_point(f, 1, true, BoolSource::ErrorDetector, "is_stale");
        let jdk = b.negation_point(f, 2, true, BoolSource::JdkUtility, "contains");
        let cfg_only = b.negation_point(f, 3, true, BoolSource::FinalConfigOnly, "is_ha");
        let unused = b.negation_point(f, 4, true, BoolSource::ConstantOrUnused, "dbg");
        let prim = b.negation_point(f, 5, true, BoolSource::PrimitiveUtility, "is_sorted");
        let r = b.build();
        let a = analyze(&r, &CallGraph::default(), &cfg());
        assert!(a.is_injectable(det));
        for p in [jdk, cfg_only, unused, prim] {
            assert_eq!(
                a.filter_reason(p),
                Some(FilterReason::NonDetectorBool),
                "{p}"
            );
        }
        assert_eq!(a.stats.active_negations, 1);
        assert_eq!(a.stats.negations, 5);
    }

    #[test]
    fn filters_constant_bound_loops() {
        let mut b = RegistryBuilder::new("t");
        let f = b.func("X.f");
        let konst = b.const_loop(f, 1, 10, "retry3");
        let wl = b.workload_loop(f, 2, false, "per_block");
        let r = b.build();
        let a = analyze(&r, &CallGraph::default(), &cfg());
        assert_eq!(a.filter_reason(konst), Some(FilterReason::ConstantBound));
        assert!(a.is_injectable(wl));
    }

    #[test]
    fn short_non_io_loops_filtered_by_rank() {
        let mut b = RegistryBuilder::new("t");
        // 20 loops in distinct functions; function i reaches i callees.
        let mut fns = Vec::new();
        let mut loops = Vec::new();
        let mut cg = CallGraph::default();
        for i in 0..20u32 {
            let name: &'static str = Box::leak(format!("F{i}.run").into_boxed_str());
            let f = b.func(name);
            fns.push(f);
            // Loop 0 does I/O; the rest do not.
            loops.push(b.workload_loop(f, 1, i == 0, "l"));
        }
        // Give function i a chain of i callees.
        for (i, f) in fns.iter().enumerate() {
            let mut prev = *f;
            for j in 0..i {
                let name: &'static str = Box::leak(format!("F{i}.helper{j}").into_boxed_str());
                let h = b.func(name);
                cg.add_edge(prev, h);
                prev = h;
            }
        }
        let r = b.build();
        let a = analyze(&r, &cg, &cfg());
        // 10% of 20 = 2 → loops ranked below the 2nd-smallest rank and
        // without I/O are cut. Loop 0 (rank 1, but I/O) survives; loop 1
        // (rank 2) is at the threshold boundary.
        assert!(a.is_injectable(loops[0]), "I/O loop survives despite rank");
        assert!(a.is_injectable(loops[19]));
        let cut: Vec<_> = a
            .filtered
            .iter()
            .filter(|(_, r)| *r == FilterReason::ShortNonIoLoop)
            .collect();
        assert!(!cut.is_empty(), "some short loops must be filtered");
        assert!(cut.len() <= 2, "at most the bottom decile is filtered");
    }

    #[test]
    fn injectable_is_sorted_and_consistent_with_filtered() {
        let mut b = RegistryBuilder::new("t");
        let f = b.func("X.f");
        b.throw_point(f, 1, "IOException", ExceptionCategory::SystemSpecific, "a");
        b.negation_point(f, 2, true, BoolSource::JdkUtility, "b");
        b.workload_loop(f, 3, true, "c");
        let r = b.build();
        let a = analyze(&r, &CallGraph::default(), &cfg());
        let mut sorted = a.injectable.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, a.injectable);
        assert_eq!(a.injectable.len() + a.filtered.len(), r.points().len());
    }
}
