//! The flight recorder: a [`CampaignObserver`] that journals every event.
//!
//! [`FlightRecorder`] assigns each event a monotonic sequence number and a
//! microsecond timestamp, tracks stage/phase spans (open at `*_started`,
//! close at `*_finished`, duration on the closing record), and appends the
//! resulting [`TelemetryRecord`]s to its journals: a JSONL file (one
//! object per line, flushed per record so a `tail -f` is always current)
//! and a binary journal of checksummed [`Persist`](csnake_core::Persist)
//! frames. Records are also kept in memory for end-of-run exports
//! ([`FlightRecorder::digest`], [`crate::trace::write_chrome_trace`]).
//!
//! Observers must never perturb campaign results, so the recorder's
//! observer methods cannot return errors. I/O failures are latched
//! instead: the first one is remembered, journaling stops, and
//! [`FlightRecorder::finish`] surfaces the error once the campaign is
//! done. In-memory recording continues regardless — a full disk costs the
//! journal, never the campaign.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use csnake_core::error::{CsnakeError, Result};
use csnake_core::{CampaignObserver, ForwardedEvent};
use csnake_inject::{FaultId, TestId};

use crate::digest::MetricsDigest;
use crate::record::{seal_record, stage_tag, EventKind, TelemetryRecord};

/// Span key: stage spans and phase spans live in separate namespaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum SpanKey {
    Stage(u8),
    Phase(u8),
}

/// One journal output stream.
struct JournalFile {
    path: PathBuf,
    file: BufWriter<File>,
    /// Records appended since the last durable flush.
    unflushed: usize,
}

struct Inner {
    seq: u64,
    records: Vec<TelemetryRecord>,
    jsonl: Option<JournalFile>,
    binary: Option<JournalFile>,
    open_spans: BTreeMap<SpanKey, u64>,
    /// First journaling error; once set, file output stops.
    io_error: Option<CsnakeError>,
}

/// Configures and opens a [`FlightRecorder`].
#[derive(Default)]
pub struct RecorderBuilder {
    jsonl: Option<PathBuf>,
    binary: Option<PathBuf>,
    notify: Option<Arc<dyn CampaignObserver>>,
}

impl RecorderBuilder {
    /// Journal records as JSONL to `path` (truncating an existing file).
    pub fn jsonl(mut self, path: impl Into<PathBuf>) -> Self {
        self.jsonl = Some(path.into());
        self
    }

    /// Journal records as binary frames to `path` (truncating an existing
    /// file).
    pub fn binary(mut self, path: impl Into<PathBuf>) -> Self {
        self.binary = Some(path.into());
        self
    }

    /// Deliver [`CampaignObserver::journal_flushed`] notifications for this
    /// recorder's durable flushes to `observer` (typically the campaign's
    /// [`ProgressCollector`](csnake_core::ProgressCollector)).
    pub fn notify(mut self, observer: Arc<dyn CampaignObserver>) -> Self {
        self.notify = Some(observer);
        self
    }

    /// Opens the journal files and starts the clock.
    pub fn build(self) -> Result<FlightRecorder> {
        let open = |path: PathBuf| -> Result<JournalFile> {
            let file = File::create(&path).map_err(|source| CsnakeError::Io {
                path: path.clone(),
                source,
            })?;
            Ok(JournalFile {
                path,
                file: BufWriter::new(file),
                unflushed: 0,
            })
        };
        Ok(FlightRecorder {
            started: Instant::now(),
            notify: self.notify,
            inner: Mutex::new(Inner {
                seq: 0,
                records: Vec::new(),
                jsonl: self.jsonl.map(open).transpose()?,
                binary: self.binary.map(open).transpose()?,
                open_spans: BTreeMap::new(),
                io_error: None,
            }),
        })
    }
}

/// The flight recorder observer. See the [module docs](self).
pub struct FlightRecorder {
    started: Instant,
    notify: Option<Arc<dyn CampaignObserver>>,
    inner: Mutex<Inner>,
}

impl FlightRecorder {
    /// An in-memory recorder (no journal files); records are available via
    /// [`records`](Self::records) and the export helpers.
    pub fn new() -> Self {
        RecorderBuilder::default()
            .build()
            .expect("in-memory recorder cannot fail to open")
    }

    /// A builder for a recorder with journal files and notifications.
    pub fn builder() -> RecorderBuilder {
        RecorderBuilder::default()
    }

    /// Microseconds since the recorder started.
    pub fn elapsed_micros(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// A snapshot of every record observed so far.
    pub fn records(&self) -> Vec<TelemetryRecord> {
        self.inner
            .lock()
            .expect("recorder poisoned")
            .records
            .clone()
    }

    /// The metrics digest over everything recorded so far.
    pub fn digest(&self) -> MetricsDigest {
        MetricsDigest::from_records(&self.records())
    }

    /// Appends one event: assigns seq/timestamp/thread, resolves span
    /// durations, journals to the open files.
    fn record(&self, kind: EventKind) {
        let micros = self.elapsed_micros();
        let thread = std::thread::current().name().unwrap_or("?").to_string();
        let mut inner = self.inner.lock().expect("recorder poisoned");
        let inner = &mut *inner;

        // Span bookkeeping: opens remember their timestamp, closes turn it
        // into a duration. An unmatched close (possible only if recording
        // started mid-campaign) simply has no duration.
        let dur_micros = match &kind {
            EventKind::StageStarted { stage } => {
                inner.open_spans.insert(SpanKey::Stage(*stage), micros);
                None
            }
            EventKind::PhaseStarted { phase, .. } => {
                inner.open_spans.insert(SpanKey::Phase(*phase), micros);
                None
            }
            EventKind::StageFinished { stage } => inner
                .open_spans
                .remove(&SpanKey::Stage(*stage))
                .map(|t0| micros.saturating_sub(t0)),
            EventKind::PhaseFinished { phase, .. } => inner
                .open_spans
                .remove(&SpanKey::Phase(*phase))
                .map(|t0| micros.saturating_sub(t0)),
            _ => None,
        };

        let record = TelemetryRecord {
            seq: inner.seq,
            micros,
            thread,
            dur_micros,
            kind,
        };
        inner.seq += 1;

        if inner.io_error.is_none() {
            let mut io = || -> std::io::Result<()> {
                if let Some(j) = inner.jsonl.as_mut() {
                    j.file.write_all(record.to_json_line().as_bytes())?;
                    j.file.write_all(b"\n")?;
                    // Flush (not fsync) per record: a live `tail -f` sees
                    // every event; durability comes from flush()/finish().
                    j.file.flush()?;
                    j.unflushed += 1;
                }
                if let Some(b) = inner.binary.as_mut() {
                    b.file.write_all(&seal_record(&record))?;
                    b.file.flush()?;
                    b.unflushed += 1;
                }
                Ok(())
            };
            if let Err(source) = io() {
                let path = inner
                    .jsonl
                    .as_ref()
                    .map(|j| j.path.clone())
                    .or_else(|| inner.binary.as_ref().map(|b| b.path.clone()))
                    .unwrap_or_default();
                inner.io_error = Some(CsnakeError::Io { path, source });
            }
        }

        inner.records.push(record);
    }

    /// Forces both journals to durable storage (`fsync`), emitting a
    /// [`CampaignObserver::journal_flushed`] notification per journal that
    /// had unflushed records. Returns the first latched I/O error, if any.
    pub fn flush(&self) -> Result<()> {
        let mut flushed: Vec<(PathBuf, usize)> = Vec::new();
        {
            let mut inner = self.inner.lock().expect("recorder poisoned");
            if let Some(err) = inner.io_error.take() {
                return Err(err);
            }
            let total = inner.records.len();
            let inner = &mut *inner;
            for journal in [inner.jsonl.as_mut(), inner.binary.as_mut()]
                .into_iter()
                .flatten()
            {
                if journal.unflushed == 0 {
                    continue;
                }
                let sync = journal
                    .file
                    .flush()
                    .and_then(|()| journal.file.get_ref().sync_all());
                if let Err(source) = sync {
                    return Err(CsnakeError::Io {
                        path: journal.path.clone(),
                        source,
                    });
                }
                journal.unflushed = 0;
                flushed.push((journal.path.clone(), total));
            }
        }
        // Notify outside the lock: the sink may be a fanout that includes
        // other recorders.
        if let Some(notify) = &self.notify {
            for (path, records) in &flushed {
                notify.journal_flushed(path, *records);
            }
        }
        Ok(())
    }

    /// Finishes recording: durable-flushes the journals and surfaces any
    /// latched I/O error. Call after the campaign's report stage; the
    /// recorder stays usable (exports, late events) afterwards.
    pub fn finish(&self) -> Result<()> {
        self.flush()
    }

    /// Stage/phase spans currently open (for tests and liveness probes).
    pub fn open_span_count(&self) -> usize {
        self.inner
            .lock()
            .expect("recorder poisoned")
            .open_spans
            .len()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl CampaignObserver for FlightRecorder {
    fn stage_started(&self, stage: csnake_core::Stage) {
        self.record(EventKind::StageStarted {
            stage: stage_tag(stage),
        });
    }

    fn stage_finished(&self, stage: csnake_core::Stage) {
        self.record(EventKind::StageFinished {
            stage: stage_tag(stage),
        });
    }

    fn phase_started(&self, phase: u8, planned: usize) {
        self.record(EventKind::PhaseStarted { phase, planned });
    }

    fn phase_finished(&self, phase: u8, executed: usize) {
        self.record(EventKind::PhaseFinished { phase, executed });
    }

    fn experiment_completed(&self, outcome: &csnake_core::ExperimentOutcome) {
        self.record(EventKind::ExperimentCompleted {
            fault: outcome.fault.0,
            test: outcome.test.0,
            interference: outcome.interference.len(),
            edges: outcome.edges.len(),
        });
    }

    fn edge_emitted(&self, edge: &csnake_core::edge::CausalEdge) {
        self.record(EventKind::EdgeEmitted {
            cause: edge.cause.0,
            effect: edge.effect.0,
            kind: edge.kind as u8,
            test: edge.test.0,
            phase: edge.phase,
        });
    }

    fn cycle_found(&self, cycle: &csnake_core::beam::Cycle) {
        self.record(EventKind::CycleFound {
            edges: cycle.edges.len(),
            score: cycle.score,
        });
    }

    fn budget_spent(&self, spent: usize, total: usize) {
        self.record(EventKind::BudgetSpent { spent, total });
    }

    fn trace_cache(&self, hits: usize, misses: usize) {
        self.record(EventKind::TraceCache { hits, misses });
    }

    fn clustering(&self, stats: &csnake_core::ClusterStats) {
        self.record(EventKind::Clustering {
            vectors: stats.vectors,
            groups: stats.groups,
            candidate_edges: stats.candidate_edges,
            merges: stats.merges,
        });
    }

    fn workload_summary(&self, summary: &csnake_core::WorkloadSummary) {
        self.record(EventKind::WorkloadSummary {
            test: summary.test.0,
            seed: summary.seed,
            offered: summary.offered,
            completed: summary.completed,
            dropped: summary.dropped,
            p50_us: summary.p50_us,
            p99_us: summary.p99_us,
            inflection_ms: summary.p99_inflection_milli(),
        });
    }

    fn batch_retried(&self, batch: usize, failed_jobs: usize, attempt: u32, backoff_ms: u64) {
        self.record(EventKind::BatchRetried {
            batch,
            failed_jobs,
            attempt,
            backoff_ms,
        });
    }

    fn batch_failed(&self, batch: usize, fault: FaultId, test: TestId, phase: u8, reason: &str) {
        self.record(EventKind::BatchFailed {
            batch,
            fault: fault.0,
            test: test.0,
            phase,
            reason: reason.to_string(),
        });
    }

    fn checkpoint_written(&self, path: &Path, phase: u8, executed_in_phase: usize) {
        self.record(EventKind::CheckpointWritten {
            path: path.display().to_string(),
            phase,
            executed_in_phase,
        });
    }

    fn degraded(&self, missing: &[(FaultId, TestId, u8)]) {
        self.record(EventKind::Degraded {
            missing: missing.len(),
        });
    }

    fn worker_connected(&self, worker: u32) {
        self.record(EventKind::WorkerConnected { worker });
    }

    fn worker_lost(&self, worker: u32, reason: &str) {
        self.record(EventKind::WorkerLost {
            worker,
            reason: reason.to_string(),
        });
    }

    fn shard_assigned(&self, shard: u32, worker: u32, jobs: usize) {
        self.record(EventKind::ShardAssigned {
            shard,
            worker,
            jobs,
        });
    }

    fn shard_reassigned(&self, shard: u32, worker: u32, attempt: u32) {
        self.record(EventKind::ShardReassigned {
            shard,
            worker,
            attempt,
        });
    }

    fn event_forwarded(&self, worker: u32, event: &ForwardedEvent) {
        self.record(match event {
            ForwardedEvent::ExperimentCompleted { fault, test, edges } => {
                EventKind::ForwardedExperiment {
                    worker,
                    fault: fault.0,
                    test: test.0,
                    edges: *edges,
                }
            }
            ForwardedEvent::BatchRetried {
                failed_jobs,
                attempt,
                backoff_ms,
            } => EventKind::ForwardedRetry {
                worker,
                failed_jobs: *failed_jobs,
                attempt: *attempt,
                backoff_ms: *backoff_ms,
            },
            ForwardedEvent::BatchFailed { fault, test, phase } => EventKind::ForwardedFailure {
                worker,
                fault: fault.0,
                test: test.0,
                phase: *phase,
            },
            ForwardedEvent::TraceCache { hits, misses } => EventKind::ForwardedCache {
                worker,
                hits: *hits,
                misses: *misses,
            },
        });
    }

    fn journal_flushed(&self, path: &Path, records: usize) {
        self.record(EventKind::JournalFlushed {
            path: path.display().to_string(),
            records,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csnake_core::Stage;

    #[test]
    fn spans_pair_and_carry_durations() {
        let rec = FlightRecorder::new();
        rec.stage_started(Stage::Profiled);
        rec.phase_started(1, 10);
        rec.phase_finished(1, 10);
        rec.stage_finished(Stage::Profiled);
        let records = rec.records();
        assert_eq!(records.len(), 4);
        assert_eq!(records[0].seq, 0);
        assert_eq!(records[3].seq, 3);
        assert!(records[2].dur_micros.is_some(), "phase close has duration");
        assert!(records[3].dur_micros.is_some(), "stage close has duration");
        assert_eq!(rec.open_span_count(), 0);
        // Timestamps are monotone with sequence numbers.
        for pair in records.windows(2) {
            assert!(pair[0].micros <= pair[1].micros);
        }
    }

    #[test]
    fn journals_reach_disk_and_roundtrip() {
        let dir = std::env::temp_dir().join(format!("csnake-telemetry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let jsonl = dir.join("journal.jsonl");
        let bin = dir.join("journal.csnj");
        let rec = FlightRecorder::builder()
            .jsonl(&jsonl)
            .binary(&bin)
            .build()
            .expect("open journals");
        rec.stage_started(Stage::Allocated);
        rec.budget_spent(2, 8);
        rec.worker_lost(1, "lease expired");
        rec.stage_finished(Stage::Allocated);
        rec.finish().expect("flush");

        let text = std::fs::read_to_string(&jsonl).expect("read jsonl");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            crate::json::validate_record_line(line).expect("schema-valid line");
        }
        let records = crate::record::read_journal(&bin).expect("decode binary journal");
        assert_eq!(records, rec.records());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flush_notifies_the_collector() {
        let progress = Arc::new(csnake_core::ProgressCollector::new());
        let dir = std::env::temp_dir().join(format!("csnake-telemetry-n-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let rec = FlightRecorder::builder()
            .jsonl(dir.join("j.jsonl"))
            .notify(progress.clone())
            .build()
            .expect("open");
        rec.budget_spent(1, 2);
        rec.flush().expect("flush");
        assert_eq!(progress.snapshot().journal_flushes, 1);
        // Nothing new: no duplicate notification.
        rec.flush().expect("flush");
        assert_eq!(progress.snapshot().journal_flushes, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
