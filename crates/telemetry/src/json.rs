//! A minimal, dependency-free JSON parser used to *validate* the
//! recorder's own output (JSONL journal lines, Chrome trace files) in
//! tests and CI smoke runs.
//!
//! The workspace's vendored `serde` is compile-only, so validation is
//! first-party: a straightforward recursive-descent parser over the JSON
//! grammar (RFC 8259). It is not a general-purpose deserializer — numbers
//! come back as `f64`, objects preserve insertion order in a `Vec` — but
//! it fully checks syntax, which is what a "does this load in a JSON
//! consumer" smoke test needs.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as insertion-ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, why: &str) -> String {
        format!("{why} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => return Ok(out),
                b'\\' => match self.bump().ok_or_else(|| self.err("unterminated escape"))? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = self
                            .bytes
                            .get(self.pos..self.pos + 4)
                            .ok_or_else(|| self.err("truncated \\u escape"))?;
                        let code = std::str::from_utf8(hex)
                            .ok()
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| self.err("bad \\u escape"))?;
                        self.pos += 4;
                        // Surrogate pairs are accepted but folded to the
                        // replacement character — journal lines never emit
                        // them, this parser just must not reject them.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(self.err("bad escape")),
                },
                b if b < 0x20 => return Err(self.err("raw control character in string")),
                b if b < 0x80 => out.push(b as char),
                b => {
                    // Re-decode the multi-byte UTF-8 sequence.
                    let start = self.pos - 1;
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("bad UTF-8 lead byte")),
                    };
                    let seq = self
                        .bytes
                        .get(start..start + width)
                        .ok_or_else(|| self.err("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(seq).map_err(|_| self.err("bad UTF-8 sequence"))?;
                    out.push_str(s);
                    self.pos = start + width;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut saw_digit = false;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            saw_digit = true;
            self.pos += 1;
        }
        if !saw_digit {
            return Err(self.err("expected digit"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected fraction digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected exponent digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("unparseable number"))
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > 128 {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => {}
                        Some(b']') => return Ok(Value::Arr(items)),
                        _ => {
                            self.pos = self.pos.saturating_sub(1);
                            return Err(self.err("expected ',' or ']'"));
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value(depth + 1)?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => {}
                        Some(b'}') => return Ok(Value::Obj(pairs)),
                        _ => {
                            self.pos = self.pos.saturating_sub(1);
                            return Err(self.err("expected ',' or '}'"));
                        }
                    }
                }
            }
            _ => self.number(),
        }
    }
}

/// Parses a complete JSON document, rejecting trailing content.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after JSON value"));
    }
    Ok(v)
}

/// Validates that `text` is one well-formed JSON document.
pub fn validate(text: &str) -> Result<(), String> {
    parse(text).map(|_| ())
}

/// Validates one journal JSONL line against the record schema: a JSON
/// object with numeric `seq` and `micros`, string `thread` and `event`.
/// Returns the parsed object for further event-specific checks.
pub fn validate_record_line(line: &str) -> Result<Value, String> {
    let v = parse(line)?;
    if !matches!(v, Value::Obj(_)) {
        return Err("journal line is not a JSON object".into());
    }
    for key in ["seq", "micros"] {
        if v.get(key).and_then(Value::as_num).is_none() {
            return Err(format!("journal line missing numeric \"{key}\""));
        }
    }
    for key in ["thread", "event"] {
        if v.get(key).and_then(Value::as_str).is_none() {
            return Err(format!("journal line missing string \"{key}\""));
        }
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_grammar() {
        let v =
            parse(r#"{"a": [1, -2.5, 1e3, true, false, null], "b": {"nested": "x\nyA"}, "c": ""}"#)
                .expect("parse");
        assert_eq!(v.get("a").and_then(Value::as_arr).map(|a| a.len()), Some(6));
        assert_eq!(
            v.get("b")
                .and_then(|b| b.get("nested"))
                .and_then(Value::as_str),
            Some("x\nyA")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "nul",
            "1 2",
            "\"unterminated",
            "{\"a\":1}x",
            "[01x]",
        ] {
            assert!(validate(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn record_line_schema_is_enforced() {
        validate_record_line(
            r#"{"seq":1,"micros":2,"thread":"main","event":"budget_spent","spent":1,"total":4}"#,
        )
        .expect("valid line");
        assert!(validate_record_line(r#"{"seq":1,"micros":2,"thread":"main"}"#).is_err());
        assert!(
            validate_record_line(r#"{"seq":"x","micros":2,"thread":"t","event":"e"}"#).is_err()
        );
        assert!(validate_record_line("[1,2]").is_err());
    }
}
