//! Journal records: the flight recorder's unit of persistence.
//!
//! A [`TelemetryRecord`] is one observed campaign event plus wall-clock
//! attribution: a monotonic sequence number (assigned under the recorder's
//! lock, so record order is total), microseconds since the recorder
//! started, and the emitting thread's name. Span-closing records
//! (stage/phase finished) additionally carry the duration since their
//! matching open.
//!
//! Records persist in two forms, written side by side:
//!
//! * **JSONL** — one JSON object per line, greppable and loadable by any
//!   tooling; see [`TelemetryRecord::to_json_line`].
//! * **binary journal** — a sequence of self-delimiting frames in the
//!   snapshot container discipline (`CSNJ` magic, version, length,
//!   FNV-1a checksum, [`Persist`] payload). Truncation and garbling are
//!   rejected with the same typed errors as snapshots:
//!   [`CsnakeError::SnapshotTorn`] for an interrupted append,
//!   [`CsnakeError::SnapshotCorrupt`] for bad magic/checksum, and
//!   [`CsnakeError::SnapshotVersion`] for a format bump.
//!
//! The [`EventKind`] vocabulary deliberately stores *summaries* (ids and
//! counts, not full outcomes): the journal is an observability artifact,
//! never an input to detection, so it carries exactly what an operator or
//! a trace viewer needs and nothing the campaign would have to replay.

use csnake_core::error::{CsnakeError, Result};
use csnake_core::{Persist, Reader, Writer};

/// Leading magic of every binary journal frame.
pub const JOURNAL_MAGIC: [u8; 4] = *b"CSNJ";

/// Binary journal format version written by this build.
pub const JOURNAL_VERSION: u32 = 1;

/// Frame header length: magic + version + payload length + checksum.
const FRAME_HEADER_LEN: usize = 4 + 4 + 8 + 8;

/// Telemetry-stable tag of a session stage (distinct from the snapshot
/// tag, which collapses `Stitched`/`Reported`; the journal keeps them
/// apart because their spans are distinct).
pub fn stage_tag(stage: csnake_core::Stage) -> u8 {
    match stage {
        csnake_core::Stage::Built => 0,
        csnake_core::Stage::Profiled => 1,
        csnake_core::Stage::Allocated => 2,
        csnake_core::Stage::Stitched => 3,
        csnake_core::Stage::Reported => 4,
    }
}

/// Human name of a [`stage_tag`] value, for JSON output.
pub fn stage_name(tag: u8) -> &'static str {
    match tag {
        0 => "built",
        1 => "profiled",
        2 => "allocated",
        3 => "stitched",
        4 => "reported",
        _ => "unknown",
    }
}

/// One observed campaign event, summarized for persistence.
///
/// Variants mirror the [`CampaignObserver`](csnake_core::CampaignObserver)
/// vocabulary one-to-one; fields are ids and counts only.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A session stage began (opens a span).
    StageStarted {
        /// [`stage_tag`] of the stage.
        stage: u8,
    },
    /// A session stage ended (closes the matching span).
    StageFinished {
        /// [`stage_tag`] of the stage.
        stage: u8,
    },
    /// An allocation phase's planned batch began (opens a span).
    PhaseStarted {
        /// Strategy phase label (3PA: 1–3; baselines: 0).
        phase: u8,
        /// Experiments planned for the batch.
        planned: usize,
    },
    /// An allocation phase's batch completed (closes the matching span).
    PhaseFinished {
        /// Strategy phase label.
        phase: u8,
        /// Experiments that actually ran.
        executed: usize,
    },
    /// One `(fault, test)` experiment completed FCA.
    ExperimentCompleted {
        /// Injected fault id.
        fault: u32,
        /// Workload id.
        test: u32,
        /// Interference-list size.
        interference: usize,
        /// Causal edges the experiment produced.
        edges: usize,
    },
    /// A new causal edge entered the database.
    EdgeEmitted {
        /// Cause fault id.
        cause: u32,
        /// Effect fault id.
        effect: u32,
        /// [`EdgeKind`](csnake_core::edge::EdgeKind) tag (0–5).
        kind: u8,
        /// Workload id the edge was observed in.
        test: u32,
        /// 3PA phase of discovery.
        phase: u8,
    },
    /// The stitcher reported a deduplicated cycle.
    CycleFound {
        /// Edge count of the cycle.
        edges: usize,
        /// Chain score.
        score: f64,
    },
    /// Budget counters moved.
    BudgetSpent {
        /// Budget spent so far.
        spent: usize,
        /// Total budget.
        total: usize,
    },
    /// Injection-run cache counters at allocation end.
    TraceCache {
        /// Cache hits.
        hits: usize,
        /// Cache misses.
        misses: usize,
    },
    /// The phase-one clustering ran.
    Clustering {
        /// Input vectors.
        vectors: usize,
        /// Distinct vectors after duplicate pre-grouping.
        groups: usize,
        /// Candidate sparse-graph edges.
        candidate_edges: usize,
        /// Sub-threshold merges applied.
        merges: usize,
    },
    /// The supervisor scheduled a retry round.
    BatchRetried {
        /// Batch ordinal.
        batch: usize,
        /// Jobs that failed and were re-queued.
        failed_jobs: usize,
        /// Retry attempt (1-based).
        attempt: u32,
        /// Backoff pause before the retry.
        backoff_ms: u64,
    },
    /// A cell exhausted its retries and became a gap.
    BatchFailed {
        /// Batch ordinal.
        batch: usize,
        /// The abandoned cell's fault id.
        fault: u32,
        /// The abandoned cell's test id.
        test: u32,
        /// The abandoned cell's phase.
        phase: u8,
        /// Final panic message.
        reason: String,
    },
    /// A mid-phase checkpoint reached disk.
    CheckpointWritten {
        /// Checkpoint file path.
        path: String,
        /// Allocation phase of the checkpoint.
        phase: u8,
        /// Experiments covered within the phase.
        executed_in_phase: usize,
    },
    /// The campaign completed with permanently failed cells.
    Degraded {
        /// Number of missing `(fault, test, phase)` cells.
        missing: usize,
    },
    /// A daemon worker completed its handshake.
    WorkerConnected {
        /// Worker id.
        worker: u32,
    },
    /// A daemon worker's lease expired or its connection dropped.
    WorkerLost {
        /// Worker id.
        worker: u32,
        /// Loss reason.
        reason: String,
    },
    /// The coordinator leased a shard.
    ShardAssigned {
        /// Shard ordinal.
        shard: u32,
        /// Worker id.
        worker: u32,
        /// Jobs in the shard.
        jobs: usize,
    },
    /// The coordinator moved a shard off a dead worker.
    ShardReassigned {
        /// Shard ordinal.
        shard: u32,
        /// New worker id.
        worker: u32,
        /// Reassignment attempt (1-based).
        attempt: u32,
    },
    /// A worker's experiment completion arrived live via forwarding.
    ForwardedExperiment {
        /// Reporting worker.
        worker: u32,
        /// Injected fault id.
        fault: u32,
        /// Workload id.
        test: u32,
        /// Edges the experiment produced (pre-dedup).
        edges: usize,
    },
    /// A worker's retry round arrived live via forwarding.
    ForwardedRetry {
        /// Reporting worker.
        worker: u32,
        /// Jobs re-queued.
        failed_jobs: usize,
        /// Retry attempt (1-based).
        attempt: u32,
        /// Backoff pause.
        backoff_ms: u64,
    },
    /// A worker's abandoned cell arrived live via forwarding.
    ForwardedFailure {
        /// Reporting worker.
        worker: u32,
        /// The abandoned cell's fault id.
        fault: u32,
        /// The abandoned cell's test id.
        test: u32,
        /// The abandoned cell's phase.
        phase: u8,
    },
    /// A worker's cumulative cache counters arrived live via forwarding.
    ForwardedCache {
        /// Reporting worker.
        worker: u32,
        /// Cache hits so far on that worker.
        hits: usize,
        /// Cache misses so far on that worker.
        misses: usize,
    },
    /// A flight recorder (possibly another one, fanned out alongside this
    /// one) flushed its journal.
    JournalFlushed {
        /// Journal path.
        path: String,
        /// Records flushed.
        records: usize,
    },
    /// An open-loop workload run folded its per-request latency into a
    /// summary (one per `(test, seed)` experiment on workload targets).
    WorkloadSummary {
        /// Workload id the summary belongs to.
        test: u32,
        /// Seed of the run.
        seed: u64,
        /// Requests the arrival source offered.
        offered: u64,
        /// Requests that completed within their deadline.
        completed: u64,
        /// Requests shed or timed out.
        dropped: u64,
        /// Whole-run median latency, µs.
        p50_us: u64,
        /// Whole-run p99 latency, µs.
        p99_us: u64,
        /// Start of the first latency window whose p99 inflected (≥
        /// `INFLECTION_FACTOR`× the quietest window), ms — the cascade
        /// onset signal — or `None` when latency stayed flat.
        inflection_ms: Option<u64>,
    },
}

impl EventKind {
    /// The record's `event` discriminator in JSON output.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::StageStarted { .. } => "stage_started",
            EventKind::StageFinished { .. } => "stage_finished",
            EventKind::PhaseStarted { .. } => "phase_started",
            EventKind::PhaseFinished { .. } => "phase_finished",
            EventKind::ExperimentCompleted { .. } => "experiment_completed",
            EventKind::EdgeEmitted { .. } => "edge_emitted",
            EventKind::CycleFound { .. } => "cycle_found",
            EventKind::BudgetSpent { .. } => "budget_spent",
            EventKind::TraceCache { .. } => "trace_cache",
            EventKind::Clustering { .. } => "clustering",
            EventKind::BatchRetried { .. } => "batch_retried",
            EventKind::BatchFailed { .. } => "batch_failed",
            EventKind::CheckpointWritten { .. } => "checkpoint_written",
            EventKind::Degraded { .. } => "degraded",
            EventKind::WorkerConnected { .. } => "worker_connected",
            EventKind::WorkerLost { .. } => "worker_lost",
            EventKind::ShardAssigned { .. } => "shard_assigned",
            EventKind::ShardReassigned { .. } => "shard_reassigned",
            EventKind::ForwardedExperiment { .. } => "forwarded_experiment",
            EventKind::ForwardedRetry { .. } => "forwarded_retry",
            EventKind::ForwardedFailure { .. } => "forwarded_failure",
            EventKind::ForwardedCache { .. } => "forwarded_cache",
            EventKind::JournalFlushed { .. } => "journal_flushed",
            EventKind::WorkloadSummary { .. } => "workload_summary",
        }
    }

    /// Whether the event belongs to the *deterministic* campaign stream:
    /// same target/config/seed ⇒ same sequence of deterministic events, in
    /// the same order, regardless of thread counts or fleet size.
    ///
    /// Operational events (worker lifecycle, shard leases, forwarded
    /// copies, retries under chaos, checkpoint cadence, journal flushes)
    /// depend on scheduling and topology and are excluded; the determinism
    /// tests compare only the deterministic subset.
    pub fn is_deterministic(&self) -> bool {
        matches!(
            self,
            EventKind::StageStarted { .. }
                | EventKind::StageFinished { .. }
                | EventKind::PhaseStarted { .. }
                | EventKind::PhaseFinished { .. }
                | EventKind::ExperimentCompleted { .. }
                | EventKind::EdgeEmitted { .. }
                | EventKind::CycleFound { .. }
                | EventKind::BudgetSpent { .. }
                | EventKind::TraceCache { .. }
                | EventKind::Clustering { .. }
                | EventKind::Degraded { .. }
                | EventKind::WorkloadSummary { .. }
        )
    }
}

/// Persist tags for [`EventKind`] variants (stable; append-only).
impl Persist for EventKind {
    fn put(&self, w: &mut Writer) {
        match self {
            EventKind::StageStarted { stage } => {
                0u8.put(w);
                stage.put(w);
            }
            EventKind::StageFinished { stage } => {
                1u8.put(w);
                stage.put(w);
            }
            EventKind::PhaseStarted { phase, planned } => {
                2u8.put(w);
                phase.put(w);
                planned.put(w);
            }
            EventKind::PhaseFinished { phase, executed } => {
                3u8.put(w);
                phase.put(w);
                executed.put(w);
            }
            EventKind::ExperimentCompleted {
                fault,
                test,
                interference,
                edges,
            } => {
                4u8.put(w);
                fault.put(w);
                test.put(w);
                interference.put(w);
                edges.put(w);
            }
            EventKind::EdgeEmitted {
                cause,
                effect,
                kind,
                test,
                phase,
            } => {
                5u8.put(w);
                cause.put(w);
                effect.put(w);
                kind.put(w);
                test.put(w);
                phase.put(w);
            }
            EventKind::CycleFound { edges, score } => {
                6u8.put(w);
                edges.put(w);
                score.put(w);
            }
            EventKind::BudgetSpent { spent, total } => {
                7u8.put(w);
                spent.put(w);
                total.put(w);
            }
            EventKind::TraceCache { hits, misses } => {
                8u8.put(w);
                hits.put(w);
                misses.put(w);
            }
            EventKind::Clustering {
                vectors,
                groups,
                candidate_edges,
                merges,
            } => {
                9u8.put(w);
                vectors.put(w);
                groups.put(w);
                candidate_edges.put(w);
                merges.put(w);
            }
            EventKind::BatchRetried {
                batch,
                failed_jobs,
                attempt,
                backoff_ms,
            } => {
                10u8.put(w);
                batch.put(w);
                failed_jobs.put(w);
                attempt.put(w);
                backoff_ms.put(w);
            }
            EventKind::BatchFailed {
                batch,
                fault,
                test,
                phase,
                reason,
            } => {
                11u8.put(w);
                batch.put(w);
                fault.put(w);
                test.put(w);
                phase.put(w);
                reason.put(w);
            }
            EventKind::CheckpointWritten {
                path,
                phase,
                executed_in_phase,
            } => {
                12u8.put(w);
                path.put(w);
                phase.put(w);
                executed_in_phase.put(w);
            }
            EventKind::Degraded { missing } => {
                13u8.put(w);
                missing.put(w);
            }
            EventKind::WorkerConnected { worker } => {
                14u8.put(w);
                worker.put(w);
            }
            EventKind::WorkerLost { worker, reason } => {
                15u8.put(w);
                worker.put(w);
                reason.put(w);
            }
            EventKind::ShardAssigned {
                shard,
                worker,
                jobs,
            } => {
                16u8.put(w);
                shard.put(w);
                worker.put(w);
                jobs.put(w);
            }
            EventKind::ShardReassigned {
                shard,
                worker,
                attempt,
            } => {
                17u8.put(w);
                shard.put(w);
                worker.put(w);
                attempt.put(w);
            }
            EventKind::ForwardedExperiment {
                worker,
                fault,
                test,
                edges,
            } => {
                18u8.put(w);
                worker.put(w);
                fault.put(w);
                test.put(w);
                edges.put(w);
            }
            EventKind::ForwardedRetry {
                worker,
                failed_jobs,
                attempt,
                backoff_ms,
            } => {
                19u8.put(w);
                worker.put(w);
                failed_jobs.put(w);
                attempt.put(w);
                backoff_ms.put(w);
            }
            EventKind::ForwardedFailure {
                worker,
                fault,
                test,
                phase,
            } => {
                20u8.put(w);
                worker.put(w);
                fault.put(w);
                test.put(w);
                phase.put(w);
            }
            EventKind::ForwardedCache {
                worker,
                hits,
                misses,
            } => {
                21u8.put(w);
                worker.put(w);
                hits.put(w);
                misses.put(w);
            }
            EventKind::JournalFlushed { path, records } => {
                22u8.put(w);
                path.put(w);
                records.put(w);
            }
            EventKind::WorkloadSummary {
                test,
                seed,
                offered,
                completed,
                dropped,
                p50_us,
                p99_us,
                inflection_ms,
            } => {
                23u8.put(w);
                test.put(w);
                seed.put(w);
                offered.put(w);
                completed.put(w);
                dropped.put(w);
                p50_us.put(w);
                p99_us.put(w);
                inflection_ms.put(w);
            }
        }
    }

    fn load(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match u8::load(r)? {
            0 => EventKind::StageStarted {
                stage: u8::load(r)?,
            },
            1 => EventKind::StageFinished {
                stage: u8::load(r)?,
            },
            2 => EventKind::PhaseStarted {
                phase: u8::load(r)?,
                planned: usize::load(r)?,
            },
            3 => EventKind::PhaseFinished {
                phase: u8::load(r)?,
                executed: usize::load(r)?,
            },
            4 => EventKind::ExperimentCompleted {
                fault: u32::load(r)?,
                test: u32::load(r)?,
                interference: usize::load(r)?,
                edges: usize::load(r)?,
            },
            5 => EventKind::EdgeEmitted {
                cause: u32::load(r)?,
                effect: u32::load(r)?,
                kind: u8::load(r)?,
                test: u32::load(r)?,
                phase: u8::load(r)?,
            },
            6 => EventKind::CycleFound {
                edges: usize::load(r)?,
                score: f64::load(r)?,
            },
            7 => EventKind::BudgetSpent {
                spent: usize::load(r)?,
                total: usize::load(r)?,
            },
            8 => EventKind::TraceCache {
                hits: usize::load(r)?,
                misses: usize::load(r)?,
            },
            9 => EventKind::Clustering {
                vectors: usize::load(r)?,
                groups: usize::load(r)?,
                candidate_edges: usize::load(r)?,
                merges: usize::load(r)?,
            },
            10 => EventKind::BatchRetried {
                batch: usize::load(r)?,
                failed_jobs: usize::load(r)?,
                attempt: u32::load(r)?,
                backoff_ms: u64::load(r)?,
            },
            11 => EventKind::BatchFailed {
                batch: usize::load(r)?,
                fault: u32::load(r)?,
                test: u32::load(r)?,
                phase: u8::load(r)?,
                reason: String::load(r)?,
            },
            12 => EventKind::CheckpointWritten {
                path: String::load(r)?,
                phase: u8::load(r)?,
                executed_in_phase: usize::load(r)?,
            },
            13 => EventKind::Degraded {
                missing: usize::load(r)?,
            },
            14 => EventKind::WorkerConnected {
                worker: u32::load(r)?,
            },
            15 => EventKind::WorkerLost {
                worker: u32::load(r)?,
                reason: String::load(r)?,
            },
            16 => EventKind::ShardAssigned {
                shard: u32::load(r)?,
                worker: u32::load(r)?,
                jobs: usize::load(r)?,
            },
            17 => EventKind::ShardReassigned {
                shard: u32::load(r)?,
                worker: u32::load(r)?,
                attempt: u32::load(r)?,
            },
            18 => EventKind::ForwardedExperiment {
                worker: u32::load(r)?,
                fault: u32::load(r)?,
                test: u32::load(r)?,
                edges: usize::load(r)?,
            },
            19 => EventKind::ForwardedRetry {
                worker: u32::load(r)?,
                failed_jobs: usize::load(r)?,
                attempt: u32::load(r)?,
                backoff_ms: u64::load(r)?,
            },
            20 => EventKind::ForwardedFailure {
                worker: u32::load(r)?,
                fault: u32::load(r)?,
                test: u32::load(r)?,
                phase: u8::load(r)?,
            },
            21 => EventKind::ForwardedCache {
                worker: u32::load(r)?,
                hits: usize::load(r)?,
                misses: usize::load(r)?,
            },
            22 => EventKind::JournalFlushed {
                path: String::load(r)?,
                records: usize::load(r)?,
            },
            23 => EventKind::WorkloadSummary {
                test: u32::load(r)?,
                seed: u64::load(r)?,
                offered: u64::load(r)?,
                completed: u64::load(r)?,
                dropped: u64::load(r)?,
                p50_us: u64::load(r)?,
                p99_us: u64::load(r)?,
                inflection_ms: Option::load(r)?,
            },
            n => {
                return Err(CsnakeError::SnapshotCorrupt(format!(
                    "bad telemetry event tag {n}"
                )))
            }
        })
    }
}

/// One journal record: an event plus its timing/attribution envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryRecord {
    /// Monotonic sequence number, assigned under the recorder's lock.
    pub seq: u64,
    /// Microseconds since the recorder started.
    pub micros: u64,
    /// Name of the thread that emitted the event (`?` when unnamed).
    pub thread: String,
    /// Span duration in microseconds, on span-closing records
    /// (stage/phase finished) whose open was observed.
    pub dur_micros: Option<u64>,
    /// The event itself.
    pub kind: EventKind,
}

impl Persist for TelemetryRecord {
    fn put(&self, w: &mut Writer) {
        self.seq.put(w);
        self.micros.put(w);
        self.thread.put(w);
        self.dur_micros.put(w);
        self.kind.put(w);
    }

    fn load(r: &mut Reader<'_>) -> Result<Self> {
        Ok(TelemetryRecord {
            seq: u64::load(r)?,
            micros: u64::load(r)?,
            thread: String::load(r)?,
            dur_micros: Option::load(r)?,
            kind: EventKind::load(r)?,
        })
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON number (finite values only; the campaign
/// never produces non-finite scores, but a journal must not emit invalid
/// JSON either way).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on a whole f64 prints no decimal point; keep it a JSON
        // number either way (both forms are valid), but make round-trips
        // unambiguous.
        s
    } else {
        "null".to_string()
    }
}

impl TelemetryRecord {
    /// Serializes the record as one JSONL line (no trailing newline).
    ///
    /// Every line carries the envelope keys `seq`, `micros`, `thread` and
    /// `event`; `dur_micros` appears on span-closing records; remaining
    /// keys are the event's own fields.
    pub fn to_json_line(&self) -> String {
        let mut s = format!(
            "{{\"seq\":{},\"micros\":{},\"thread\":\"{}\",\"event\":\"{}\"",
            self.seq,
            self.micros,
            json_escape(&self.thread),
            self.kind.name()
        );
        if let Some(d) = self.dur_micros {
            s.push_str(&format!(",\"dur_micros\":{d}"));
        }
        match &self.kind {
            EventKind::StageStarted { stage } | EventKind::StageFinished { stage } => {
                s.push_str(&format!(",\"stage\":\"{}\"", stage_name(*stage)));
            }
            EventKind::PhaseStarted { phase, planned } => {
                s.push_str(&format!(",\"phase\":{phase},\"planned\":{planned}"));
            }
            EventKind::PhaseFinished { phase, executed } => {
                s.push_str(&format!(",\"phase\":{phase},\"executed\":{executed}"));
            }
            EventKind::ExperimentCompleted {
                fault,
                test,
                interference,
                edges,
            } => {
                s.push_str(&format!(
                    ",\"fault\":{fault},\"test\":{test},\"interference\":{interference},\"edges\":{edges}"
                ));
            }
            EventKind::EdgeEmitted {
                cause,
                effect,
                kind,
                test,
                phase,
            } => {
                s.push_str(&format!(
                    ",\"cause\":{cause},\"effect\":{effect},\"kind\":{kind},\"test\":{test},\"phase\":{phase}"
                ));
            }
            EventKind::CycleFound { edges, score } => {
                s.push_str(&format!(
                    ",\"edges\":{edges},\"score\":{}",
                    json_f64(*score)
                ));
            }
            EventKind::BudgetSpent { spent, total } => {
                s.push_str(&format!(",\"spent\":{spent},\"total\":{total}"));
            }
            EventKind::TraceCache { hits, misses } => {
                s.push_str(&format!(",\"hits\":{hits},\"misses\":{misses}"));
            }
            EventKind::Clustering {
                vectors,
                groups,
                candidate_edges,
                merges,
            } => {
                s.push_str(&format!(
                    ",\"vectors\":{vectors},\"groups\":{groups},\"candidate_edges\":{candidate_edges},\"merges\":{merges}"
                ));
            }
            EventKind::BatchRetried {
                batch,
                failed_jobs,
                attempt,
                backoff_ms,
            } => {
                s.push_str(&format!(
                    ",\"batch\":{batch},\"failed_jobs\":{failed_jobs},\"attempt\":{attempt},\"backoff_ms\":{backoff_ms}"
                ));
            }
            EventKind::BatchFailed {
                batch,
                fault,
                test,
                phase,
                reason,
            } => {
                s.push_str(&format!(
                    ",\"batch\":{batch},\"fault\":{fault},\"test\":{test},\"phase\":{phase},\"reason\":\"{}\"",
                    json_escape(reason)
                ));
            }
            EventKind::CheckpointWritten {
                path,
                phase,
                executed_in_phase,
            } => {
                s.push_str(&format!(
                    ",\"path\":\"{}\",\"phase\":{phase},\"executed_in_phase\":{executed_in_phase}",
                    json_escape(path)
                ));
            }
            EventKind::Degraded { missing } => {
                s.push_str(&format!(",\"missing\":{missing}"));
            }
            EventKind::WorkerConnected { worker } => {
                s.push_str(&format!(",\"worker\":{worker}"));
            }
            EventKind::WorkerLost { worker, reason } => {
                s.push_str(&format!(
                    ",\"worker\":{worker},\"reason\":\"{}\"",
                    json_escape(reason)
                ));
            }
            EventKind::ShardAssigned {
                shard,
                worker,
                jobs,
            } => {
                s.push_str(&format!(
                    ",\"shard\":{shard},\"worker\":{worker},\"jobs\":{jobs}"
                ));
            }
            EventKind::ShardReassigned {
                shard,
                worker,
                attempt,
            } => {
                s.push_str(&format!(
                    ",\"shard\":{shard},\"worker\":{worker},\"attempt\":{attempt}"
                ));
            }
            EventKind::ForwardedExperiment {
                worker,
                fault,
                test,
                edges,
            } => {
                s.push_str(&format!(
                    ",\"worker\":{worker},\"fault\":{fault},\"test\":{test},\"edges\":{edges}"
                ));
            }
            EventKind::ForwardedRetry {
                worker,
                failed_jobs,
                attempt,
                backoff_ms,
            } => {
                s.push_str(&format!(
                    ",\"worker\":{worker},\"failed_jobs\":{failed_jobs},\"attempt\":{attempt},\"backoff_ms\":{backoff_ms}"
                ));
            }
            EventKind::ForwardedFailure {
                worker,
                fault,
                test,
                phase,
            } => {
                s.push_str(&format!(
                    ",\"worker\":{worker},\"fault\":{fault},\"test\":{test},\"phase\":{phase}"
                ));
            }
            EventKind::ForwardedCache {
                worker,
                hits,
                misses,
            } => {
                s.push_str(&format!(
                    ",\"worker\":{worker},\"hits\":{hits},\"misses\":{misses}"
                ));
            }
            EventKind::JournalFlushed { path, records } => {
                s.push_str(&format!(
                    ",\"path\":\"{}\",\"records\":{records}",
                    json_escape(path)
                ));
            }
            EventKind::WorkloadSummary {
                test,
                seed,
                offered,
                completed,
                dropped,
                p50_us,
                p99_us,
                inflection_ms,
            } => {
                s.push_str(&format!(
                    ",\"test\":{test},\"seed\":{seed},\"offered\":{offered},\"completed\":{completed},\"dropped\":{dropped},\"p50_us\":{p50_us},\"p99_us\":{p99_us}"
                ));
                match inflection_ms {
                    Some(ms) => s.push_str(&format!(",\"inflection_ms\":{ms}")),
                    None => s.push_str(",\"inflection_ms\":null"),
                }
            }
        }
        s.push('}');
        s
    }

    /// Stable comparison key for the determinism tests: the event's full
    /// content with the timing/attribution envelope stripped. `None` for
    /// operational events (see [`EventKind::is_deterministic`]).
    pub fn deterministic_key(&self) -> Option<String> {
        if !self.kind.is_deterministic() {
            return None;
        }
        // Debug output of the kind is stable and content-complete; floats
        // go through their bit pattern so -0.0 vs 0.0 can't alias.
        Some(match &self.kind {
            EventKind::CycleFound { edges, score } => {
                format!(
                    "CycleFound{{edges:{edges},score_bits:{:#x}}}",
                    score.to_bits()
                )
            }
            other => format!("{other:?}"),
        })
    }
}

/// Seals one record into a self-delimiting binary journal frame.
pub fn seal_record(record: &TelemetryRecord) -> Vec<u8> {
    let mut w = Writer::with_version(JOURNAL_VERSION);
    record.put(&mut w);
    let payload = w.into_bytes();
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&JOURNAL_MAGIC);
    out.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&csnake_core::fnv1a_bytes(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes a binary journal: a concatenation of [`seal_record`] frames.
///
/// Rejections are typed like snapshots: a file ending inside a frame
/// header or payload is [`CsnakeError::SnapshotTorn`] (an interrupted
/// append — everything before the tear decoded fine, but the caller must
/// know the journal is incomplete); wrong magic or a checksum mismatch is
/// [`CsnakeError::SnapshotCorrupt`]; an unknown frame version is
/// [`CsnakeError::SnapshotVersion`].
pub fn decode_journal(bytes: &[u8]) -> Result<Vec<TelemetryRecord>> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < FRAME_HEADER_LEN {
            return Err(CsnakeError::SnapshotTorn {
                expected: (pos + FRAME_HEADER_LEN) as u64,
                found: bytes.len() as u64,
            });
        }
        if rest[..4] != JOURNAL_MAGIC {
            return Err(CsnakeError::SnapshotCorrupt(format!(
                "bad journal frame magic at offset {pos}"
            )));
        }
        let version = u32::from_le_bytes(rest[4..8].try_into().expect("sized"));
        if version != JOURNAL_VERSION {
            return Err(CsnakeError::SnapshotVersion {
                found: version,
                supported: JOURNAL_VERSION,
            });
        }
        let len = u64::from_le_bytes(rest[8..16].try_into().expect("sized")) as usize;
        let check = u64::from_le_bytes(rest[16..24].try_into().expect("sized"));
        let body_start = pos + FRAME_HEADER_LEN;
        let body_end = body_start.checked_add(len).filter(|&e| e <= bytes.len());
        let Some(body_end) = body_end else {
            return Err(CsnakeError::SnapshotTorn {
                expected: (body_start + len) as u64,
                found: bytes.len() as u64,
            });
        };
        let payload = &bytes[body_start..body_end];
        if csnake_core::fnv1a_bytes(payload) != check {
            return Err(CsnakeError::SnapshotCorrupt(format!(
                "journal frame checksum mismatch at offset {pos}"
            )));
        }
        let mut r = Reader::with_version(payload, version);
        let record = TelemetryRecord::load(&mut r)?;
        if !r.finished() {
            return Err(CsnakeError::SnapshotCorrupt(format!(
                "trailing bytes inside journal frame at offset {pos}"
            )));
        }
        out.push(record);
        pos = body_end;
    }
    Ok(out)
}

/// Reads and decodes a binary journal file.
pub fn read_journal(path: &std::path::Path) -> Result<Vec<TelemetryRecord>> {
    let bytes = std::fs::read(path).map_err(|source| CsnakeError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    decode_journal(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TelemetryRecord> {
        vec![
            TelemetryRecord {
                seq: 0,
                micros: 10,
                thread: "main".into(),
                dur_micros: None,
                kind: EventKind::StageStarted { stage: 1 },
            },
            TelemetryRecord {
                seq: 1,
                micros: 400,
                thread: "main".into(),
                dur_micros: Some(390),
                kind: EventKind::StageFinished { stage: 1 },
            },
            TelemetryRecord {
                seq: 2,
                micros: 500,
                thread: "main".into(),
                dur_micros: None,
                kind: EventKind::BatchFailed {
                    batch: 3,
                    fault: 7,
                    test: 2,
                    phase: 1,
                    reason: "chaos: \"boom\"\n".into(),
                },
            },
            TelemetryRecord {
                seq: 3,
                micros: 600,
                thread: "w-1".into(),
                dur_micros: None,
                kind: EventKind::CycleFound {
                    edges: 4,
                    score: 0.25,
                },
            },
            TelemetryRecord {
                seq: 4,
                micros: 700,
                thread: "w-2".into(),
                dur_micros: None,
                kind: EventKind::WorkloadSummary {
                    test: 1,
                    seed: 42,
                    offered: 6_000,
                    completed: 5_900,
                    dropped: 100,
                    p50_us: 300,
                    p99_us: 41_000,
                    inflection_ms: Some(4_250),
                },
            },
        ]
    }

    #[test]
    fn records_roundtrip_through_frames() {
        let records = sample_records();
        let mut bytes = Vec::new();
        for r in &records {
            bytes.extend_from_slice(&seal_record(r));
        }
        let back = decode_journal(&bytes).expect("decode");
        assert_eq!(back, records);
    }

    #[test]
    fn truncation_is_torn() {
        let records = sample_records();
        let mut bytes = Vec::new();
        for r in &records {
            bytes.extend_from_slice(&seal_record(r));
        }
        // Cut inside the last frame's payload.
        let torn = &bytes[..bytes.len() - 3];
        match decode_journal(torn) {
            Err(CsnakeError::SnapshotTorn { .. }) => {}
            other => panic!("expected SnapshotTorn, got {other:?}"),
        }
        // Cut inside a frame header.
        match decode_journal(&bytes[..bytes.len() - seal_record(records.last().unwrap()).len() + 5])
        {
            Err(CsnakeError::SnapshotTorn { .. }) => {}
            other => panic!("expected SnapshotTorn, got {other:?}"),
        }
    }

    #[test]
    fn garble_is_corrupt() {
        let mut bytes = seal_record(&sample_records()[0]);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        match decode_journal(&bytes) {
            Err(CsnakeError::SnapshotCorrupt(_)) => {}
            other => panic!("expected SnapshotCorrupt, got {other:?}"),
        }
        let mut bad_magic = seal_record(&sample_records()[0]);
        bad_magic[0] = b'X';
        match decode_journal(&bad_magic) {
            Err(CsnakeError::SnapshotCorrupt(_)) => {}
            other => panic!("expected SnapshotCorrupt, got {other:?}"),
        }
    }

    #[test]
    fn version_bump_is_typed() {
        let mut bytes = seal_record(&sample_records()[0]);
        bytes[4..8].copy_from_slice(&(JOURNAL_VERSION + 1).to_le_bytes());
        match decode_journal(&bytes) {
            Err(CsnakeError::SnapshotVersion { found, supported }) => {
                assert_eq!(found, JOURNAL_VERSION + 1);
                assert_eq!(supported, JOURNAL_VERSION);
            }
            other => panic!("expected SnapshotVersion, got {other:?}"),
        }
    }

    #[test]
    fn json_lines_are_valid_and_escaped() {
        for r in sample_records() {
            let line = r.to_json_line();
            crate::json::validate(&line).expect("valid JSON");
            assert!(line.contains(&format!("\"event\":\"{}\"", r.kind.name())));
        }
        let line = sample_records()[2].to_json_line();
        assert!(line.contains("chaos: \\\"boom\\\"\\n"));
    }

    #[test]
    fn deterministic_key_filters_operational_events() {
        let det = TelemetryRecord {
            seq: 9,
            micros: 1,
            thread: "t".into(),
            dur_micros: None,
            kind: EventKind::BudgetSpent { spent: 1, total: 4 },
        };
        assert!(det.deterministic_key().is_some());
        let op = TelemetryRecord {
            seq: 10,
            micros: 2,
            thread: "t".into(),
            dur_micros: None,
            kind: EventKind::WorkerLost {
                worker: 0,
                reason: "gone".into(),
            },
        };
        assert!(op.deterministic_key().is_none());
        // The key ignores the envelope: same event, different seq/time.
        let det2 = TelemetryRecord {
            seq: 99,
            micros: 12345,
            thread: "other".into(),
            ..det.clone()
        };
        assert_eq!(det.deterministic_key(), det2.deterministic_key());
    }
}
