//! Live operator view: render a running campaign's fleet state.
//!
//! [`render_fleet`] is a pure function from a
//! [`csnake_core::ProgressCollector`] poll to a text
//! block — per-worker shard/lease status, budget, edges/cycles and an ETA
//! extrapolated from budget burn rate. [`LiveProgress`] wraps it in a
//! polling thread that repaints to stderr, for `csnake-daemon run
//! --progress` and the env-gated bench bins. Rendering only ever *reads*
//! collector state, so the view can never perturb campaign results.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use csnake_core::{ProgressCollector, ProgressSnapshot, WorkerProgress};

/// Formats a duration as `MmSSs` / `H:MM:SS`-style compact text.
fn fmt_secs(d: Duration) -> String {
    let s = d.as_secs();
    if s >= 3600 {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    } else if s >= 60 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{}.{}s", s, d.subsec_millis() / 100)
    }
}

/// Estimated time to budget exhaustion from the burn rate so far.
fn eta(snapshot: &ProgressSnapshot, elapsed: Duration) -> Option<Duration> {
    if snapshot.budget_spent == 0 || snapshot.budget_total <= snapshot.budget_spent {
        return None;
    }
    let remaining = (snapshot.budget_total - snapshot.budget_spent) as f64;
    let rate = snapshot.budget_spent as f64 / elapsed.as_secs_f64().max(1e-6);
    Some(Duration::from_secs_f64(remaining / rate))
}

/// Renders one fleet-state frame as a multi-line text block.
pub fn render_fleet(
    snapshot: &ProgressSnapshot,
    workers: &[(u32, WorkerProgress)],
    last_loss: Option<&str>,
    elapsed: Duration,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "[{}] budget {}/{}  experiments {}  edges {}  cycles {}  retries {}",
        fmt_secs(elapsed),
        snapshot.budget_spent,
        snapshot.budget_total,
        snapshot.experiments,
        snapshot.edges,
        snapshot.cycles,
        snapshot.batch_retries,
    ));
    if let Some(eta) = eta(snapshot, elapsed) {
        out.push_str(&format!("  eta {}", fmt_secs(eta)));
    }
    if snapshot.degraded {
        out.push_str("  DEGRADED");
    }
    out.push('\n');
    if snapshot.workers_connected > 0 || !workers.is_empty() {
        out.push_str(&format!(
            "fleet: {} connected, {} lost, {} shards ({} reassigned), {} events forwarded\n",
            snapshot.workers_connected,
            snapshot.workers_lost,
            snapshot.shards_assigned,
            snapshot.shards_reassigned,
            snapshot.events_forwarded,
        ));
        for (id, w) in workers {
            let state = if w.connected {
                match w.current_shard {
                    Some(shard) => format!("shard {shard}"),
                    None => "idle".to_string(),
                }
            } else {
                format!("LOST ({})", w.lost_reason.as_deref().unwrap_or("unknown"))
            };
            out.push_str(&format!(
                "  w{id}: {state}  leases {}  experiments {}  edges {}  retries {}  cache {}/{}\n",
                w.shards_assigned, w.experiments, w.edges, w.retries, w.cache_hits, w.cache_misses,
            ));
        }
    }
    if let Some(reason) = last_loss {
        out.push_str(&format!("last loss: {reason}\n"));
    }
    out
}

/// A polling progress renderer on a background thread.
///
/// Repaints to stderr every `every` tick until [`stop`](Self::stop) (or
/// drop). The thread only reads the collector, so attaching it is always
/// safe.
pub struct LiveProgress {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl LiveProgress {
    /// Starts rendering `collector` to stderr every `every`.
    pub fn start(collector: Arc<ProgressCollector>, every: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("csnake-progress".into())
            .spawn(move || {
                let started = Instant::now();
                while !thread_stop.load(Ordering::Relaxed) {
                    // Sleep in short slices so stop() returns promptly.
                    let mut left = every;
                    while !left.is_zero() && !thread_stop.load(Ordering::Relaxed) {
                        let step = left.min(Duration::from_millis(25));
                        std::thread::sleep(step);
                        left = left.saturating_sub(step);
                    }
                    if thread_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let frame = render_fleet(
                        &collector.snapshot(),
                        &collector.worker_progress(),
                        collector.last_loss_reason().as_deref(),
                        started.elapsed(),
                    );
                    eprint!("{frame}");
                }
            })
            .expect("spawn progress thread");
        LiveProgress {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the renderer and joins its thread.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            handle.join().ok();
        }
    }
}

impl Drop for LiveProgress {
    fn drop(&mut self) {
        self.halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csnake_core::CampaignObserver;

    #[test]
    fn renders_budget_fleet_and_loss() {
        let c = ProgressCollector::new();
        c.budget_spent(25, 100);
        c.worker_connected(0);
        c.worker_connected(1);
        c.shard_assigned(0, 0, 8);
        c.worker_lost(1, "lease expired after 200ms");
        let text = render_fleet(
            &c.snapshot(),
            &c.worker_progress(),
            c.last_loss_reason().as_deref(),
            Duration::from_secs(10),
        );
        assert!(text.contains("budget 25/100"), "{text}");
        assert!(text.contains("eta 30.0s"), "{text}");
        assert!(text.contains("w0: shard 0"), "{text}");
        assert!(text.contains("LOST (lease expired after 200ms)"), "{text}");
        assert!(
            text.contains("last loss: lease expired after 200ms"),
            "{text}"
        );
    }

    #[test]
    fn eta_needs_progress_and_headroom() {
        let mut s = ProgressSnapshot::default();
        assert!(eta(&s, Duration::from_secs(1)).is_none());
        s.budget_spent = 10;
        s.budget_total = 10;
        assert!(eta(&s, Duration::from_secs(1)).is_none());
        s.budget_total = 20;
        let e = eta(&s, Duration::from_secs(10)).expect("eta");
        assert_eq!(e.as_secs(), 10);
    }

    #[test]
    fn live_progress_stops_cleanly() {
        let c = Arc::new(ProgressCollector::new());
        let live = LiveProgress::start(Arc::clone(&c), Duration::from_millis(10));
        std::thread::sleep(Duration::from_millis(30));
        live.stop();
    }
}
