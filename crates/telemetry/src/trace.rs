//! Chrome trace-event export: load a campaign's journal in
//! `chrome://tracing` or Perfetto.
//!
//! The export follows the Trace Event Format's JSON-object flavor:
//! a top-level `{"traceEvents": [...]}` whose entries are `"B"`/`"E"`
//! duration events for stage and phase spans, `"i"` instant events for
//! everything else, and `"M"` thread-name metadata so worker/pool threads
//! are labeled. Timestamps are the journal's microseconds; `pid` is
//! constant 1 (one campaign = one logical process) and `tid` is a dense
//! index over thread names in first-appearance order.

use std::collections::BTreeMap;
use std::path::Path;

use csnake_core::error::Result;

use crate::record::{stage_name, EventKind, TelemetryRecord};

/// The trace name of a record's event, if it opens/closes a span.
fn span_name(kind: &EventKind) -> Option<String> {
    match kind {
        EventKind::StageStarted { stage } | EventKind::StageFinished { stage } => {
            Some(format!("stage:{}", stage_name(*stage)))
        }
        EventKind::PhaseStarted { phase, .. } | EventKind::PhaseFinished { phase, .. } => {
            Some(format!("phase:{phase}"))
        }
        _ => None,
    }
}

/// Builds the Chrome trace JSON for a record stream.
pub fn chrome_trace_json(records: &[TelemetryRecord]) -> String {
    let mut tids: BTreeMap<&str, usize> = BTreeMap::new();
    let mut events: Vec<String> = Vec::new();

    for r in records {
        let next = tids.len() + 1;
        let tid = *tids.entry(r.thread.as_str()).or_insert(next);
        let common = format!("\"ts\":{},\"pid\":1,\"tid\":{tid}", r.micros);
        match &r.kind {
            EventKind::StageStarted { .. } | EventKind::PhaseStarted { .. } => {
                let name = span_name(&r.kind).expect("span open has a name");
                events.push(format!(
                    "{{\"name\":\"{name}\",\"cat\":\"span\",\"ph\":\"B\",{common}}}"
                ));
            }
            EventKind::StageFinished { .. } | EventKind::PhaseFinished { .. } => {
                let name = span_name(&r.kind).expect("span close has a name");
                events.push(format!(
                    "{{\"name\":\"{name}\",\"cat\":\"span\",\"ph\":\"E\",{common}}}"
                ));
            }
            other => {
                // Instants carry their full record line as args, so the
                // trace viewer shows every field on click.
                let args = crate::record::json_escape(&format!("{other:?}"));
                events.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",{common},\"args\":{{\"detail\":\"{args}\"}}}}",
                    other.name()
                ));
            }
        }
    }

    // Thread-name metadata, after the fact (order within the array is
    // irrelevant to viewers).
    for (name, tid) in &tids {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
            crate::record::json_escape(name)
        ));
    }

    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}",
        events.join(",")
    )
}

/// Writes the Chrome trace atomically (snapshot discipline).
pub fn write_chrome_trace(path: impl AsRef<Path>, records: &[TelemetryRecord]) -> Result<()> {
    csnake_core::write_file_bytes(path.as_ref(), chrome_trace_json(records).as_bytes())
}

/// Checks span completeness: every `*_started` record has a matching
/// `*_finished` later in the stream (per span name, nesting allowed).
/// Returns the names of unmatched opens and orphan closes; empty means
/// every span pair is complete.
pub fn unbalanced_spans(records: &[TelemetryRecord]) -> Vec<String> {
    let mut open: BTreeMap<String, usize> = BTreeMap::new();
    let mut bad = Vec::new();
    for r in records {
        match &r.kind {
            EventKind::StageStarted { .. } | EventKind::PhaseStarted { .. } => {
                *open.entry(span_name(&r.kind).expect("named")).or_insert(0) += 1;
            }
            EventKind::StageFinished { .. } | EventKind::PhaseFinished { .. } => {
                let name = span_name(&r.kind).expect("named");
                match open.get_mut(&name) {
                    Some(n) if *n > 0 => *n -= 1,
                    _ => bad.push(format!("orphan close: {name}")),
                }
            }
            _ => {}
        }
    }
    for (name, n) in open {
        if n > 0 {
            bad.push(format!("unclosed span: {name}"));
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, micros: u64, thread: &str, kind: EventKind) -> TelemetryRecord {
        TelemetryRecord {
            seq,
            micros,
            thread: thread.into(),
            dur_micros: None,
            kind,
        }
    }

    fn spanned_stream() -> Vec<TelemetryRecord> {
        vec![
            rec(0, 0, "main", EventKind::StageStarted { stage: 2 }),
            rec(
                1,
                5,
                "main",
                EventKind::PhaseStarted {
                    phase: 1,
                    planned: 2,
                },
            ),
            rec(
                2,
                9,
                "pool-0",
                EventKind::ExperimentCompleted {
                    fault: 3,
                    test: 1,
                    interference: 0,
                    edges: 1,
                },
            ),
            rec(
                3,
                12,
                "main",
                EventKind::PhaseFinished {
                    phase: 1,
                    executed: 2,
                },
            ),
            rec(4, 20, "main", EventKind::StageFinished { stage: 2 }),
        ]
    }

    #[test]
    fn trace_is_valid_json_with_paired_spans() {
        let records = spanned_stream();
        let json = chrome_trace_json(&records);
        let v = crate::json::parse(&json).expect("valid trace JSON");
        let events = v
            .get("traceEvents")
            .and_then(crate::json::Value::as_arr)
            .expect("traceEvents array");
        // 5 records + 2 thread_name metadata entries.
        assert_eq!(events.len(), 7);
        let mut b = 0;
        let mut e = 0;
        for ev in events {
            match ev.get("ph").and_then(crate::json::Value::as_str) {
                Some("B") => b += 1,
                Some("E") => e += 1,
                _ => {}
            }
        }
        assert_eq!((b, e), (2, 2));
        assert!(unbalanced_spans(&records).is_empty());
    }

    #[test]
    fn unbalanced_spans_are_reported() {
        let mut records = spanned_stream();
        records.pop(); // drop the stage close
        let bad = unbalanced_spans(&records);
        assert_eq!(bad, vec!["unclosed span: stage:allocated".to_string()]);
        let orphan = vec![rec(
            0,
            0,
            "main",
            EventKind::PhaseFinished {
                phase: 2,
                executed: 0,
            },
        )];
        assert_eq!(
            unbalanced_spans(&orphan),
            vec!["orphan close: phase:2".to_string()]
        );
    }
}
