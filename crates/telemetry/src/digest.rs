//! End-of-campaign metrics digest, computed from the recorded journal.
//!
//! The digest replaces the `BENCH_*` bins' ad-hoc timers: per-stage and
//! per-phase wall times come from the recorder's span durations,
//! experiment latency percentiles from the inter-completion gaps of the
//! [`ExperimentCompleted`](crate::record::EventKind::ExperimentCompleted)
//! stream, and the counter block from a single pass over the records.
//! [`MetricsDigest::to_json`] renders the whole thing as one JSON object
//! for checking into benchmark files.

use crate::record::{stage_name, EventKind, TelemetryRecord};

/// Latency percentiles over a set of microsecond samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Number of samples.
    pub count: usize,
    /// Median, microseconds.
    pub p50_micros: u64,
    /// 90th percentile, microseconds.
    pub p90_micros: u64,
    /// 99th percentile, microseconds.
    pub p99_micros: u64,
    /// Maximum, microseconds.
    pub max_micros: u64,
}

impl LatencyHistogram {
    /// Nearest-rank percentiles over `samples` (order irrelevant).
    pub fn from_samples(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return LatencyHistogram::default();
        }
        samples.sort_unstable();
        let rank = |p: f64| -> u64 {
            let n = samples.len();
            let idx = ((p / 100.0) * n as f64).ceil() as usize;
            samples[idx.clamp(1, n) - 1]
        };
        LatencyHistogram {
            count: samples.len(),
            p50_micros: rank(50.0),
            p90_micros: rank(90.0),
            p99_micros: rank(99.0),
            max_micros: *samples.last().expect("non-empty"),
        }
    }
}

/// Raw inter-completion gaps (µs) of the `ExperimentCompleted` stream —
/// the samples behind [`MetricsDigest::experiment_latency`]. Exposed so
/// harnesses evaluating many campaigns can pool the samples across runs
/// into one [`LatencyHistogram`] instead of averaging percentiles.
pub fn experiment_latency_samples(records: &[TelemetryRecord]) -> Vec<u64> {
    let mut latencies = Vec::new();
    let mut last: Option<u64> = None;
    for r in records {
        if let EventKind::ExperimentCompleted { .. } = &r.kind {
            if let Some(prev) = last {
                latencies.push(r.micros.saturating_sub(prev));
            }
            last = Some(r.micros);
        }
    }
    latencies
}

/// The digest: wall times, latency percentiles, campaign counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsDigest {
    /// Timestamp of the last record — total observed wall time, µs.
    pub wall_micros: u64,
    /// Total span duration per stage, `(stage name, µs)`, in first-open
    /// order. A stage entered more than once (resume) accumulates.
    pub stage_wall_micros: Vec<(String, u64)>,
    /// Total span duration per allocation phase, `(phase, µs)`.
    pub phase_wall_micros: Vec<(u8, u64)>,
    /// Gaps between consecutive experiment completions.
    pub experiment_latency: LatencyHistogram,
    /// Experiments completed.
    pub experiments: usize,
    /// Causal edges accepted.
    pub edges: usize,
    /// Cycles reported.
    pub cycles: usize,
    /// Final budget spent.
    pub budget_spent: usize,
    /// Final budget total.
    pub budget_total: usize,
    /// Retry rounds (coordinator-side deterministic stream).
    pub retries: usize,
    /// Cells abandoned as gaps.
    pub gaps: usize,
    /// Final trace-cache hits.
    pub cache_hits: usize,
    /// Final trace-cache misses.
    pub cache_misses: usize,
    /// Clustering runs observed.
    pub clustering_runs: usize,
    /// Peak clustering input vectors.
    pub clustering_peak_vectors: usize,
    /// Mid-phase checkpoints written.
    pub checkpoints: usize,
    /// Daemon workers that connected.
    pub workers_connected: usize,
    /// Daemon workers lost.
    pub workers_lost: usize,
    /// Worker events forwarded live.
    pub events_forwarded: usize,
    /// Whether the campaign degraded.
    pub degraded: bool,
    /// Workload summaries observed (one per open-loop experiment).
    pub workload_summaries: usize,
    /// Requests completed across all workload summaries.
    pub workload_completed: u64,
    /// Requests shed or timed out across all workload summaries.
    pub workload_dropped: u64,
    /// Worst whole-run p99 latency over the workload summaries, µs.
    pub workload_peak_p99_us: u64,
    /// Summaries whose windowed p99 inflected (cascade onset detected).
    pub workload_inflections: usize,
    /// Earliest inflection instant across the summaries, ms into a run.
    pub workload_first_inflection_ms: Option<u64>,
}

impl MetricsDigest {
    /// Computes the digest in one pass over `records`.
    pub fn from_records(records: &[TelemetryRecord]) -> Self {
        let mut d = MetricsDigest::default();
        let mut latencies = Vec::new();
        let mut last_experiment: Option<u64> = None;
        for r in records {
            d.wall_micros = d.wall_micros.max(r.micros);
            match &r.kind {
                EventKind::StageFinished { stage } => {
                    if let Some(dur) = r.dur_micros {
                        let name = stage_name(*stage).to_string();
                        if let Some(slot) = d.stage_wall_micros.iter_mut().find(|(n, _)| *n == name)
                        {
                            slot.1 += dur;
                        } else {
                            d.stage_wall_micros.push((name, dur));
                        }
                    }
                }
                EventKind::PhaseFinished { phase, .. } => {
                    if let Some(dur) = r.dur_micros {
                        if let Some(slot) = d.phase_wall_micros.iter_mut().find(|(p, _)| p == phase)
                        {
                            slot.1 += dur;
                        } else {
                            d.phase_wall_micros.push((*phase, dur));
                        }
                    }
                }
                EventKind::ExperimentCompleted { .. } => {
                    d.experiments += 1;
                    if let Some(prev) = last_experiment {
                        latencies.push(r.micros.saturating_sub(prev));
                    }
                    last_experiment = Some(r.micros);
                }
                EventKind::EdgeEmitted { .. } => d.edges += 1,
                EventKind::CycleFound { .. } => d.cycles += 1,
                EventKind::BudgetSpent { spent, total } => {
                    d.budget_spent = *spent;
                    d.budget_total = *total;
                }
                EventKind::TraceCache { hits, misses } => {
                    d.cache_hits = *hits;
                    d.cache_misses = *misses;
                }
                EventKind::Clustering { vectors, .. } => {
                    d.clustering_runs += 1;
                    d.clustering_peak_vectors = d.clustering_peak_vectors.max(*vectors);
                }
                EventKind::BatchRetried { .. } => d.retries += 1,
                EventKind::BatchFailed { .. } => d.gaps += 1,
                EventKind::CheckpointWritten { .. } => d.checkpoints += 1,
                EventKind::Degraded { .. } => d.degraded = true,
                EventKind::WorkerConnected { .. } => d.workers_connected += 1,
                EventKind::WorkerLost { .. } => d.workers_lost += 1,
                EventKind::ForwardedExperiment { .. }
                | EventKind::ForwardedRetry { .. }
                | EventKind::ForwardedFailure { .. }
                | EventKind::ForwardedCache { .. } => d.events_forwarded += 1,
                EventKind::WorkloadSummary {
                    completed,
                    dropped,
                    p99_us,
                    inflection_ms,
                    ..
                } => {
                    d.workload_summaries += 1;
                    d.workload_completed += completed;
                    d.workload_dropped += dropped;
                    d.workload_peak_p99_us = d.workload_peak_p99_us.max(*p99_us);
                    if let Some(ms) = inflection_ms {
                        d.workload_inflections += 1;
                        d.workload_first_inflection_ms = Some(
                            d.workload_first_inflection_ms
                                .map_or(*ms, |cur| cur.min(*ms)),
                        );
                    }
                }
                _ => {}
            }
        }
        d.experiment_latency = LatencyHistogram::from_samples(latencies);
        d
    }

    /// Renders the digest as a JSON object (stable key order).
    pub fn to_json(&self) -> String {
        let stages: Vec<String> = self
            .stage_wall_micros
            .iter()
            .map(|(n, us)| format!("{{\"stage\":\"{n}\",\"wall_micros\":{us}}}"))
            .collect();
        let phases: Vec<String> = self
            .phase_wall_micros
            .iter()
            .map(|(p, us)| format!("{{\"phase\":{p},\"wall_micros\":{us}}}"))
            .collect();
        let l = &self.experiment_latency;
        format!(
            concat!(
                "{{\"wall_micros\":{},\"stages\":[{}],\"phases\":[{}],",
                "\"experiment_latency\":{{\"count\":{},\"p50_micros\":{},",
                "\"p90_micros\":{},\"p99_micros\":{},\"max_micros\":{}}},",
                "\"experiments\":{},\"edges\":{},\"cycles\":{},",
                "\"budget_spent\":{},\"budget_total\":{},\"retries\":{},",
                "\"gaps\":{},\"cache_hits\":{},\"cache_misses\":{},",
                "\"clustering_runs\":{},\"clustering_peak_vectors\":{},",
                "\"checkpoints\":{},\"workers_connected\":{},",
                "\"workers_lost\":{},\"events_forwarded\":{},\"degraded\":{},",
                "\"workload\":{{\"summaries\":{},\"completed\":{},",
                "\"dropped\":{},\"peak_p99_us\":{},\"inflections\":{},",
                "\"first_inflection_ms\":{}}}}}"
            ),
            self.wall_micros,
            stages.join(","),
            phases.join(","),
            l.count,
            l.p50_micros,
            l.p90_micros,
            l.p99_micros,
            l.max_micros,
            self.experiments,
            self.edges,
            self.cycles,
            self.budget_spent,
            self.budget_total,
            self.retries,
            self.gaps,
            self.cache_hits,
            self.cache_misses,
            self.clustering_runs,
            self.clustering_peak_vectors,
            self.checkpoints,
            self.workers_connected,
            self.workers_lost,
            self.events_forwarded,
            self.degraded,
            self.workload_summaries,
            self.workload_completed,
            self.workload_dropped,
            self.workload_peak_p99_us,
            self.workload_inflections,
            self.workload_first_inflection_ms
                .map_or("null".to_string(), |ms| ms.to_string()),
        )
    }

    /// Writes the digest JSON atomically (snapshot discipline).
    pub fn write_json(&self, path: impl AsRef<std::path::Path>) -> csnake_core::error::Result<()> {
        csnake_core::write_file_bytes(path.as_ref(), self.to_json().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, micros: u64, dur: Option<u64>, kind: EventKind) -> TelemetryRecord {
        TelemetryRecord {
            seq,
            micros,
            thread: "main".into(),
            dur_micros: dur,
            kind,
        }
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let h = LatencyHistogram::from_samples((1..=100).collect());
        assert_eq!(h.count, 100);
        assert_eq!(h.p50_micros, 50);
        assert_eq!(h.p90_micros, 90);
        assert_eq!(h.p99_micros, 99);
        assert_eq!(h.max_micros, 100);
        let one = LatencyHistogram::from_samples(vec![7]);
        assert_eq!((one.p50_micros, one.p99_micros, one.max_micros), (7, 7, 7));
        assert_eq!(LatencyHistogram::from_samples(vec![]).count, 0);
    }

    #[test]
    fn digest_aggregates_the_stream() {
        let records = vec![
            rec(0, 0, None, EventKind::StageStarted { stage: 2 }),
            rec(
                1,
                10,
                None,
                EventKind::PhaseStarted {
                    phase: 1,
                    planned: 3,
                },
            ),
            rec(
                2,
                20,
                None,
                EventKind::ExperimentCompleted {
                    fault: 1,
                    test: 0,
                    interference: 0,
                    edges: 2,
                },
            ),
            rec(
                3,
                50,
                None,
                EventKind::ExperimentCompleted {
                    fault: 2,
                    test: 0,
                    interference: 1,
                    edges: 0,
                },
            ),
            rec(
                4,
                55,
                None,
                EventKind::EdgeEmitted {
                    cause: 1,
                    effect: 2,
                    kind: 2,
                    test: 0,
                    phase: 1,
                },
            ),
            rec(5, 60, None, EventKind::BudgetSpent { spent: 2, total: 8 }),
            rec(
                6,
                70,
                Some(60),
                EventKind::PhaseFinished {
                    phase: 1,
                    executed: 3,
                },
            ),
            rec(7, 80, Some(80), EventKind::StageFinished { stage: 2 }),
        ];
        let d = MetricsDigest::from_records(&records);
        assert_eq!(d.wall_micros, 80);
        assert_eq!(d.workload_summaries, 0);
        assert_eq!(d.workload_first_inflection_ms, None);
        assert_eq!(d.stage_wall_micros, vec![("allocated".to_string(), 80)]);
        assert_eq!(d.phase_wall_micros, vec![(1, 60)]);
        assert_eq!(d.experiments, 2);
        assert_eq!(d.edges, 1);
        assert_eq!((d.budget_spent, d.budget_total), (2, 8));
        assert_eq!(d.experiment_latency.count, 1);
        assert_eq!(d.experiment_latency.p50_micros, 30);
        crate::json::validate(&d.to_json()).expect("digest JSON is valid");
    }

    #[test]
    fn digest_folds_workload_summaries() {
        let summary =
            |seed: u64, p99_us: u64, inflection_ms: Option<u64>| EventKind::WorkloadSummary {
                test: 0,
                seed,
                offered: 1_000,
                completed: 990,
                dropped: 10,
                p50_us: 250,
                p99_us,
                inflection_ms,
            };
        let records = vec![
            rec(0, 10, None, summary(1, 900, None)),
            rec(1, 20, None, summary(2, 52_000, Some(4_750))),
            rec(2, 30, None, summary(3, 48_000, Some(2_500))),
        ];
        let d = MetricsDigest::from_records(&records);
        assert_eq!(d.workload_summaries, 3);
        assert_eq!(d.workload_completed, 2_970);
        assert_eq!(d.workload_dropped, 30);
        assert_eq!(d.workload_peak_p99_us, 52_000);
        assert_eq!(d.workload_inflections, 2);
        assert_eq!(d.workload_first_inflection_ms, Some(2_500));
        let json = d.to_json();
        assert!(json.contains("\"first_inflection_ms\":2500"), "{json}");
        crate::json::validate(&json).expect("digest JSON is valid");
    }
}
