//! Campaign observability: the flight recorder and its exports.
//!
//! CSnake campaigns are long-running, distributed, chaos-exposed jobs;
//! this crate is how you *watch* one. It layers entirely on the
//! [`CampaignObserver`](csnake_core::CampaignObserver) event stream —
//! observers never perturb results, so a campaign with the recorder
//! attached produces a bit-identical report to one without.
//!
//! # Walkthrough
//!
//! **Record.** Attach a [`FlightRecorder`] (alone, or fanned out next to a
//! [`ProgressCollector`](csnake_core::ProgressCollector) via
//! [`FanoutObserver`](csnake_core::FanoutObserver)) and every observer
//! event becomes a [`TelemetryRecord`]: monotonic sequence number,
//! microsecond timestamp, emitting thread, and span durations for
//! stage/phase open/close pairs. Records append to a JSONL journal (one
//! object per line, flushed per record — `tail -f` it mid-run) and a
//! binary journal of checksummed `Persist` frames that rejects truncation
//! and garbling with the same typed errors as snapshots
//! ([`read_journal`]).
//!
//! ```no_run
//! use std::sync::Arc;
//! use csnake_telemetry::FlightRecorder;
//!
//! let recorder = Arc::new(
//!     FlightRecorder::builder()
//!         .jsonl("campaign.jsonl")
//!         .binary("campaign.csnj")
//!         .build()?,
//! );
//! // SessionBuilder::new(..).observer(recorder.clone()) ... run ...
//! recorder.finish()?;
//! # Ok::<(), csnake_core::CsnakeError>(())
//! ```
//!
//! **Export.** After the campaign, [`write_chrome_trace`] turns the
//! records into a `chrome://tracing` / Perfetto-loadable trace (stage and
//! phase spans as `B`/`E` pairs, everything else as instants with full
//! detail), and [`MetricsDigest::from_records`] computes per-stage wall
//! times, experiment-latency percentiles (p50/p90/p99) and the campaign
//! counter block — the `BENCH_*` bins consume this instead of ad-hoc
//! timers.
//!
//! **Watch a fleet.** With the daemon's worker event forwarding, the
//! coordinator's collector sees per-worker attribution as work happens;
//! [`render_fleet`] paints it (budget, ETA, per-worker shard/lease state,
//! loss reasons) and [`LiveProgress`] repaints on a polling thread —
//! `csnake-daemon run --progress` wires exactly that.
//!
//! **Validate.** The vendored `serde` is compile-only, so the [`json`]
//! module carries a minimal first-party JSON parser: tests and the CI
//! telemetry smoke step use it to schema-check journal lines
//! ([`json::validate_record_line`]), load-check Chrome traces, and assert
//! span completeness ([`unbalanced_spans`]).

#![warn(missing_docs)]

pub mod digest;
pub mod json;
pub mod progress;
pub mod record;
pub mod recorder;
pub mod trace;

pub use digest::{experiment_latency_samples, LatencyHistogram, MetricsDigest};
pub use progress::{render_fleet, LiveProgress};
pub use record::{
    decode_journal, read_journal, seal_record, EventKind, TelemetryRecord, JOURNAL_MAGIC,
    JOURNAL_VERSION,
};
pub use recorder::{FlightRecorder, RecorderBuilder};
pub use trace::{chrome_trace_json, unbalanced_spans, write_chrome_trace};
