//! Self-chaos smoke campaign for CI.
//!
//! Runs two representative campaigns — the `kafka-isr` corpus scenario and
//! one generated `gen:<seed>` system — three times each:
//!
//! 1. **clean**: no chaos, the baseline report;
//! 2. **transient chaos**: injected experiment panics, stalls, and
//!    checkpoint-IO failures that clear within the supervisor's retry
//!    budget — the report must be Debug-identical to the baseline and the
//!    run accounting unchanged (failed attempts cost zero recorded runs);
//! 3. **permanent chaos**: cells that fail every retry — the campaign must
//!    still complete, with the missing (fault, test) cells enumerated in a
//!    degraded report;
//! 4. **distributed wire chaos**: the same campaign sharded across two
//!    workers while every assignment frame risks a transient drop or
//!    stall at the coordinator's send path — the re-send machinery must
//!    keep the report and run accounting Debug-identical to the clean
//!    baseline without losing a worker.
//!
//! Gated on `CSNAKE_CHAOS_SMOKE=1` so plain `cargo run` stays inert; CI
//! sets the variable (plus `CSNAKE_STAGE_DEADLINE_S` so a hung stage names
//! itself instead of timing out the job).
//!
//! Run with:
//! `CSNAKE_CHAOS_SMOKE=1 cargo run --release -p csnake-bench --bin chaos_smoke`

use std::process::ExitCode;
use std::sync::Arc;

use csnake_bench::watchdog;
use csnake_core::{
    ChaosConfig, DetectConfig, ProgressCollector, Session, TargetSystem, ThreePhase,
};
use csnake_scenario::{corpus_dir, load_file};

const GEN_SEED: u64 = 5;

fn fast_config() -> DetectConfig {
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800];
    cfg.driver.retry.backoff_base_ms = 1;
    cfg
}

fn transient_chaos() -> ChaosConfig {
    ChaosConfig {
        seed: 0xC7A05,
        experiment_panic: 0.35,
        experiment_stall: 0.15,
        snapshot_io: 0.5,
        stall_ms: 1,
        transient_attempts: 1,
        ..ChaosConfig::default()
    }
}

fn permanent_chaos() -> ChaosConfig {
    ChaosConfig {
        seed: 0xDE6D,
        experiment_panic: 0.25,
        permanent: true,
        ..ChaosConfig::default()
    }
}

fn wire_chaos() -> ChaosConfig {
    ChaosConfig {
        seed: 0x317E,
        wire_drop: 0.5,
        wire_stall: 0.25,
        stall_ms: 1,
        transient_attempts: 1,
        ..ChaosConfig::default()
    }
}

/// One campaign under one chaos regime; returns (report Debug, runs).
fn run_campaign(
    target: &dyn TargetSystem,
    chaos: Option<ChaosConfig>,
    checkpoint: Option<&std::path::Path>,
    progress: &Arc<ProgressCollector>,
) -> Result<(String, usize), String> {
    let mut cfg = fast_config();
    if let Some(chaos) = chaos {
        cfg.driver.chaos = chaos;
    }
    let mut builder = Session::builder(target)
        .config(cfg)
        .observer(progress.clone());
    if let Some(path) = checkpoint {
        builder = builder.auto_checkpoint(path, 1);
    }
    let mut session = builder.build().map_err(|e| format!("build: {e}"))?;
    let report = session
        .run_to_report(&ThreePhase::default())
        .map_err(|e| format!("run_to_report: {e}"))?;
    let debug = format!("{report:?}");
    Ok((debug, session.runs_executed()))
}

fn smoke_target(name: &str, target: &dyn TargetSystem) -> Result<(), String> {
    let ckpt_dir = std::env::temp_dir().join(format!("csnake-chaos-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&ckpt_dir).map_err(|e| format!("temp dir: {e}"))?;
    let ckpt = ckpt_dir.join(format!("{name}.csnake"));

    let wd = watchdog::guard(&format!("{name}:clean"));
    let clean_progress = Arc::new(ProgressCollector::new());
    let (clean_report, clean_runs) = run_campaign(target, None, None, &clean_progress)?;
    drop(wd);

    let wd = watchdog::guard(&format!("{name}:transient"));
    let progress = Arc::new(ProgressCollector::new());
    let (report, runs) = run_campaign(target, Some(transient_chaos()), Some(&ckpt), &progress)?;
    let snap = progress.snapshot();
    if report != clean_report {
        return Err(format!("{name}: transient chaos changed the report"));
    }
    if runs != clean_runs {
        return Err(format!(
            "{name}: transient chaos changed run accounting ({clean_runs} → {runs})"
        ));
    }
    if snap.batch_failures != 0 {
        return Err(format!(
            "{name}: transient chaos must not fail cells permanently ({} failures)",
            snap.batch_failures
        ));
    }
    eprintln!(
        "{name}: transient chaos recovered identically ({} retries, {} checkpoints, {} runs)",
        snap.batch_retries, snap.checkpoints_written, runs
    );
    drop(wd);

    let wd = watchdog::guard(&format!("{name}:permanent"));
    let progress = Arc::new(ProgressCollector::new());
    let (report, _) = run_campaign(target, Some(permanent_chaos()), None, &progress)?;
    let snap = progress.snapshot();
    if snap.batch_failures > 0 {
        if !snap.degraded {
            return Err(format!(
                "{name}: permanent failures must surface the degraded event"
            ));
        }
        if !report.contains("missing_cells") {
            return Err(format!(
                "{name}: degraded report must enumerate missing cells"
            ));
        }
        eprintln!(
            "{name}: permanent chaos degraded gracefully ({} cells lost, campaign completed)",
            snap.batch_failures
        );
    } else {
        // The seeded rates happened to miss every cell for this target;
        // completion without degradation is the recovered case.
        eprintln!("{name}: permanent chaos injected nothing fatal; campaign completed clean");
    }
    drop(wd);

    let wd = watchdog::guard(&format!("{name}:distributed-wire"));
    let progress = Arc::new(ProgressCollector::new());
    let mut cfg = fast_config();
    cfg.driver.chaos = wire_chaos();
    let opts = csnake_daemon::RunOptions {
        observer: Some(progress.clone()),
        ..csnake_daemon::RunOptions::default()
    };
    let run = csnake_daemon::run_distributed(name, cfg, 2, opts)
        .map_err(|e| format!("{name}: distributed wire chaos: {e}"))?;
    let snap = progress.snapshot();
    if format!("{:?}", run.report) != clean_report {
        return Err(format!(
            "{name}: transient wire chaos changed the distributed report"
        ));
    }
    if run.outcome.runs_executed != clean_runs {
        return Err(format!(
            "{name}: transient wire chaos changed run accounting ({clean_runs} → {})",
            run.outcome.runs_executed
        ));
    }
    if snap.workers_lost != 0 {
        return Err(format!(
            "{name}: transient wire chaos must not cost a worker ({} lost)",
            snap.workers_lost
        ));
    }
    eprintln!(
        "{name}: transient wire chaos invisible across 2 workers ({} shard re-sends, {} runs)",
        snap.shards_reassigned, run.outcome.runs_executed
    );
    drop(wd);

    std::fs::remove_dir_all(&ckpt_dir).ok();
    Ok(())
}

fn main() -> ExitCode {
    if std::env::var_os("CSNAKE_CHAOS_SMOKE").is_none() {
        eprintln!("chaos_smoke: set CSNAKE_CHAOS_SMOKE=1 to run the chaos smoke campaigns");
        return ExitCode::SUCCESS;
    }

    let kafka = match load_file(corpus_dir().join("kafka-isr.csnake-scn")) {
        Ok(sys) => sys,
        Err(e) => {
            eprintln!("chaos_smoke: kafka-isr scenario failed to load: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = smoke_target("kafka-isr", &kafka) {
        eprintln!("chaos_smoke: {e}");
        return ExitCode::FAILURE;
    }

    let generated = match csnake_gen::by_name(&format!("gen:{GEN_SEED}")) {
        Ok(sys) => sys,
        Err(e) => {
            eprintln!("chaos_smoke: gen:{GEN_SEED} failed to build: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = smoke_target(&format!("gen:{GEN_SEED}"), generated.as_ref()) {
        eprintln!("chaos_smoke: {e}");
        return ExitCode::FAILURE;
    }

    eprintln!("chaos_smoke: all campaigns degraded-or-recovered as specified");
    ExitCode::SUCCESS
}
