//! Workload-engine performance: the event wheel against the retained
//! heap on open-loop, million-request experiments.
//!
//! Writes `BENCH_workload.json` at the repository root with two medians
//! per scale, under each scheduler backend:
//!
//! * **experiment** — one full workload experiment end-to-end (arrival
//!   sampling, the instrumented server, latency recording and the
//!   percentile fold), after asserting the two backends produce
//!   bit-identical run traces and latency summaries. The per-request
//!   work outside the scheduler is identical under both backends, so
//!   this ratio understates the scheduler gap by that shared cost.
//! * **scheduler-only** — the same arrival stream pushed as pending
//!   timers and drained through a no-op world: pure queue push/pop, the
//!   operation the hierarchical wheel rework targets. The ≥3× goal at
//!   the million-timer case is measured here.
//!
//! A further stage runs a real detection campaign on a workload
//! pseudo-target with the telemetry flight recorder attached and records
//! the `MetricsDigest`'s cascade signal: the injected drain-loop delay
//! must show up as a windowed-p99 inflection.
//!
//! Run with `cargo run --release -p csnake-bench --bin workload_perf`;
//! set `CSNAKE_WORKLOAD_SMOKE=1` for the reduced CI set (smallest scale,
//! one sample, artifact written to `BENCH_workload.smoke.json` so CI
//! never clobbers the committed full-scale trajectory).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use csnake_bench::watchdog;
use csnake_core::{CampaignObserver, DetectConfig, Session, TargetSystem, ThreePhase};
use csnake_inject::TestId;
use csnake_sim::scheduler::{self, SchedulerKind};
use csnake_sim::{Sim, SimRng, VirtualTime, World};
use csnake_telemetry::{FlightRecorder, MetricsDigest};
use csnake_workload::{Arrival, ArrivalSource, WorkloadSpec, WorkloadSystem};

/// Offered request rate for the scale sweep, requests per virtual second.
const RATE_PER_SEC: f64 = 50_000.0;

/// One experiment run: sample + pre-schedule the whole arrival stream,
/// drain it through the instrumented server, fold the latency summary.
fn spec_for(offered: u64) -> WorkloadSpec {
    let virtual_secs = (offered as f64 / RATE_PER_SEC).ceil() as u64 + 5;
    WorkloadSpec {
        source: ArrivalSource::Process {
            arrival: Arrival::Poisson {
                rate_per_sec: RATE_PER_SEC,
            },
            offered,
        },
        service: VirtualTime::from_micros(10),
        tick: VirtualTime::from_millis(5),
        horizon: VirtualTime::from_secs(virtual_secs),
        event_limit: (offered * 4).max(2_000_000),
        ..WorkloadSpec::default()
    }
}

/// Runs one experiment under `kind`, returning `(wall_ns, fingerprint)`
/// where the fingerprint captures everything the run produced: the trace's
/// loop counts / event total / hook count and the full latency summary.
fn run_once(offered: u64, kind: SchedulerKind, seed: u64) -> (u128, String) {
    scheduler::set_default(kind);
    let sys = WorkloadSystem::with_spec("workload:perf", spec_for(offered));
    let t = Instant::now();
    let trace = sys.run(TestId(0), None, seed);
    let wall = t.elapsed().as_nanos();
    scheduler::set_default(SchedulerKind::Wheel);
    let summary = sys
        .drain_workload_summaries()
        .pop()
        .expect("run produced a summary");
    assert_eq!(summary.offered, offered, "offered load must match the spec");
    assert_eq!(
        summary.completed, offered,
        "uninjected run must complete every request"
    );
    let fp = format!(
        "loops={:?} events={} hooks={} summary={:?}",
        trace.loop_counts, trace.events, trace.hook_count, summary
    );
    (wall, fp)
}

/// No-op world for the scheduler-only stage: every popped event is
/// discarded, so the measured time is queue push/pop and nothing else.
struct NopWorld;

impl World for NopWorld {
    type Event = u32;
    fn handle(&mut self, _sim: &mut Sim<u32>, _ev: u32) {}
}

/// Scheduler-isolated run: pre-schedule the scale's Poisson stream as
/// pending timers (the wheel's target load shape — all `offered` timers
/// pending at once) and drain it through [`NopWorld`].
fn drain_once(times: &[VirtualTime], kind: SchedulerKind) -> u128 {
    scheduler::set_default(kind);
    let mut sim = Sim::new(1);
    sim.event_limit = times.len() as u64 * 2;
    let t = Instant::now();
    for &at in times {
        sim.schedule_at(at, 0u32);
    }
    sim.run(&mut NopWorld, VirtualTime::MAX);
    let wall = t.elapsed().as_nanos();
    scheduler::set_default(SchedulerKind::Wheel);
    assert_eq!(
        sim.events_executed(),
        times.len() as u64,
        "{}: drain must pop every timer",
        kind.name()
    );
    wall
}

fn median_drain(times: &[VirtualTime], kind: SchedulerKind, samples: usize) -> u128 {
    let mut walls: Vec<u128> = (0..samples.max(1))
        .map(|_| drain_once(times, kind))
        .collect();
    walls.sort_unstable();
    walls[walls.len() / 2]
}

/// Median over `samples` runs plus the (identical) fingerprint.
fn median_run(offered: u64, kind: SchedulerKind, samples: usize) -> (u128, String) {
    let mut walls = Vec::with_capacity(samples);
    let mut fingerprint = None;
    for _ in 0..samples.max(1) {
        let (wall, fp) = run_once(offered, kind, 42);
        if let Some(prev) = &fingerprint {
            assert_eq!(prev, &fp, "{}: rerun diverged", kind.name());
        }
        fingerprint = Some(fp);
        walls.push(wall);
    }
    walls.sort_unstable();
    (walls[walls.len() / 2], fingerprint.expect("≥1 sample"))
}

fn fast_config() -> DetectConfig {
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800];
    cfg.driver.retry.backoff_base_ms = 1;
    cfg
}

/// The campaign stage: a full detection campaign on the Poisson
/// pseudo-target with the flight recorder attached. The driver's delay
/// injections on the drain loop back up the open-loop queue, so the
/// digest must fold at least one windowed-p99 inflection out of the
/// streamed workload summaries.
fn campaign_digest() -> MetricsDigest {
    let target = csnake_workload::by_name("workload:poisson").expect("pseudo-target resolves");
    let recorder = Arc::new(FlightRecorder::builder().build().expect("recorder"));
    let mut session = Session::builder(target.as_ref())
        .config(fast_config())
        .observer(recorder.clone() as Arc<dyn CampaignObserver>)
        .build()
        .expect("session builds");
    let report = session
        .run_to_report(&ThreePhase::default())
        .expect("campaign completes");
    assert!(report.experiments_run > 0);
    recorder.finish().expect("recorder finish");
    MetricsDigest::from_records(&recorder.records())
}

fn main() {
    let smoke = std::env::var_os("CSNAKE_WORKLOAD_SMOKE").is_some();
    let (scales, samples): (Vec<u64>, usize) = if smoke {
        (vec![50_000], 1)
    } else {
        (vec![50_000, 250_000, 1_000_000], 3)
    };

    let mut body = String::new();
    writeln!(body, "{{").unwrap();
    writeln!(body, "  \"generated_by\": \"workload_perf\",").unwrap();
    writeln!(body, "  \"rate_per_sec\": {RATE_PER_SEC},").unwrap();
    writeln!(body, "  \"samples_per_case\": {samples},").unwrap();
    writeln!(body, "  \"scales\": [").unwrap();

    for (i, &offered) in scales.iter().enumerate() {
        let wd = watchdog::guard(&format!("workload:scale={offered}"));
        let (wheel_ns, wheel_fp) = median_run(offered, SchedulerKind::Wheel, samples);
        let (heap_ns, heap_fp) = median_run(offered, SchedulerKind::Heap, samples);
        assert_eq!(
            wheel_fp, heap_fp,
            "offered={offered}: wheel and heap runs must be bit-identical"
        );
        // Scheduler-only drain over the same arrival stream as the
        // experiment above (same process, same rate, same count).
        let times = Arrival::Poisson {
            rate_per_sec: RATE_PER_SEC,
        }
        .times(&mut SimRng::new(42), offered as usize);
        let sched_wheel_ns = median_drain(&times, SchedulerKind::Wheel, samples);
        let sched_heap_ns = median_drain(&times, SchedulerKind::Heap, samples);
        drop(wd);
        let speedup = heap_ns as f64 / wheel_ns.max(1) as f64;
        let sched_speedup = sched_heap_ns as f64 / sched_wheel_ns.max(1) as f64;
        eprintln!(
            "scale {offered}: experiment wheel {:.1} ms vs heap {:.1} ms → {speedup:.2}×; \
             scheduler-only wheel {:.1} ms vs heap {:.1} ms → {sched_speedup:.2}× (runs identical)",
            wheel_ns as f64 / 1e6,
            heap_ns as f64 / 1e6,
            sched_wheel_ns as f64 / 1e6,
            sched_heap_ns as f64 / 1e6,
        );
        writeln!(body, "    {{").unwrap();
        writeln!(body, "      \"offered\": {offered},").unwrap();
        writeln!(body, "      \"experiment_wheel_ns\": {wheel_ns},").unwrap();
        writeln!(body, "      \"experiment_heap_ns\": {heap_ns},").unwrap();
        writeln!(body, "      \"experiment_heap_over_wheel\": {speedup:.2},").unwrap();
        writeln!(body, "      \"scheduler_wheel_ns\": {sched_wheel_ns},").unwrap();
        writeln!(body, "      \"scheduler_heap_ns\": {sched_heap_ns},").unwrap();
        writeln!(
            body,
            "      \"scheduler_heap_over_wheel\": {sched_speedup:.2},"
        )
        .unwrap();
        writeln!(body, "      \"runs\": \"bit_identical\"").unwrap();
        let comma = if i + 1 < scales.len() { "," } else { "" };
        writeln!(body, "    }}{comma}").unwrap();
    }
    writeln!(body, "  ],").unwrap();

    let wd = watchdog::guard("workload:campaign");
    let digest = campaign_digest();
    drop(wd);
    assert!(
        digest.workload_summaries > 0,
        "campaign must stream workload summaries into telemetry"
    );
    assert!(
        digest.workload_inflections > 0 && digest.workload_first_inflection_ms.is_some(),
        "injected drain-loop delay must inflect the windowed p99: {digest:?}"
    );
    eprintln!(
        "campaign: {} summaries, {} inflections, first at {} ms, peak p99 {} µs",
        digest.workload_summaries,
        digest.workload_inflections,
        digest.workload_first_inflection_ms.unwrap_or(0),
        digest.workload_peak_p99_us,
    );
    writeln!(body, "  \"campaign\": {{").unwrap();
    writeln!(body, "    \"target\": \"workload:poisson\",").unwrap();
    writeln!(body, "    \"experiments\": {},", digest.experiments).unwrap();
    writeln!(
        body,
        "    \"workload_summaries\": {},",
        digest.workload_summaries
    )
    .unwrap();
    writeln!(
        body,
        "    \"workload_inflections\": {},",
        digest.workload_inflections
    )
    .unwrap();
    writeln!(
        body,
        "    \"first_inflection_ms\": {},",
        digest.workload_first_inflection_ms.expect("asserted above")
    )
    .unwrap();
    writeln!(body, "    \"peak_p99_us\": {}", digest.workload_peak_p99_us).unwrap();
    writeln!(body, "  }}").unwrap();
    writeln!(body, "}}").unwrap();

    // crates/bench → workspace root. Smoke runs write to a separate file
    // so reproducing the CI step locally never clobbers the committed
    // full-scale trajectory artifact.
    let name = if smoke {
        "BENCH_workload.smoke.json"
    } else {
        "BENCH_workload.json"
    };
    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name);
    std::fs::write(&out, body).expect("write workload bench json");
    eprintln!("wrote {}", out.display());
}
