//! Regenerates the §8.5 measurement: runtime overhead of CSnake's
//! instrumentation (branch tracing + call-stack recording) on profile runs.
//!
//! The paper reports an average of 185% (range 63–376%) on JVM targets;
//! this reproduction's hooks are cheap Rust calls over a simulator, so the
//! absolute percentages are lower — the preserved *shape* is a consistent,
//! measurable slowdown on every system, dominated by trace recording.

use std::time::Instant;

use csnake_core::TargetSystem;
use csnake_inject::{RunTrace, TestId};
use csnake_targets::all_paper_targets;

/// Median wall time of `n` tracing-on or tracing-off profile runs.
fn measure(target: &dyn TargetSystem, tracing: bool, n: usize) -> (f64, u64) {
    csnake_inject::tracing_switch::set(tracing);
    let mut times = Vec::new();
    let mut hooks = 0;
    for rep in 0..n {
        let t0 = Instant::now();
        let trace: RunTrace = target.run(TestId(0), None, rep as u64);
        times.push(t0.elapsed().as_secs_f64());
        hooks = trace.hook_count;
    }
    csnake_inject::tracing_switch::set(true);
    times.sort_by(|a, b| a.total_cmp(b));
    (times[times.len() / 2], hooks)
}

fn main() {
    println!("§8.5: instrumentation overhead on profile runs (workload t0)");
    println!("| System | traced (ms) | untraced (ms) | overhead | hooks/run |");
    println!("|---|---|---|---|---|");
    let n = 9;
    let mut ratios = Vec::new();
    for target in all_paper_targets() {
        let (on, hooks) = measure(target.as_ref(), true, n);
        let (off, _) = measure(target.as_ref(), false, n);
        let overhead = (on / off - 1.0) * 100.0;
        ratios.push(overhead);
        println!(
            "| {} | {:.3} | {:.3} | {:+.1}% | {} |",
            target.name(),
            on * 1e3,
            off * 1e3,
            overhead,
            hooks,
        );
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!();
    println!(
        "Average overhead: {avg:+.1}% (paper: +185% on JVM bytecode instrumentation; \
         lower absolute numbers are expected from inlined Rust hooks)"
    );
}
