//! Flight-recorder smoke for CI: telemetry must observe, never perturb.
//!
//! For each representative campaign (the `kafka-isr` corpus scenario and
//! one generated `gen:<seed>` system) this harness proves:
//!
//! 1. **Non-perturbation, single-process**: a session with a
//!    [`FlightRecorder`] attached lands on a report Debug-identical to a
//!    recorder-off baseline.
//! 2. **Non-perturbation, distributed**: a 2-worker fleet with the
//!    recorder fanned out next to the [`ProgressCollector`] produces the
//!    same identical report, with worker events actually forwarded.
//! 3. **Journal integrity**: every JSONL line schema-validates with the
//!    first-party parser, the binary journal round-trips to the in-memory
//!    record count, every stage/phase span closes, and the exported
//!    Chrome trace is loadable JSON with a non-empty `traceEvents` array.
//! 4. **Digest sanity**: the [`MetricsDigest`] agrees with the report on
//!    experiment and edge counts.
//!
//! Gated on `CSNAKE_TELEMETRY_SMOKE=1` so plain `cargo run` stays inert;
//! CI sets the variable (plus `CSNAKE_STAGE_DEADLINE_S`).
//!
//! Run with:
//! `CSNAKE_TELEMETRY_SMOKE=1 cargo run --release -p csnake-bench --bin telemetry_smoke`

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use csnake_bench::watchdog;
use csnake_core::{
    CampaignObserver, DetectConfig, FanoutObserver, ProgressCollector, Session, ThreePhase,
};
use csnake_daemon::{run_distributed, RunOptions};
use csnake_telemetry::{
    chrome_trace_json, json, read_journal, unbalanced_spans, FlightRecorder, MetricsDigest,
};

const GEN_SEED: u64 = 5;
const WORKERS: usize = 2;

fn fast_config() -> DetectConfig {
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800];
    cfg.driver.retry.backoff_base_ms = 1;
    cfg
}

/// Scratch path unique to this process and label.
fn scratch(label: &str, suffix: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "csnake-telemetry-smoke-{}-{}{}",
        std::process::id(),
        label.replace(':', "-"),
        suffix
    ))
}

fn recorder_for(label: &str) -> Result<(Arc<FlightRecorder>, PathBuf, PathBuf), String> {
    let jsonl = scratch(label, ".jsonl");
    let binary = scratch(label, ".csnj");
    let rec = FlightRecorder::builder()
        .jsonl(jsonl.clone())
        .binary(binary.clone())
        .build()
        .map_err(|e| format!("{label}: open journal: {e}"))?;
    Ok((Arc::new(rec), jsonl, binary))
}

/// The journal-integrity block: schema-valid JSONL, lossless binary
/// round-trip, complete spans, loadable Chrome trace.
fn validate_journal(
    label: &str,
    rec: &FlightRecorder,
    jsonl: &PathBuf,
    binary: &PathBuf,
) -> Result<usize, String> {
    rec.finish().map_err(|e| format!("{label}: finish: {e}"))?;
    let records = rec.records();
    if records.is_empty() {
        return Err(format!("{label}: recorder captured no events"));
    }
    let bad = unbalanced_spans(&records);
    if !bad.is_empty() {
        return Err(format!("{label}: unbalanced spans: {bad:?}"));
    }

    let text =
        std::fs::read_to_string(jsonl).map_err(|e| format!("{label}: read {jsonl:?}: {e}"))?;
    let lines: Vec<&str> = text.lines().collect();
    if lines.len() != records.len() {
        return Err(format!(
            "{label}: JSONL has {} lines for {} records",
            lines.len(),
            records.len()
        ));
    }
    for (i, line) in lines.iter().enumerate() {
        json::validate_record_line(line)
            .map_err(|e| format!("{label}: JSONL line {i} invalid: {e}"))?;
    }

    let reread = read_journal(binary).map_err(|e| format!("{label}: read {binary:?}: {e}"))?;
    if reread.len() != records.len() {
        return Err(format!(
            "{label}: binary journal has {} records, expected {}",
            reread.len(),
            records.len()
        ));
    }

    let trace = chrome_trace_json(&records);
    let value =
        json::parse(&trace).map_err(|e| format!("{label}: chrome trace unparsable: {e}"))?;
    let events = value
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .ok_or_else(|| format!("{label}: chrome trace missing traceEvents array"))?;
    if events.is_empty() {
        return Err(format!("{label}: chrome trace has no events"));
    }

    std::fs::remove_file(jsonl).ok();
    std::fs::remove_file(binary).ok();
    Ok(records.len())
}

fn single_process(
    name: &str,
    observer: Option<Arc<dyn CampaignObserver>>,
) -> Result<(String, usize, usize), String> {
    let target = csnake_daemon::targets::resolve(name).map_err(|e| format!("resolve: {e}"))?;
    let mut builder = Session::builder(target.as_ref()).config(fast_config());
    if let Some(obs) = observer {
        builder = builder.observer(obs);
    }
    let mut session = builder.build().map_err(|e| format!("build: {e}"))?;
    let report = session
        .run_to_report(&ThreePhase::default())
        .map_err(|e| format!("run_to_report: {e}"))?;
    let (experiments, edges) = (report.experiments_run, report.edge_count);
    Ok((format!("{report:?}"), experiments, edges))
}

fn smoke_target(name: &str) -> Result<(), String> {
    // 1. Recorder-off baseline.
    let wd = watchdog::guard(&format!("{name}:baseline"));
    let (baseline, experiments, edges) = single_process(name, None)?;
    drop(wd);

    // 2. Single-process with the recorder attached.
    let wd = watchdog::guard(&format!("{name}:recorded"));
    let (rec, jsonl, binary) = recorder_for(&format!("{name}-single"))?;
    let (recorded, ..) = single_process(name, Some(rec.clone() as Arc<dyn CampaignObserver>))?;
    if recorded != baseline {
        return Err(format!(
            "{name}: recorder perturbed the single-process report"
        ));
    }
    let n = validate_journal(&format!("{name}:single"), &rec, &jsonl, &binary)?;

    // 4. Digest agrees with the report's own accounting.
    let digest = MetricsDigest::from_records(&rec.records());
    if digest.experiments != experiments {
        return Err(format!(
            "{name}: digest counted {} experiments, report says {experiments}",
            digest.experiments
        ));
    }
    if digest.edges != edges {
        return Err(format!(
            "{name}: digest counted {} edges, report says {edges}",
            digest.edges
        ));
    }
    eprintln!("{name}: single-process report identical with recorder on ({n} records)");
    drop(wd);

    // 3. Two-worker fleet: recorder fanned out next to the collector.
    let wd = watchdog::guard(&format!("{name}:distributed-{WORKERS}"));
    let (rec, jsonl, binary) = recorder_for(&format!("{name}-fleet"))?;
    let progress = Arc::new(ProgressCollector::new());
    let fanout = Arc::new(FanoutObserver::new(vec![
        progress.clone() as Arc<dyn CampaignObserver>,
        rec.clone() as Arc<dyn CampaignObserver>,
    ]));
    let opts = RunOptions {
        observer: Some(fanout),
        ..RunOptions::default()
    };
    let run = run_distributed(name, fast_config(), WORKERS, opts)
        .map_err(|e| format!("run_distributed: {e}"))?;
    if format!("{:?}", run.report) != baseline {
        return Err(format!(
            "{name}: recorder perturbed the {WORKERS}-worker report"
        ));
    }
    let snap = progress.snapshot();
    if snap.events_forwarded == 0 {
        return Err(format!("{name}: fleet campaign forwarded no worker events"));
    }
    let n = validate_journal(&format!("{name}:fleet"), &rec, &jsonl, &binary)?;
    eprintln!(
        "{name}: {WORKERS}-worker report identical with recorder on ({n} records, {} events forwarded)",
        snap.events_forwarded
    );
    drop(wd);
    Ok(())
}

fn main() -> ExitCode {
    if std::env::var_os("CSNAKE_TELEMETRY_SMOKE").is_none() {
        eprintln!("telemetry_smoke: set CSNAKE_TELEMETRY_SMOKE=1 to run the flight-recorder smoke");
        return ExitCode::SUCCESS;
    }
    for name in ["kafka-isr", &format!("gen:{GEN_SEED}")] {
        if let Err(e) = smoke_target(name) {
            eprintln!("telemetry_smoke: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!("telemetry_smoke: recorder-on campaigns bit-identical, journals schema-valid");
    ExitCode::SUCCESS
}
