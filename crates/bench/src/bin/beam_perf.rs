//! Beam-search performance trajectory: writes `BENCH_beam.json` at the
//! repository root with median wall-times per pipeline stage (database
//! dedup/push, stitch-index build — grouped/shared-table vs the retained
//! per-edge reference build, indexed search, reference search where
//! affordable), so successive PRs can track the hot path.
//!
//! Every case asserts that the grouped build's search output is identical
//! to the per-edge reference build's, and records the index's
//! `CompatStats` (edge-group and state-pair dedup, stored vs avoided
//! successor entries) in the artifact.
//!
//! Run with `cargo run --release -p csnake-bench --bin beam_perf`; set
//! `CSNAKE_PERF_SMOKE=1` to run the reduced CI set (the smallest case
//! plus the n=10k case, fewer samples).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use csnake_bench::{synthetic_db, watchdog};
use csnake_core::beam::{beam_search_reference, BeamConfig};
use csnake_core::{CausalDb, StitchIndex};

const SAMPLES: usize = 15;

/// Median of per-call wall-times over `samples` runs, in nanoseconds.
fn median_ns<R>(samples: usize, mut f: impl FnMut() -> R) -> u128 {
    let mut times: Vec<u128> = (0..samples.max(1))
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

struct Case {
    n_faults: u32,
    fanout: u32,
    loop_share: f64,
    with_reference: bool,
    samples: usize,
}

fn beam_cfg() -> BeamConfig {
    BeamConfig {
        beam_size: 10_000,
        max_len: 4,
        ..BeamConfig::default()
    }
}

fn main() {
    let smoke = std::env::var_os("CSNAKE_PERF_SMOKE").is_some();
    let base_samples = if smoke { 3 } else { SAMPLES };
    let mut cases = vec![
        Case {
            n_faults: 120,
            fanout: 3,
            loop_share: 0.0,
            with_reference: true,
            samples: base_samples,
        },
        Case {
            n_faults: 500,
            fanout: 6,
            loop_share: 0.3,
            with_reference: false,
            samples: base_samples,
        },
        Case {
            n_faults: 1000,
            fanout: 6,
            loop_share: 0.3,
            with_reference: false,
            samples: base_samples,
        },
        // The large-n case: high fanout over a fault set past 10k, where
        // shared effect states make the per-worker-cache build re-decide
        // the same state pairs once per worker.
        Case {
            n_faults: 10_000,
            fanout: 6,
            loop_share: 0.3,
            with_reference: false,
            samples: if smoke { 1 } else { 3 },
        },
    ];
    if smoke {
        // Keep the reference-checked small case and the n≥10k case.
        cases.remove(2);
        cases.remove(1);
    }

    let cfg = beam_cfg();
    let mut body = String::new();
    writeln!(body, "{{").unwrap();
    writeln!(body, "  \"generated_by\": \"beam_perf\",").unwrap();
    writeln!(body, "  \"samples_per_stage\": {SAMPLES},").unwrap();
    writeln!(
        body,
        "  \"beam_config\": {{\"beam_size\": {}, \"max_len\": {}, \"threads\": {}}},",
        cfg.beam_size, cfg.max_len, cfg.threads
    )
    .unwrap();
    writeln!(body, "  \"cases\": [").unwrap();

    for (i, case) in cases.iter().enumerate() {
        let db = synthetic_db(case.n_faults, case.fanout, case.loop_share);
        eprintln!(
            "case n={} fanout={} loop_share={} ({} edges)",
            case.n_faults,
            case.fanout,
            case.loop_share,
            db.len()
        );
        let samples = case.samples;

        // Stage 1: database construction (hash-set dedup + per-cause
        // index). Inputs are cloned outside the timed region so the metric
        // tracks CausalDb::push, not CompatState deep copies.
        let wd = watchdog::guard(&format!("beam:n={}:dedup", case.n_faults));
        let mut inputs: Vec<Vec<_>> = (0..samples).map(|_| db.edges().to_vec()).collect();
        let dedup_ns = median_ns(samples, || {
            CausalDb::from_edges(inputs.pop().unwrap_or_default()).len()
        });
        drop(wd);

        // Stage 2: stitch-index compilation — the grouped build with the
        // shared pair-verdict table, against the retained per-edge
        // per-worker-cache build on identical inputs.
        let wd = watchdog::guard(&format!("beam:n={}:index", case.n_faults));
        let index_ns = median_ns(samples, || StitchIndex::build(&db, cfg.threads).len());
        let index_ref_ns = median_ns(samples, || {
            StitchIndex::build_reference(&db, cfg.threads).len()
        });
        drop(wd);

        // Stage 3: the indexed beam search on a prebuilt index. The
        // per-edge-built index must produce byte-identical output.
        let wd = watchdog::guard(&format!("beam:n={}:search", case.n_faults));
        let index = StitchIndex::build(&db, cfg.threads);
        let search_ns = median_ns(samples, || index.search(&|_| 0.5, &cfg).len());
        let cycles_found = index.search(&|_| 0.5, &cfg);
        let reference_index = StitchIndex::build_reference(&db, cfg.threads);
        assert_eq!(
            cycles_found,
            reference_index.search(&|_| 0.5, &cfg),
            "grouped build diverged from per-edge reference build at n={}",
            case.n_faults
        );
        let cycles = cycles_found.len();
        let stats = index.compat_stats();
        eprintln!(
            "  build: grouped {:.2} ms vs per-edge {:.2} ms ({} edges → {} groups, {} state pairs; search output identical)",
            index_ns as f64 / 1e6,
            index_ref_ns as f64 / 1e6,
            stats.edges,
            stats.edge_groups,
            stats.distinct_state_pairs,
        );

        // Reference implementation, where it finishes in sensible time.
        drop(wd);
        let wd = watchdog::guard(&format!("beam:n={}:reference", case.n_faults));
        let reference_ns = case
            .with_reference
            .then(|| median_ns(samples, || beam_search_reference(&db, &|_| 0.5, &cfg).len()));
        drop(wd);

        writeln!(body, "    {{").unwrap();
        writeln!(body, "      \"n_faults\": {},", case.n_faults).unwrap();
        writeln!(body, "      \"fanout\": {},", case.fanout).unwrap();
        writeln!(body, "      \"loop_share\": {},", case.loop_share).unwrap();
        writeln!(body, "      \"edges\": {},", db.len()).unwrap();
        writeln!(body, "      \"cycles_found\": {cycles},").unwrap();
        writeln!(body, "      \"compat\": {{").unwrap();
        writeln!(body, "        \"edge_groups\": {},", stats.edge_groups).unwrap();
        writeln!(
            body,
            "        \"distinct_state_pairs\": {},",
            stats.distinct_state_pairs
        )
        .unwrap();
        writeln!(
            body,
            "        \"group_succ_entries\": {},",
            stats.group_succ_entries
        )
        .unwrap();
        writeln!(
            body,
            "        \"edge_succ_entries\": {},",
            stats.edge_succ_entries
        )
        .unwrap();
        writeln!(
            body,
            "        \"group_table_bytes\": {},",
            stats.group_table_bytes()
        )
        .unwrap();
        writeln!(
            body,
            "        \"edge_table_bytes\": {},",
            stats.edge_table_bytes()
        )
        .unwrap();
        writeln!(
            body,
            "        \"search_output\": \"identical_to_per_edge_build\""
        )
        .unwrap();
        writeln!(body, "      }},").unwrap();
        writeln!(body, "      \"stages_ns\": {{").unwrap();
        writeln!(body, "        \"db_push_dedup\": {dedup_ns},").unwrap();
        writeln!(body, "        \"index_build\": {index_ns},").unwrap();
        writeln!(body, "        \"index_build_per_edge\": {index_ref_ns},").unwrap();
        match reference_ns {
            Some(r) => {
                writeln!(body, "        \"search\": {search_ns},").unwrap();
                writeln!(body, "        \"reference_search\": {r}").unwrap();
            }
            None => writeln!(body, "        \"search\": {search_ns}").unwrap(),
        }
        writeln!(body, "      }},").unwrap();
        let total = index_ns + search_ns;
        match reference_ns {
            Some(r) => {
                let speedup = r as f64 / total.max(1) as f64;
                writeln!(
                    body,
                    "      \"speedup_vs_reference_incl_build\": {speedup:.2}"
                )
                .unwrap();
                eprintln!(
                    "  index {:.2} ms + search {:.2} ms vs reference {:.2} ms → {:.1}×",
                    index_ns as f64 / 1e6,
                    search_ns as f64 / 1e6,
                    r as f64 / 1e6,
                    speedup
                );
            }
            None => {
                writeln!(body, "      \"speedup_vs_reference_incl_build\": null").unwrap();
                eprintln!(
                    "  index {:.2} ms + search {:.2} ms",
                    index_ns as f64 / 1e6,
                    search_ns as f64 / 1e6
                );
            }
        }
        let comma = if i + 1 < cases.len() { "," } else { "" };
        writeln!(body, "    }}{comma}").unwrap();
    }
    writeln!(body, "  ]").unwrap();
    writeln!(body, "}}").unwrap();

    // crates/bench → workspace root. Smoke runs write to a separate file
    // so reproducing the CI step locally never clobbers the committed
    // full-scale trajectory artifact.
    let name = if smoke {
        "BENCH_beam.smoke.json"
    } else {
        "BENCH_beam.json"
    };
    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name);
    std::fs::write(&out, body).expect("write beam bench json");
    eprintln!("wrote {}", out.display());
}
