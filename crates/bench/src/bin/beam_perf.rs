//! Beam-search performance trajectory: writes `BENCH_beam.json` at the
//! repository root with median wall-times per pipeline stage (database
//! dedup/push, stitch-index build, indexed search, reference search where
//! affordable), so successive PRs can track the hot path.
//!
//! Run with `cargo run --release -p csnake-bench --bin beam_perf`; set
//! `CSNAKE_PERF_SMOKE=1` to run only the smallest case (the CI smoke
//! invocation).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use csnake_bench::synthetic_db;
use csnake_core::beam::{beam_search_reference, BeamConfig};
use csnake_core::{CausalDb, StitchIndex};

const SAMPLES: usize = 15;

/// Median of per-call wall-times over `SAMPLES` runs, in nanoseconds.
fn median_ns<R>(mut f: impl FnMut() -> R) -> u128 {
    let mut times: Vec<u128> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

struct Case {
    n_faults: u32,
    fanout: u32,
    loop_share: f64,
    with_reference: bool,
}

fn beam_cfg() -> BeamConfig {
    BeamConfig {
        beam_size: 10_000,
        max_len: 4,
        ..BeamConfig::default()
    }
}

fn main() {
    let mut cases = vec![
        Case {
            n_faults: 120,
            fanout: 3,
            loop_share: 0.0,
            with_reference: true,
        },
        Case {
            n_faults: 500,
            fanout: 6,
            loop_share: 0.3,
            with_reference: false,
        },
        Case {
            n_faults: 1000,
            fanout: 6,
            loop_share: 0.3,
            with_reference: false,
        },
    ];
    let smoke = std::env::var_os("CSNAKE_PERF_SMOKE").is_some();
    if smoke {
        cases.truncate(1);
    }

    let cfg = beam_cfg();
    let mut body = String::new();
    writeln!(body, "{{").unwrap();
    writeln!(body, "  \"generated_by\": \"beam_perf\",").unwrap();
    writeln!(body, "  \"samples_per_stage\": {SAMPLES},").unwrap();
    writeln!(
        body,
        "  \"beam_config\": {{\"beam_size\": {}, \"max_len\": {}, \"threads\": {}}},",
        cfg.beam_size, cfg.max_len, cfg.threads
    )
    .unwrap();
    writeln!(body, "  \"cases\": [").unwrap();

    for (i, case) in cases.iter().enumerate() {
        let db = synthetic_db(case.n_faults, case.fanout, case.loop_share);
        eprintln!(
            "case n={} fanout={} loop_share={} ({} edges)",
            case.n_faults,
            case.fanout,
            case.loop_share,
            db.len()
        );

        // Stage 1: database construction (hash-set dedup + per-cause
        // index). Inputs are cloned outside the timed region so the metric
        // tracks CausalDb::push, not CompatState deep copies.
        let mut inputs: Vec<Vec<_>> = (0..SAMPLES).map(|_| db.edges().to_vec()).collect();
        let dedup_ns = median_ns(|| CausalDb::from_edges(inputs.pop().unwrap_or_default()).len());

        // Stage 2: stitch-index compilation (state interning + CSR tables).
        let index_ns = median_ns(|| StitchIndex::build(&db, cfg.threads).len());

        // Stage 3: the indexed beam search on a prebuilt index.
        let index = StitchIndex::build(&db, cfg.threads);
        let search_ns = median_ns(|| index.search(&|_| 0.5, &cfg).len());
        let cycles = index.search(&|_| 0.5, &cfg).len();

        // Reference implementation, where it finishes in sensible time.
        let reference_ns = case
            .with_reference
            .then(|| median_ns(|| beam_search_reference(&db, &|_| 0.5, &cfg).len()));

        writeln!(body, "    {{").unwrap();
        writeln!(body, "      \"n_faults\": {},", case.n_faults).unwrap();
        writeln!(body, "      \"fanout\": {},", case.fanout).unwrap();
        writeln!(body, "      \"loop_share\": {},", case.loop_share).unwrap();
        writeln!(body, "      \"edges\": {},", db.len()).unwrap();
        writeln!(body, "      \"cycles_found\": {cycles},").unwrap();
        writeln!(body, "      \"stages_ns\": {{").unwrap();
        writeln!(body, "        \"db_push_dedup\": {dedup_ns},").unwrap();
        writeln!(body, "        \"index_build\": {index_ns},").unwrap();
        match reference_ns {
            Some(r) => {
                writeln!(body, "        \"search\": {search_ns},").unwrap();
                writeln!(body, "        \"reference_search\": {r}").unwrap();
            }
            None => writeln!(body, "        \"search\": {search_ns}").unwrap(),
        }
        writeln!(body, "      }},").unwrap();
        let total = index_ns + search_ns;
        match reference_ns {
            Some(r) => {
                let speedup = r as f64 / total.max(1) as f64;
                writeln!(
                    body,
                    "      \"speedup_vs_reference_incl_build\": {speedup:.2}"
                )
                .unwrap();
                eprintln!(
                    "  index {:.2} ms + search {:.2} ms vs reference {:.2} ms → {:.1}×",
                    index_ns as f64 / 1e6,
                    search_ns as f64 / 1e6,
                    r as f64 / 1e6,
                    speedup
                );
            }
            None => {
                writeln!(body, "      \"speedup_vs_reference_incl_build\": null").unwrap();
                eprintln!(
                    "  index {:.2} ms + search {:.2} ms",
                    index_ns as f64 / 1e6,
                    search_ns as f64 / 1e6
                );
            }
        }
        let comma = if i + 1 < cases.len() { "," } else { "" };
        writeln!(body, "    }}{comma}").unwrap();
    }
    writeln!(body, "  ]").unwrap();
    writeln!(body, "}}").unwrap();

    // crates/bench → workspace root. Smoke runs write to a separate file
    // so reproducing the CI step locally never clobbers the committed
    // full-scale trajectory artifact.
    let name = if smoke {
        "BENCH_beam.smoke.json"
    } else {
        "BENCH_beam.json"
    };
    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name);
    std::fs::write(&out, body).expect("write beam bench json");
    eprintln!("wrote {}", out.display());
}
