//! Distributed-campaign smoke for CI: coordinator + 2 local workers.
//!
//! Runs the two representative campaigns the chaos smoke uses — the
//! `kafka-isr` corpus scenario and one generated `gen:<seed>` system —
//! in three configurations each:
//!
//! 1. **single**: the plain in-process `Session::run_to_report` baseline;
//! 2. **distributed**: a coordinator sharding the same campaign across
//!    two workers over the wire protocol — the report AND the run
//!    accounting must be Debug-identical to the baseline;
//! 3. **kill-worker**: one of the two workers dies holding a mid-phase
//!    shard — the lease/reassign machinery must land on the identical
//!    report with exactly one worker lost.
//!
//! Gated on `CSNAKE_DAEMON_SMOKE=1` so plain `cargo run` stays inert; CI
//! sets the variable (plus `CSNAKE_STAGE_DEADLINE_S` so a hung stage
//! names itself instead of timing out the job).
//!
//! Run with:
//! `CSNAKE_DAEMON_SMOKE=1 cargo run --release -p csnake-bench --bin daemon_smoke`

use std::process::ExitCode;
use std::sync::Arc;

use csnake_bench::watchdog;
use csnake_core::{DetectConfig, ProgressCollector, Session, ThreePhase};
use csnake_daemon::{run_distributed, DaemonConfig, RunOptions, WorkerOptions};

const GEN_SEED: u64 = 5;
const WORKERS: usize = 2;

fn fast_config() -> DetectConfig {
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800];
    cfg.driver.retry.backoff_base_ms = 1;
    cfg
}

fn single_process(name: &str) -> Result<(String, usize), String> {
    let target = csnake_daemon::targets::resolve(name).map_err(|e| format!("resolve: {e}"))?;
    let mut session = Session::builder(target.as_ref())
        .config(fast_config())
        .build()
        .map_err(|e| format!("build: {e}"))?;
    let report = session
        .run_to_report(&ThreePhase::default())
        .map_err(|e| format!("run_to_report: {e}"))?;
    Ok((format!("{report:?}"), session.runs_executed()))
}

fn distributed(
    name: &str,
    worker_opts: Vec<WorkerOptions>,
    progress: &Arc<ProgressCollector>,
) -> Result<(String, usize), String> {
    let opts = RunOptions {
        daemon: DaemonConfig::default(),
        observer: Some(progress.clone()),
        worker_opts,
        ..RunOptions::default()
    };
    let run = run_distributed(name, fast_config(), WORKERS, opts)
        .map_err(|e| format!("run_distributed: {e}"))?;
    Ok((format!("{:?}", run.report), run.outcome.runs_executed))
}

fn smoke_target(name: &str) -> Result<(), String> {
    let wd = watchdog::guard(&format!("{name}:single"));
    let (baseline, baseline_runs) = single_process(name)?;
    drop(wd);

    let wd = watchdog::guard(&format!("{name}:distributed-{WORKERS}"));
    let progress = Arc::new(ProgressCollector::new());
    let (report, runs) = distributed(name, Vec::new(), &progress)?;
    if report != baseline {
        return Err(format!(
            "{name}: distributed report diverged from single-process"
        ));
    }
    if runs != baseline_runs {
        return Err(format!(
            "{name}: distributed run accounting diverged ({baseline_runs} → {runs})"
        ));
    }
    let snap = progress.snapshot();
    eprintln!(
        "{name}: {WORKERS}-worker campaign identical to single-process ({} shards, {} runs)",
        snap.shards_assigned, runs
    );
    drop(wd);

    let wd = watchdog::guard(&format!("{name}:kill-worker"));
    let progress = Arc::new(ProgressCollector::new());
    // Worker 0 completes one shard, then dies holding its next one.
    let (report, runs) = distributed(
        name,
        vec![WorkerOptions {
            fail_after: Some(1),
            ..WorkerOptions::default()
        }],
        &progress,
    )?;
    if report != baseline {
        return Err(format!("{name}: worker-kill recovery changed the report"));
    }
    if runs != baseline_runs {
        return Err(format!(
            "{name}: worker-kill recovery changed run accounting ({baseline_runs} → {runs})"
        ));
    }
    let snap = progress.snapshot();
    if snap.workers_lost != 1 {
        return Err(format!(
            "{name}: exactly the killed worker should be lost (saw {})",
            snap.workers_lost
        ));
    }
    eprintln!(
        "{name}: worker kill mid-phase recovered identically ({} reassigned, {} runs)",
        snap.shards_reassigned, runs
    );
    drop(wd);
    Ok(())
}

fn main() -> ExitCode {
    if std::env::var_os("CSNAKE_DAEMON_SMOKE").is_none() {
        eprintln!("daemon_smoke: set CSNAKE_DAEMON_SMOKE=1 to run the distributed smoke campaigns");
        return ExitCode::SUCCESS;
    }
    for name in ["kafka-isr", &format!("gen:{GEN_SEED}")] {
        if let Err(e) = smoke_target(name) {
            eprintln!("daemon_smoke: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!("daemon_smoke: all distributed campaigns bit-identical to single-process");
    ExitCode::SUCCESS
}
