//! Ablation: what the §6.2 local compatibility check buys.
//!
//! Runs one mini-HDFS2 campaign, then performs the beam search twice over
//! the same causal database — once with the compatibility check and once
//! stitching on fault identity alone. Without the check, incompatible
//! propagations from mutually-exclusive workload conditions get linked,
//! inflating reported cycles and clusters without adding true positives
//! (the "invalid causal chains" of §2).

use csnake_bench::EvalConfig;
use csnake_core::edge::{CausalDb, CausalEdge, CompatState, EdgeKind};
use csnake_core::{beam_search, build_report, cluster_cycles, BeamConfig, Session, ThreePhase};
use csnake_inject::{FaultId, FnId, Occurrence, TestId};
use csnake_targets::MiniHdfs2;

/// The §2 soundness scenario: `f1 → f2` observed under condition `c1` and
/// `f2 → f1` under `¬c1` (encoded as different local branch traces of the
/// shared fault `f2`). Linking them is unsound.
fn incompatible_conditions_db() -> CausalDb {
    let occ = |f: u32, branch_outcome: bool| {
        CompatState::Occurrences(vec![Occurrence::new(
            [Some(FnId(f)), None],
            vec![(csnake_inject::BranchId(0), branch_outcome)],
        )])
    };
    CausalDb::from_edges(vec![
        CausalEdge {
            cause: FaultId(1),
            effect: FaultId(2),
            kind: EdgeKind::EI,
            test: TestId(0),
            phase: 1,
            cause_state: occ(1, true),
            effect_state: occ(2, true), // f2 under c1
        },
        CausalEdge {
            cause: FaultId(2),
            effect: FaultId(1),
            kind: EdgeKind::EI,
            test: TestId(1),
            phase: 1,
            cause_state: occ(2, false), // f2 under ¬c1
            effect_state: occ(1, true),
        },
    ])
}

fn main() {
    println!("Soundness micro-demonstration (the §2 incompatible-conditions case):");
    let db = incompatible_conditions_db();
    for (name, check) in [("with §6.2 check", true), ("identity-only", false)] {
        let cfg = BeamConfig {
            compatibility_check: check,
            ..BeamConfig::default()
        };
        let n = beam_search(&db, &|_| 0.5, &cfg).len();
        println!("  {name}: {n} cycle(s) reported (sound answer: 0)");
    }
    println!();
    let target = MiniHdfs2::new();
    // The ablation needs the campaign once and the stitcher twice, so it
    // drives the staged session only as far as allocation and runs both
    // beam variants over the session's causal database.
    let dc = EvalConfig::default().detect_config();
    let mut session = Session::builder(&target)
        .config(dc.clone())
        .build()
        .expect("mini-HDFS2 is drivable");
    session.profile().expect("profile stage");
    session
        .allocate(&ThreePhase::new(dc.alloc.clone()))
        .expect("allocation stage");
    let alloc = session.allocation().expect("allocated");
    let sim_of = |f| alloc.sim_score_of(f);

    println!("Ablation of the local compatibility check (mini-HDFS2)");
    println!("| variant | cycles | clusters | TP clusters |");
    println!("|---|---|---|---|");
    for (name, check) in [
        ("with §6.2 check", true),
        ("identity-only stitching", false),
    ] {
        let cfg = BeamConfig {
            compatibility_check: check,
            ..BeamConfig::default()
        };
        let cycles = beam_search(&alloc.db, &sim_of, &cfg);
        let clusters = cluster_cycles(&cycles, &alloc.db, &alloc.cluster_of);
        let report = build_report(&target, alloc, cycles, clusters);
        println!(
            "| {name} | {} | {} | {} |",
            report.cycles.len(),
            report.clusters.len(),
            report.tp_clusters(),
        );
    }
    println!();
    println!(
        "Note: when campaign numbers coincide, every same-fault state pair in\n\
         this run was genuinely compatible (the mini-systems raise each fault\n\
         from a single hook site per request context); the micro-demonstration\n\
         above shows the unsound links the check removes when conditions do\n\
         conflict, as happens at real-system trace diversity."
    );
}
