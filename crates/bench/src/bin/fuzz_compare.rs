//! Regenerates the §8.2.1 comparison with black-box fuzzing
//! (Jepsen on Flink, Blockade on Ozone in the paper).
//!
//! Expected shape: the black-box campaigns find **none** of the seeded
//! self-sustaining cascading failures, while CSnake detects them on the
//! same systems.

use csnake_baselines::{run_blackbox_campaign, BlackboxConfig};
use csnake_bench::{run_csnake, EvalConfig};
use csnake_core::TargetSystem;
use csnake_targets::{MiniFlink, MiniOzone};

fn main() {
    let eval = EvalConfig::default();
    println!("§8.2.1: black-box fuzzing vs CSnake");
    println!("| System | Fuzzer rounds | Fuzzer bugs | CSnake bugs (of seeded) |");
    println!("|---|---|---|---|");
    let targets: Vec<Box<dyn TargetSystem>> =
        vec![Box::new(MiniFlink::new()), Box::new(MiniOzone::new())];
    for target in targets {
        let fuzz = run_blackbox_campaign(target.as_ref(), &BlackboxConfig::default());
        let det = run_csnake(target.as_ref(), &eval);
        println!(
            "| {} | {} | {} | {}/{} |",
            target.name(),
            fuzz.rounds,
            fuzz.bugs_found.len(),
            det.report.matches.len(),
            target.known_bugs().len(),
        );
        if !fuzz.flags_seen.is_empty() {
            eprintln!(
                "[{}] fuzzer oracle flags: {:?}",
                target.name(),
                fuzz.flags_seen
            );
        }
    }
}
