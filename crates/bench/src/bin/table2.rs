//! Regenerates Table 2: injection points, monitor points and integration
//! tests per system.
//!
//! Paper columns: Loop | Exception | Negation | Branch | Test. The absolute
//! counts are orders of magnitude smaller than real HDFS/HBase (these are
//! miniature reimplementations); the *shape* — every system contributing
//! all three fault classes plus branch monitors, with exceptions the most
//! numerous class after instrumentation-relevant filtering — is what the
//! reproduction preserves.

use csnake_analyzer::{analyze, AnalysisConfig, CallGraph};
use csnake_targets::all_paper_targets;

fn main() {
    println!("Table 2: instrumentation inventory per system");
    println!(
        "| System | Loop | Exception | Negation | Branch | Test | (active after filters: L/E/N) |"
    );
    println!("|---|---|---|---|---|---|---|");
    for target in all_paper_targets() {
        let reg = target.registry();
        // Static-only view (call graph empty: the conservative analyzer
        // never *adds* loops without dynamic evidence, so counts here are
        // the declared inventory; the pipeline recomputes with profiles).
        let analysis = analyze(&reg, &CallGraph::default(), &AnalysisConfig::default());
        let s = &analysis.stats;
        println!(
            "| {} | {} | {} | {} | {} | {} | {}/{}/{} |",
            target.name(),
            s.loops,
            s.exceptions,
            s.negations,
            s.branches,
            target.tests().len(),
            s.active_loops,
            s.active_exceptions,
            s.active_negations,
        );
    }
}
