//! Regenerates Table 4: cycles reported, distinct cycle clusters and
//! true-positive clusters per system — for an unlimited beam search and for
//! one limited to a single delay injection per cycle (the paper's
//! parenthesised numbers). Limiting delay injections prunes the pure-delay
//! "expected contention" false positives (§8.4.2) while keeping most true
//! positives.
//!
//! Usage: `table4 [--target <name>] [--progress]` — restrict to one
//! system while iterating; `--progress` paints a live collector view of
//! the running campaign to stderr. Names resolve through the
//! generator-aware
//! [`csnake_gen::by_name`]: the hand-coded builtins, every spec in the
//! `scenarios/` corpus, and `gen:<seed>` pseudo-names that synthesize a
//! ground-truthed scenario on the fly; an unknown name exits with the
//! typed error listing all of them instead of panicking.

use std::sync::Arc;
use std::time::Duration;

use csnake_bench::{run_csnake_with, set_current_target, table4_variants, EvalConfig};
use csnake_core::{ProgressCollector, TargetSystem};
use csnake_targets::all_paper_targets;
use csnake_telemetry::LiveProgress;

fn main() {
    let cfg = EvalConfig::default();
    let args: Vec<String> = std::env::args().collect();
    let live = args.iter().any(|a| a == "--progress");
    let targets: Vec<Box<dyn TargetSystem>> =
        match args.iter().position(|a| a == "--target").map(|i| i + 1) {
            Some(i) => {
                let name = args.get(i).expect("--target needs a name");
                match csnake_gen::by_name(name) {
                    Ok(target) => vec![target],
                    Err(e) => {
                        eprintln!("table4: {e}");
                        std::process::exit(2);
                    }
                }
            }
            None => all_paper_targets(),
        };
    println!("Table 4: reported cycles and clustering");
    println!("| System | Cycle | Cluster | TP | (≤1 delay: Cycle | Cluster | TP) |");
    println!("|---|---|---|---|---|");
    for target in targets {
        let target: &'static dyn TargetSystem = Box::leak(target);
        set_current_target(target);
        let progress = Arc::new(ProgressCollector::new());
        let view = live.then(|| LiveProgress::start(progress.clone(), Duration::from_millis(500)));
        let detection = run_csnake_with(target, &cfg, progress.clone());
        drop(view);
        let (unlimited, limited) = table4_variants(&detection);
        println!(
            "| {} | {} | {} | {} | ({} | {} | {}) |",
            target.name(),
            unlimited.cycles,
            unlimited.clusters,
            unlimited.tp,
            limited.cycles,
            limited.clusters,
            limited.tp,
        );
        let expected = detection.report.expected_contention_clusters();
        if expected > 0 {
            eprintln!(
                "[{}] expected-contention clusters (accepted-behaviour FPs): {expected}",
                target.name()
            );
        }
    }
}
