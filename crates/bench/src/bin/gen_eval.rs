//! Corpus evaluation over generated scenarios: writes `BENCH_gen.json`
//! at the repository root with per-shape recall of the planted cycles
//! and per-stage wall-time medians, so successive PRs can track whole-
//! pipeline detection quality on an unbounded, ground-truthed test bed
//! the way `BENCH_beam.json`/`BENCH_campaign.json` track the hot paths.
//!
//! For every seed in the range the harness:
//!
//! 1. expands the seed into a spec (`csnake_gen::generate`, shape family
//!    cycling with the seed), **prints it through the canonical
//!    pretty-printer and reparses the text** — the evaluated target is
//!    always the round-tripped spec, so the text form stays load-bearing;
//! 2. drives the staged `Session` pipeline (profile → 3PA allocate →
//!    stitch → report) with a [`FlightRecorder`] attached — stage wall
//!    times and experiment-latency percentiles come from the recorder's
//!    span journal, not ad-hoc timers;
//! 3. scores the report against the ground truth carried in the spec's
//!    `bug … shape <family>` sidecars — recall = planted bugs matched,
//!    decoys flagged = false-positive clusters;
//! 4. re-runs a random-allocation baseline **on the same profiled
//!    driver** (`Session::engine_mut`): with `cache_injections` on, every
//!    `(fault, test)` combination 3PA already exercised reuses the
//!    recorded injection runs and their `TraceIndex`, and the cache
//!    hit-rate is reported alongside the baseline's recall.
//!
//! Run with `cargo run --release -p csnake-bench --bin gen_eval`
//! (`--count N --seed-start S` to override the range, `--progress` for a
//! live collector view on stderr); set
//! `CSNAKE_GEN_SMOKE=1` for the CI-sized batch, which writes
//! `BENCH_gen.smoke.json` so local runs never clobber the committed
//! artifact. The full run fails (exit 1) if recall for any of the
//! queue/retry/timer families drops below 90%.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use csnake_bench::watchdog;
use csnake_core::{
    beam_search, build_report, cluster_cycles, run_random_allocation_with, CampaignObserver,
    DetectConfig, FanoutObserver, NoopObserver, ProgressCollector, Session, ThreePhase,
};
use csnake_gen::{generate, GenConfig, Shape};
use csnake_scenario::{compile, parse_str, print};
use csnake_telemetry::{
    experiment_latency_samples, FlightRecorder, LatencyHistogram, LiveProgress, MetricsDigest,
};

/// Recall floor enforced (full runs) for the families the acceptance
/// criteria pin.
const ENFORCED_FAMILIES: [Shape; 3] = [Shape::Queue, Shape::Retry, Shape::Timer];
const RECALL_FLOOR: f64 = 0.9;

#[derive(Default, Clone, Copy)]
struct FamilyScore {
    planted: usize,
    detected: usize,
}

impl FamilyScore {
    fn recall(&self) -> f64 {
        if self.planted == 0 {
            1.0
        } else {
            self.detected as f64 / self.planted as f64
        }
    }
}

fn median(mut xs: Vec<u128>) -> u128 {
    if xs.is_empty() {
        return 0;
    }
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// The reduced-but-proven campaign configuration the corpus smoke runs
/// use, plus the injection-run cache for the baseline comparison.
fn eval_config() -> DetectConfig {
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800];
    cfg.driver.cache_injections = true;
    cfg
}

fn main() -> ExitCode {
    let smoke = std::env::var_os("CSNAKE_GEN_SMOKE").is_some();
    let mut count: u64 = if smoke { 8 } else { 60 };
    let mut seed_start: u64 = 0;
    let mut live = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--progress" => live = true,
            "--count" => {
                i += 1;
                count = args
                    .get(i)
                    .expect("--count needs a number")
                    .parse()
                    .unwrap();
            }
            "--seed-start" => {
                i += 1;
                seed_start = args
                    .get(i)
                    .expect("--seed-start needs a number")
                    .parse()
                    .unwrap();
            }
            other => {
                eprintln!("unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let gen_cfg = GenConfig::default();
    let mut scores: BTreeMap<&'static str, FamilyScore> = BTreeMap::new();
    let mut missed: Vec<(u64, String)> = Vec::new();
    let mut profile_ns = Vec::new();
    let mut allocate_ns = Vec::new();
    let mut stitch_ns = Vec::new();
    let mut report_ns = Vec::new();
    let mut latency_samples: Vec<u64> = Vec::new();
    let mut fp_clusters = 0usize;
    let mut expected_contention = 0usize;
    let mut clusters_total = 0usize;
    let mut experiments_total = 0usize;
    let mut campaign_misses = 0usize;
    let mut cache_hits = 0usize;
    let mut cache_misses = 0usize;
    let mut random_planted = 0usize;
    let mut random_detected = 0usize;
    let mut clustering_peak_vectors = 0usize;
    let mut clustering_peak_matrix_bytes = 0u64;
    let mut clustering_peak_sparse_bytes = 0u64;

    let t_all = Instant::now();
    for seed in seed_start..seed_start + count {
        let g = generate(seed, &gen_cfg);
        // The text form is the product under test: evaluate the reparse
        // of the canonical print, never the in-memory AST.
        let text = print(&g.spec);
        let spec = match parse_str(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("gen:{seed}: generated spec does not reparse: {e}");
                return ExitCode::FAILURE;
            }
        };
        assert_eq!(spec, g.spec, "gen:{seed}: round-trip changed the spec");
        let system = match compile(&spec) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("gen:{seed}: generated spec does not compile: {e}");
                return ExitCode::FAILURE;
            }
        };

        let cfg = eval_config();
        let strategy = ThreePhase::new(cfg.alloc.clone());
        let progress = Arc::new(ProgressCollector::new());
        // The flight recorder is the timing source: stage walls come from
        // its span durations, latency percentiles from inter-completion
        // gaps — the same numbers an operator sees in a journal digest.
        let recorder = Arc::new(
            FlightRecorder::builder()
                .build()
                .expect("in-memory recorder"),
        );
        let fanout = Arc::new(FanoutObserver::new(vec![
            progress.clone() as Arc<dyn CampaignObserver>,
            recorder.clone() as Arc<dyn CampaignObserver>,
        ]));
        let view = live
            .then(|| LiveProgress::start(progress.clone(), std::time::Duration::from_millis(500)));
        let mut session = Session::builder(&system)
            .config(cfg.clone())
            .observer(fanout)
            .build()
            .expect("generated targets are drivable");
        let wd = watchdog::guard(&format!("gen:{seed}:profile"));
        session.profile().expect("profile stage");
        drop(wd);
        let wd = watchdog::guard(&format!("gen:{seed}:allocate"));
        session.allocate(&strategy).expect("allocate stage");
        drop(wd);
        let wd = watchdog::guard(&format!("gen:{seed}:stitch"));
        session.stitch().expect("stitch stage");
        drop(wd);
        let wd = watchdog::guard(&format!("gen:{seed}:report"));
        let report = session.report().expect("report stage").clone();
        drop(wd);
        drop(view);

        let records = recorder.records();
        let digest = MetricsDigest::from_records(&records);
        let stage_micros = |name: &str| -> u128 {
            digest
                .stage_wall_micros
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, us)| *us as u128)
                .unwrap_or(0)
        };
        profile_ns.push(stage_micros("profiled") * 1_000);
        allocate_ns.push(stage_micros("allocated") * 1_000);
        stitch_ns.push(stage_micros("stitched") * 1_000);
        report_ns.push(stage_micros("reported") * 1_000);
        latency_samples.extend(experiment_latency_samples(&records));

        // Peak clustering working set across the corpus, from the size
        // counters the allocate stage emitted through the observer.
        let snap = progress.snapshot();
        clustering_peak_vectors = clustering_peak_vectors.max(snap.clustering_peak_vectors);
        clustering_peak_matrix_bytes =
            clustering_peak_matrix_bytes.max(snap.clustering_peak_matrix_bytes);
        clustering_peak_sparse_bytes =
            clustering_peak_sparse_bytes.max(snap.clustering_peak_sparse_bytes);

        // Ground truth comes from the reparsed spec's sidecars.
        let truth = csnake_gen::planted_truth(&spec);
        assert!(!truth.is_empty(), "gen:{seed}: no ground truth in spec");
        for planted in &truth {
            let entry = scores.entry(planted.shape.family()).or_default();
            entry.planted += 1;
            let found = report.matches.iter().any(|m| m.bug.id == planted.bug_id);
            if found {
                entry.detected += 1;
            } else {
                missed.push((seed, planted.bug_id.clone()));
            }
        }
        fp_clusters += report.fp_clusters() - report.expected_contention_clusters();
        expected_contention += report.expected_contention_clusters();
        clusters_total += report.clusters.len();
        experiments_total += report.experiments_run;

        // Random-allocation baseline over the *same* profiled driver: the
        // injection cache turns every revisited combination into a replay.
        // The cache metric is the *baseline's delta* — the 3PA campaign
        // before it sees only fresh combinations and would pin a
        // cumulative rate near 50%.
        let engine = session.engine_mut().expect("profiled session");
        let budget = cfg.alloc.total_budget(engine.analysis.injectable.len());
        let (hits_before, misses_before) = engine.trace_cache_stats();
        campaign_misses += misses_before;
        let rand_alloc = run_random_allocation_with(engine, budget, 0x7777 ^ seed, &NoopObserver);
        let (hits_after, misses_after) = engine.trace_cache_stats();
        let (hits, misses) = (hits_after - hits_before, misses_after - misses_before);
        cache_hits += hits;
        cache_misses += misses;
        let sim_of = |f| rand_alloc.sim_score_of(f);
        let rand_cycles = beam_search(&rand_alloc.db, &sim_of, &cfg.beam);
        let rand_clusters = cluster_cycles(&rand_cycles, &rand_alloc.db, &rand_alloc.cluster_of);
        let rand_report = build_report(&system, &rand_alloc, rand_cycles, rand_clusters);
        for planted in &truth {
            random_planted += 1;
            if rand_report
                .matches
                .iter()
                .any(|m| m.bug.id == planted.bug_id)
            {
                random_detected += 1;
            }
        }

        eprintln!(
            "gen:{seed} [{}] {} — {} experiments, {} edges, baseline cache {hits}h/{misses}m",
            g.shape,
            if report.undetected.is_empty() {
                "detected"
            } else {
                "MISSED"
            },
            report.experiments_run,
            report.edge_count,
        );
    }
    let elapsed = t_all.elapsed();

    let overall_planted: usize = scores.values().map(|s| s.planted).sum();
    let overall_detected: usize = scores.values().map(|s| s.detected).sum();
    let overall_recall = if overall_planted == 0 {
        1.0
    } else {
        overall_detected as f64 / overall_planted as f64
    };
    let cache_total = cache_hits + cache_misses;
    let hit_rate = if cache_total == 0 {
        0.0
    } else {
        cache_hits as f64 / cache_total as f64
    };
    let random_recall = if random_planted == 0 {
        1.0
    } else {
        random_detected as f64 / random_planted as f64
    };

    let mut body = String::new();
    writeln!(body, "{{").unwrap();
    writeln!(body, "  \"generated_by\": \"gen_eval\",").unwrap();
    writeln!(body, "  \"smoke\": {smoke},").unwrap();
    writeln!(body, "  \"seed_start\": {seed_start},").unwrap();
    writeln!(body, "  \"count\": {count},").unwrap();
    // Stamp the configuration actually used, not a transcription of it.
    let stamped = eval_config();
    writeln!(body, "  \"config\": {{").unwrap();
    writeln!(body, "    \"reps\": {},", stamped.driver.reps).unwrap();
    writeln!(
        body,
        "    \"delay_values_ms\": {:?},",
        stamped.driver.delay_values_ms
    )
    .unwrap();
    writeln!(
        body,
        "    \"budget_per_fault\": {},",
        stamped.alloc.budget_per_fault
    )
    .unwrap();
    writeln!(
        body,
        "    \"cache_injections\": {}",
        stamped.driver.cache_injections
    )
    .unwrap();
    writeln!(body, "  }},").unwrap();
    writeln!(body, "  \"recall_by_shape\": {{").unwrap();
    let n_fams = scores.len();
    for (i, (family, s)) in scores.iter().enumerate() {
        writeln!(
            body,
            "    \"{family}\": {{ \"planted\": {}, \"detected\": {}, \"recall\": {:.4} }}{}",
            s.planted,
            s.detected,
            s.recall(),
            if i + 1 < n_fams { "," } else { "" }
        )
        .unwrap();
    }
    writeln!(body, "  }},").unwrap();
    writeln!(
        body,
        "  \"overall\": {{ \"planted\": {overall_planted}, \"detected\": {overall_detected}, \"recall\": {overall_recall:.4} }},"
    )
    .unwrap();
    writeln!(body, "  \"decoys\": {{").unwrap();
    writeln!(body, "    \"clusters_total\": {clusters_total},").unwrap();
    writeln!(body, "    \"false_positive_clusters\": {fp_clusters},").unwrap();
    writeln!(
        body,
        "    \"expected_contention_clusters\": {expected_contention}"
    )
    .unwrap();
    writeln!(body, "  }},").unwrap();
    writeln!(body, "  \"timing_source\": \"flight_recorder\",").unwrap();
    writeln!(body, "  \"stage_medians_ns\": {{").unwrap();
    writeln!(body, "    \"profile\": {},", median(profile_ns)).unwrap();
    writeln!(body, "    \"allocate\": {},", median(allocate_ns)).unwrap();
    writeln!(body, "    \"stitch\": {},", median(stitch_ns)).unwrap();
    writeln!(body, "    \"report\": {}", median(report_ns)).unwrap();
    writeln!(body, "  }},").unwrap();
    let latency = LatencyHistogram::from_samples(latency_samples);
    writeln!(body, "  \"experiment_latency_micros\": {{").unwrap();
    writeln!(body, "    \"samples\": {},", latency.count).unwrap();
    writeln!(body, "    \"p50\": {},", latency.p50_micros).unwrap();
    writeln!(body, "    \"p90\": {},", latency.p90_micros).unwrap();
    writeln!(body, "    \"p99\": {},", latency.p99_micros).unwrap();
    writeln!(body, "    \"max\": {}", latency.max_micros).unwrap();
    writeln!(body, "  }},").unwrap();
    writeln!(body, "  \"experiments_total\": {experiments_total},").unwrap();
    writeln!(body, "  \"random_baseline\": {{").unwrap();
    writeln!(
        body,
        "    \"recall\": {random_recall:.4}, \"planted\": {random_planted}, \"detected\": {random_detected}"
    )
    .unwrap();
    writeln!(body, "  }},").unwrap();
    writeln!(body, "  \"clustering_memory\": {{").unwrap();
    writeln!(body, "    \"peak_vectors\": {clustering_peak_vectors},").unwrap();
    writeln!(
        body,
        "    \"peak_matrix_bytes_avoided\": {clustering_peak_matrix_bytes},"
    )
    .unwrap();
    writeln!(
        body,
        "    \"peak_sparse_graph_bytes\": {clustering_peak_sparse_bytes}"
    )
    .unwrap();
    writeln!(body, "  }},").unwrap();
    writeln!(body, "  \"trace_index_cache\": {{").unwrap();
    writeln!(body, "    \"campaign_misses\": {campaign_misses},").unwrap();
    writeln!(body, "    \"baseline_hits\": {cache_hits},").unwrap();
    writeln!(body, "    \"baseline_misses\": {cache_misses},").unwrap();
    writeln!(body, "    \"baseline_hit_rate\": {hit_rate:.4}").unwrap();
    writeln!(body, "  }},").unwrap();
    writeln!(body, "  \"wall_time_ms\": {}", elapsed.as_millis()).unwrap();
    writeln!(body, "}}").unwrap();

    // crates/bench → workspace root. Smoke runs write to a separate file
    // so reproducing the CI step locally never clobbers the committed
    // full-scale artifact.
    let name = if smoke {
        "BENCH_gen.smoke.json"
    } else {
        "BENCH_gen.json"
    };
    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name);
    std::fs::write(&out, body).expect("write gen bench json");
    eprintln!(
        "wrote {} — overall recall {overall_detected}/{overall_planted}, \
         baseline cache hit rate {:.0}%, random baseline {random_detected}/{random_planted}",
        out.display(),
        hit_rate * 100.0
    );
    if !missed.is_empty() {
        eprintln!("missed planted cycles: {missed:?}");
    }

    if !smoke {
        for family in ENFORCED_FAMILIES {
            let s = scores.get(family.family()).copied().unwrap_or_default();
            if s.planted > 0 && s.recall() < RECALL_FLOOR {
                eprintln!(
                    "recall floor violated: {} = {:.2} < {RECALL_FLOOR}",
                    family.family(),
                    s.recall()
                );
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
