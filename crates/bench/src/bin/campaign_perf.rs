//! Campaign-pipeline performance trajectory: writes `BENCH_campaign.json`
//! at the repository root with median wall-times per campaign stage
//! (profile indexing, injection-run generation, indexed FCA, reference
//! FCA, phase-one clustering), so successive PRs can track the analysis
//! hot path the way `BENCH_beam.json` tracks the search.
//!
//! The indexed FCA figure **includes every index build** (the per-test
//! `ProfileIndex` and the per-experiment `TraceIndex`), so the reported
//! speedup is end-to-end honest. Outcome equivalence against
//! `analyze_experiment_reference` is asserted over the whole campaign, and
//! nearest-neighbor-chain clustering is verified against the retained
//! O(n³) reference at a small scale before the full-size run.
//!
//! Run with `cargo run --release -p csnake-bench --bin campaign_perf`;
//! set `CSNAKE_PERF_SMOKE=1` for the CI-sized campaign.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use csnake_bench::campaign::{CampaignSpec, SyntheticCampaign};
use csnake_core::cluster::{hierarchical_cluster, hierarchical_cluster_reference};
use csnake_core::fca::{analyze_experiment_indexed, analyze_experiment_reference, ProfileIndex};
use csnake_core::idf::{IdfVectorizer, SparseVec};
use csnake_core::{ExperimentOutcome, FcaConfig};
use csnake_inject::{FaultId, TestId};

const SAMPLES: usize = 5;
const CLUSTER_THRESHOLD: f64 = 0.5;
const CLUSTER_REFERENCE_N: usize = 300;

fn median(mut xs: Vec<u128>) -> u128 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn main() {
    let smoke = std::env::var_os("CSNAKE_PERF_SMOKE").is_some();
    let spec = if smoke {
        CampaignSpec::smoke()
    } else {
        CampaignSpec::full()
    };
    let campaign = SyntheticCampaign::generate(&spec);
    let registry = campaign.registry().clone();
    let tests = campaign.tests();
    let experiments: Vec<(FaultId, TestId)> = campaign
        .faults()
        .iter()
        .flat_map(|&f| tests.iter().map(move |&t| (f, t)))
        .collect();
    let cfg = FcaConfig::default();
    eprintln!(
        "campaign: {} points, {} faults × {} tests = {} experiments, {} reps{}",
        registry.points().len(),
        campaign.faults().len(),
        tests.len(),
        experiments.len(),
        spec.reps,
        if smoke { " (smoke)" } else { "" }
    );

    // Stage 1: profile runs + per-test profile indexing (shared by every
    // experiment on the test).
    let mut profile_ns = Vec::with_capacity(SAMPLES);
    let mut profiles: Vec<Vec<csnake_inject::RunTrace>> = Vec::new();
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        profiles = tests.iter().map(|&t| campaign.profile_traces(t)).collect();
        let idx: Vec<ProfileIndex> = profiles
            .iter()
            .map(|tr| ProfileIndex::build(&registry, tr))
            .collect();
        std::hint::black_box(idx);
        profile_ns.push(t0.elapsed().as_nanos());
    }
    let profile_ns = median(profile_ns);

    // Stage 2: injection-run generation for the whole campaign (the
    // simulated "run the workloads" cost; regenerated per experiment so
    // the campaign never holds all traces at once).
    let mut injection_ns = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        let mut total_runs = 0usize;
        for &(f, t) in &experiments {
            total_runs += campaign.injection_traces(f, t).len();
        }
        std::hint::black_box(total_runs);
        injection_ns.push(t0.elapsed().as_nanos());
    }
    let injection_ns = median(injection_ns);

    // Stage 3: indexed FCA over the whole campaign, timing only analysis
    // (per-experiment TraceIndex build + edge extraction) plus the
    // ProfileIndex builds — trace generation is excluded on both paths, so
    // the comparison isolates the analysis.
    let mut fca_indexed_ns = Vec::with_capacity(SAMPLES);
    let mut outcomes: Vec<ExperimentOutcome> = Vec::new();
    for sample in 0..SAMPLES {
        let mut spent = Duration::ZERO;
        let t0 = Instant::now();
        let idx: Vec<ProfileIndex> = profiles
            .iter()
            .map(|tr| ProfileIndex::build(&registry, tr))
            .collect();
        spent += t0.elapsed();
        let mut outs = Vec::with_capacity(experiments.len());
        for &(f, t) in &experiments {
            let traces = campaign.injection_traces(f, t);
            let plan = campaign.plan_for(f);
            let t1 = Instant::now();
            let out = analyze_experiment_indexed(
                &registry,
                &idx[t.0 as usize],
                &traces,
                plan,
                t,
                1,
                &cfg,
            );
            spent += t1.elapsed();
            outs.push(out);
        }
        fca_indexed_ns.push(spent.as_nanos());
        if sample == 0 {
            outcomes = outs;
        }
    }
    let fca_indexed_ns = median(fca_indexed_ns);

    // Stage 4: the reference FCA path on identical inputs, with a
    // campaign-wide outcome-equivalence assertion on the first sample.
    let mut fca_reference_ns = Vec::with_capacity(SAMPLES);
    for sample in 0..SAMPLES {
        let mut spent = Duration::ZERO;
        for (i, &(f, t)) in experiments.iter().enumerate() {
            let traces = campaign.injection_traces(f, t);
            let plan = campaign.plan_for(f);
            let t1 = Instant::now();
            let out = analyze_experiment_reference(
                &registry,
                &profiles[t.0 as usize],
                &traces,
                plan,
                t,
                1,
                &cfg,
            );
            spent += t1.elapsed();
            if sample == 0 {
                assert_eq!(
                    out, outcomes[i],
                    "indexed FCA diverged from reference at experiment {i} ({f}, {t})"
                );
            }
        }
        fca_reference_ns.push(spent.as_nanos());
    }
    let fca_reference_ns = median(fca_reference_ns);
    let fca_speedup = fca_reference_ns as f64 / fca_indexed_ns.max(1) as f64;
    let total_edges: usize = outcomes.iter().map(|o| o.edges.len()).sum();
    eprintln!(
        "fca: indexed {:.2} ms vs reference {:.2} ms → {:.1}× ({} edges, outcomes verified equal)",
        fca_indexed_ns as f64 / 1e6,
        fca_reference_ns as f64 / 1e6,
        fca_speedup,
        total_edges
    );

    // Stage 5: phase-one clustering over every experiment's interference
    // vector (the 3PA §5.2 shape, at campaign scale). Reference
    // equivalence is checked on a prefix the O(n³) rescan can afford.
    let docs: Vec<BTreeSet<FaultId>> = outcomes.iter().map(|o| o.interference.clone()).collect();
    let idf = IdfVectorizer::fit(&docs);
    let vectors: Vec<SparseVec> = docs.iter().map(|d| idf.vectorize(d)).collect();
    let small = &vectors[..CLUSTER_REFERENCE_N.min(vectors.len())];
    let mut cluster_ref_small_ns = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        let c = hierarchical_cluster_reference(small, CLUSTER_THRESHOLD);
        cluster_ref_small_ns.push(t0.elapsed().as_nanos());
        std::hint::black_box(c);
    }
    let cluster_ref_small_ns = median(cluster_ref_small_ns);
    assert_eq!(
        hierarchical_cluster(small, CLUSTER_THRESHOLD),
        hierarchical_cluster_reference(small, CLUSTER_THRESHOLD),
        "nearest-neighbor-chain clustering diverged from the reference"
    );
    let mut cluster_ns = Vec::with_capacity(SAMPLES);
    let mut n_clusters = 0usize;
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        let c = hierarchical_cluster(&vectors, CLUSTER_THRESHOLD);
        cluster_ns.push(t0.elapsed().as_nanos());
        n_clusters = c.n_clusters;
    }
    let cluster_ns = median(cluster_ns);
    eprintln!(
        "clustering: {} vectors → {} clusters in {:.2} ms (nn-chain; reference verified at n={})",
        vectors.len(),
        n_clusters,
        cluster_ns as f64 / 1e6,
        small.len()
    );

    let mut body = String::new();
    writeln!(body, "{{").unwrap();
    writeln!(body, "  \"generated_by\": \"campaign_perf\",").unwrap();
    writeln!(body, "  \"smoke\": {smoke},").unwrap();
    writeln!(body, "  \"samples_per_stage\": {SAMPLES},").unwrap();
    writeln!(body, "  \"campaign\": {{").unwrap();
    writeln!(
        body,
        "    \"registry_points\": {},",
        registry.points().len()
    )
    .unwrap();
    writeln!(body, "    \"faults\": {},", campaign.faults().len()).unwrap();
    writeln!(body, "    \"tests\": {},", tests.len()).unwrap();
    writeln!(body, "    \"experiments\": {},", experiments.len()).unwrap();
    writeln!(body, "    \"reps\": {},", spec.reps).unwrap();
    writeln!(body, "    \"edges_found\": {total_edges}").unwrap();
    writeln!(body, "  }},").unwrap();
    writeln!(body, "  \"stages_ns\": {{").unwrap();
    writeln!(body, "    \"profile\": {profile_ns},").unwrap();
    writeln!(body, "    \"injection\": {injection_ns},").unwrap();
    writeln!(
        body,
        "    \"fca_indexed_incl_index_build\": {fca_indexed_ns},"
    )
    .unwrap();
    writeln!(body, "    \"fca_reference\": {fca_reference_ns},").unwrap();
    writeln!(body, "    \"clustering_nn_chain\": {cluster_ns},").unwrap();
    writeln!(
        body,
        "    \"clustering_reference_small\": {cluster_ref_small_ns}"
    )
    .unwrap();
    writeln!(body, "  }},").unwrap();
    writeln!(body, "  \"clustering\": {{").unwrap();
    writeln!(body, "    \"vectors\": {},", vectors.len()).unwrap();
    writeln!(body, "    \"clusters\": {n_clusters},").unwrap();
    writeln!(body, "    \"threshold\": {CLUSTER_THRESHOLD},").unwrap();
    writeln!(
        body,
        "    \"reference_equivalence_verified_at\": {}",
        small.len()
    )
    .unwrap();
    writeln!(body, "  }},").unwrap();
    writeln!(
        body,
        "  \"fca_outcome_equivalence\": \"verified_full_campaign\","
    )
    .unwrap();
    writeln!(body, "  \"fca_speedup_vs_reference\": {fca_speedup:.2}").unwrap();
    writeln!(body, "}}").unwrap();

    // crates/bench → workspace root. Smoke runs write to a separate file
    // so reproducing the CI step locally never clobbers the committed
    // full-scale trajectory artifact.
    let name = if smoke {
        "BENCH_campaign.smoke.json"
    } else {
        "BENCH_campaign.json"
    };
    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name);
    std::fs::write(&out, body).expect("write campaign bench json");
    eprintln!("wrote {}", out.display());
}
