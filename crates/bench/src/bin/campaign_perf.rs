//! Campaign-pipeline performance trajectory: writes `BENCH_campaign.json`
//! at the repository root with median wall-times per campaign stage
//! (profile indexing, injection-run generation, indexed FCA, reference
//! FCA, phase-one clustering), so successive PRs can track the analysis
//! hot path the way `BENCH_beam.json` tracks the search.
//!
//! The indexed FCA figure **includes every index build** (the per-test
//! `ProfileIndex` and the per-experiment `TraceIndex`), so the reported
//! speedup is end-to-end honest. Outcome equivalence against
//! `analyze_experiment_reference` is asserted over the whole campaign,
//! sparse clustering is verified against the retained O(n³) reference on
//! the **full** campaign vector set (the reference left the hot path, so
//! it can afford one full-size run), and the large-n clustering cases —
//! scales a dense pairwise matrix could not reach — are checked against
//! the §5.2 cut-quality bounds plus the matrix-vs-sparse-graph byte
//! comparison, all recorded in the artifact.
//!
//! Run with `cargo run --release -p csnake-bench --bin campaign_perf`;
//! set `CSNAKE_PERF_SMOKE=1` for the CI-sized campaign.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use csnake_bench::campaign::{
    hot_dimension_vectors, synthetic_vectors, CampaignSpec, SyntheticCampaign,
};
use csnake_bench::watchdog;
use csnake_core::cluster::{
    hierarchical_cluster, hierarchical_cluster_reference, hierarchical_cluster_with_stats,
    verify_cut_quality,
};
use csnake_core::fca::{analyze_experiment_indexed, analyze_experiment_reference, ProfileIndex};
use csnake_core::idf::{IdfVectorizer, SparseVec};
use csnake_core::{ExperimentOutcome, FcaConfig};
use csnake_inject::{FaultId, TestId};

const SAMPLES: usize = 5;
const CLUSTER_THRESHOLD: f64 = 0.5;
/// The timed reference stage stays at this prefix size (its key has been
/// tracked since the artifact's introduction); the *equivalence check*
/// runs on the full vector set.
const CLUSTER_REFERENCE_TIMED_N: usize = 300;
/// Large-n clustering cases: scales where the dense `8·n²`-byte matrix
/// would not fit (50k vectors ⇒ 20 GB, 200k ⇒ 320 GB).
const CLUSTER_LARGE_FULL: &[usize] = &[50_000, 200_000];
const CLUSTER_LARGE_SMOKE: &[usize] = &[10_000];
const CLUSTER_LARGE_SEED: u64 = 0x5EED_C10C;

fn median(mut xs: Vec<u128>) -> u128 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn main() {
    let smoke = std::env::var_os("CSNAKE_PERF_SMOKE").is_some();
    let spec = if smoke {
        CampaignSpec::smoke()
    } else {
        CampaignSpec::full()
    };
    let campaign = SyntheticCampaign::generate(&spec);
    let registry = campaign.registry().clone();
    let tests = campaign.tests();
    let experiments: Vec<(FaultId, TestId)> = campaign
        .faults()
        .iter()
        .flat_map(|&f| tests.iter().map(move |&t| (f, t)))
        .collect();
    let cfg = FcaConfig::default();
    eprintln!(
        "campaign: {} points, {} faults × {} tests = {} experiments, {} reps{}",
        registry.points().len(),
        campaign.faults().len(),
        tests.len(),
        experiments.len(),
        spec.reps,
        if smoke { " (smoke)" } else { "" }
    );

    // Stage 1: profile runs + per-test profile indexing (shared by every
    // experiment on the test).
    let wd = watchdog::guard("campaign:profile");
    let mut profile_ns = Vec::with_capacity(SAMPLES);
    let mut profiles: Vec<Vec<csnake_inject::RunTrace>> = Vec::new();
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        profiles = tests.iter().map(|&t| campaign.profile_traces(t)).collect();
        let idx: Vec<ProfileIndex> = profiles
            .iter()
            .map(|tr| ProfileIndex::build(&registry, tr))
            .collect();
        std::hint::black_box(idx);
        profile_ns.push(t0.elapsed().as_nanos());
    }
    let profile_ns = median(profile_ns);

    drop(wd);
    let wd = watchdog::guard("campaign:injection");

    // Stage 2: injection-run generation for the whole campaign (the
    // simulated "run the workloads" cost; regenerated per experiment so
    // the campaign never holds all traces at once).
    let mut injection_ns = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        let mut total_runs = 0usize;
        for &(f, t) in &experiments {
            total_runs += campaign.injection_traces(f, t).len();
        }
        std::hint::black_box(total_runs);
        injection_ns.push(t0.elapsed().as_nanos());
    }
    let injection_ns = median(injection_ns);

    drop(wd);
    let wd = watchdog::guard("campaign:fca-indexed");

    // Stage 3: indexed FCA over the whole campaign, timing only analysis
    // (per-experiment TraceIndex build + edge extraction) plus the
    // ProfileIndex builds — trace generation is excluded on both paths, so
    // the comparison isolates the analysis.
    let mut fca_indexed_ns = Vec::with_capacity(SAMPLES);
    let mut outcomes: Vec<ExperimentOutcome> = Vec::new();
    for sample in 0..SAMPLES {
        let mut spent = Duration::ZERO;
        let t0 = Instant::now();
        let idx: Vec<ProfileIndex> = profiles
            .iter()
            .map(|tr| ProfileIndex::build(&registry, tr))
            .collect();
        spent += t0.elapsed();
        let mut outs = Vec::with_capacity(experiments.len());
        for &(f, t) in &experiments {
            let traces = campaign.injection_traces(f, t);
            let plan = campaign.plan_for(f);
            let t1 = Instant::now();
            let out = analyze_experiment_indexed(
                &registry,
                &idx[t.0 as usize],
                &traces,
                plan,
                t,
                1,
                &cfg,
            );
            spent += t1.elapsed();
            outs.push(out);
        }
        fca_indexed_ns.push(spent.as_nanos());
        if sample == 0 {
            outcomes = outs;
        }
    }
    let fca_indexed_ns = median(fca_indexed_ns);

    drop(wd);
    let wd = watchdog::guard("campaign:fca-reference");

    // Stage 4: the reference FCA path on identical inputs, with a
    // campaign-wide outcome-equivalence assertion on the first sample.
    let mut fca_reference_ns = Vec::with_capacity(SAMPLES);
    for sample in 0..SAMPLES {
        let mut spent = Duration::ZERO;
        for (i, &(f, t)) in experiments.iter().enumerate() {
            let traces = campaign.injection_traces(f, t);
            let plan = campaign.plan_for(f);
            let t1 = Instant::now();
            let out = analyze_experiment_reference(
                &registry,
                &profiles[t.0 as usize],
                &traces,
                plan,
                t,
                1,
                &cfg,
            );
            spent += t1.elapsed();
            if sample == 0 {
                assert_eq!(
                    out, outcomes[i],
                    "indexed FCA diverged from reference at experiment {i} ({f}, {t})"
                );
            }
        }
        fca_reference_ns.push(spent.as_nanos());
    }
    let fca_reference_ns = median(fca_reference_ns);
    let fca_speedup = fca_reference_ns as f64 / fca_indexed_ns.max(1) as f64;
    let total_edges: usize = outcomes.iter().map(|o| o.edges.len()).sum();
    eprintln!(
        "fca: indexed {:.2} ms vs reference {:.2} ms → {:.1}× ({} edges, outcomes verified equal)",
        fca_indexed_ns as f64 / 1e6,
        fca_reference_ns as f64 / 1e6,
        fca_speedup,
        total_edges
    );

    drop(wd);
    let wd = watchdog::guard("campaign:clustering");

    // Stage 5: phase-one clustering over every experiment's interference
    // vector (the 3PA §5.2 shape, at campaign scale). The timed reference
    // stage keeps its historical prefix size; equivalence is asserted on
    // the FULL vector set — the O(n³) reference left the hot path, so one
    // full-size run per bench invocation is affordable.
    let docs: Vec<BTreeSet<FaultId>> = outcomes.iter().map(|o| o.interference.clone()).collect();
    let idf = IdfVectorizer::fit(&docs);
    let vectors: Vec<SparseVec> = docs.iter().map(|d| idf.vectorize(d)).collect();
    let small = &vectors[..CLUSTER_REFERENCE_TIMED_N.min(vectors.len())];
    let mut cluster_ref_small_ns = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        let c = hierarchical_cluster_reference(small, CLUSTER_THRESHOLD);
        cluster_ref_small_ns.push(t0.elapsed().as_nanos());
        std::hint::black_box(c);
    }
    let cluster_ref_small_ns = median(cluster_ref_small_ns);
    assert_eq!(
        hierarchical_cluster(&vectors, CLUSTER_THRESHOLD),
        hierarchical_cluster_reference(&vectors, CLUSTER_THRESHOLD),
        "sparse clustering diverged from the reference on the full campaign"
    );
    let reference_equivalence_verified_at = vectors.len();
    let mut cluster_ns = Vec::with_capacity(SAMPLES);
    let mut n_clusters = 0usize;
    let mut cluster_stats = Default::default();
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        let (c, stats) = hierarchical_cluster_with_stats(&vectors, CLUSTER_THRESHOLD);
        cluster_ns.push(t0.elapsed().as_nanos());
        n_clusters = c.n_clusters;
        cluster_stats = stats;
    }
    let cluster_ns = median(cluster_ns);
    eprintln!(
        "clustering: {} vectors → {} clusters in {:.2} ms (sparse: {} groups, {} candidate edges; reference verified at n={})",
        vectors.len(),
        n_clusters,
        cluster_ns as f64 / 1e6,
        cluster_stats.groups,
        cluster_stats.candidate_edges,
        reference_equivalence_verified_at
    );

    drop(wd);
    let wd = watchdog::guard("campaign:clustering-large");

    // Stage 6: large-n clustering — the scales the dense matrix could not
    // reach. One sample per case (the cases dominate bench wall-time);
    // each cut is checked against the §5.2 cut-quality bounds.
    struct LargeCase {
        n: usize,
        ns: u128,
        clusters: usize,
        stats: csnake_core::ClusterStats,
    }
    let large_ns_cases = if smoke {
        CLUSTER_LARGE_SMOKE
    } else {
        CLUSTER_LARGE_FULL
    };
    let mut large_cases: Vec<LargeCase> = Vec::new();
    for &n in large_ns_cases {
        let big = synthetic_vectors(n, CLUSTER_LARGE_SEED);
        let t0 = Instant::now();
        let (c, stats) = hierarchical_cluster_with_stats(&big, CLUSTER_THRESHOLD);
        let ns = t0.elapsed().as_nanos();
        assert!(
            stats.sparse_graph_bytes < stats.matrix_bytes,
            "sparse working set must undercut the dense matrix at n={n}: {stats:?}"
        );
        verify_cut_quality(&big, &c, CLUSTER_THRESHOLD, 64)
            .unwrap_or_else(|e| panic!("cut-quality violation at n={n}: {e}"));
        eprintln!(
            "clustering_large: {} vectors → {} clusters in {:.1} ms ({} groups, {} edges; sparse {:.1} MB vs matrix {:.1} GB; cut quality verified)",
            n,
            c.n_clusters,
            ns as f64 / 1e6,
            stats.groups,
            stats.candidate_edges,
            stats.sparse_graph_bytes as f64 / 1e6,
            stats.matrix_bytes as f64 / 1e9,
        );
        large_cases.push(LargeCase {
            n,
            ns,
            clusters: c.n_clusters,
            stats,
        });
    }
    drop(wd);
    let wd = watchdog::guard("campaign:clustering-hotdim");

    // Stage 7: the candidate-generation worst case — one near-ubiquitous
    // dimension shared by ~90% of the vectors. Exactness of the capped
    // path is proven against the reference in-tree (`cluster_sparse.rs`);
    // what the bench asserts is the worst-case *bound*: the hot-posting
    // cap must keep the candidate graph far from the hot posting list's
    // square, which is the regression a future change would silently
    // reintroduce.
    let hot_n = if smoke { 20_000 } else { 100_000 };
    let hot_vectors = hot_dimension_vectors(hot_n, CLUSTER_LARGE_SEED);
    let t0 = Instant::now();
    let (hot_cut, hot_stats) = hierarchical_cluster_with_stats(&hot_vectors, CLUSTER_THRESHOLD);
    let hot_ns = t0.elapsed().as_nanos();
    assert!(
        hot_stats.hot_dims >= 1,
        "the shared dimension must trip the default hot cap: {hot_stats:?}"
    );
    let hot_quadratic = hot_stats.groups * hot_stats.groups.saturating_sub(1) / 2;
    assert!(
        hot_stats.candidate_edges < hot_stats.groups * 2,
        "worst case must stay near-linear in groups under the cap: {} edges for {} groups",
        hot_stats.candidate_edges,
        hot_stats.groups
    );
    verify_cut_quality(&hot_vectors, &hot_cut, CLUSTER_THRESHOLD, 64)
        .unwrap_or_else(|e| panic!("hot-dimension cut-quality violation: {e}"));
    eprintln!(
        "clustering_hotdim: {} vectors → {} clusters in {:.1} ms ({} groups, {} hot dims, {} edges vs {} quadratic pairs; cut quality verified)",
        hot_n,
        hot_cut.n_clusters,
        hot_ns as f64 / 1e6,
        hot_stats.groups,
        hot_stats.hot_dims,
        hot_stats.candidate_edges,
        hot_quadratic,
    );
    drop(wd);

    let mut body = String::new();
    writeln!(body, "{{").unwrap();
    writeln!(body, "  \"generated_by\": \"campaign_perf\",").unwrap();
    writeln!(body, "  \"smoke\": {smoke},").unwrap();
    writeln!(body, "  \"samples_per_stage\": {SAMPLES},").unwrap();
    writeln!(body, "  \"campaign\": {{").unwrap();
    writeln!(
        body,
        "    \"registry_points\": {},",
        registry.points().len()
    )
    .unwrap();
    writeln!(body, "    \"faults\": {},", campaign.faults().len()).unwrap();
    writeln!(body, "    \"tests\": {},", tests.len()).unwrap();
    writeln!(body, "    \"experiments\": {},", experiments.len()).unwrap();
    writeln!(body, "    \"reps\": {},", spec.reps).unwrap();
    writeln!(body, "    \"edges_found\": {total_edges}").unwrap();
    writeln!(body, "  }},").unwrap();
    writeln!(body, "  \"stages_ns\": {{").unwrap();
    writeln!(body, "    \"profile\": {profile_ns},").unwrap();
    writeln!(body, "    \"injection\": {injection_ns},").unwrap();
    writeln!(
        body,
        "    \"fca_indexed_incl_index_build\": {fca_indexed_ns},"
    )
    .unwrap();
    writeln!(body, "    \"fca_reference\": {fca_reference_ns},").unwrap();
    writeln!(body, "    \"clustering_sparse\": {cluster_ns},").unwrap();
    writeln!(
        body,
        "    \"clustering_reference_small\": {cluster_ref_small_ns}"
    )
    .unwrap();
    writeln!(body, "  }},").unwrap();
    writeln!(body, "  \"clustering\": {{").unwrap();
    writeln!(body, "    \"vectors\": {},", vectors.len()).unwrap();
    writeln!(body, "    \"clusters\": {n_clusters},").unwrap();
    writeln!(body, "    \"threshold\": {CLUSTER_THRESHOLD},").unwrap();
    writeln!(body, "    \"duplicate_groups\": {},", cluster_stats.groups).unwrap();
    writeln!(
        body,
        "    \"candidate_edges\": {},",
        cluster_stats.candidate_edges
    )
    .unwrap();
    writeln!(
        body,
        "    \"matrix_bytes_avoided\": {},",
        cluster_stats.matrix_bytes
    )
    .unwrap();
    writeln!(
        body,
        "    \"sparse_graph_bytes\": {},",
        cluster_stats.sparse_graph_bytes
    )
    .unwrap();
    writeln!(
        body,
        "    \"reference_equivalence_verified_at\": {reference_equivalence_verified_at},"
    )
    .unwrap();
    writeln!(body, "    \"reference_timed_at\": {}", small.len()).unwrap();
    writeln!(body, "  }},").unwrap();
    writeln!(body, "  \"clustering_large\": [").unwrap();
    for (i, case) in large_cases.iter().enumerate() {
        let comma = if i + 1 < large_cases.len() { "," } else { "" };
        writeln!(body, "    {{").unwrap();
        writeln!(body, "      \"vectors\": {},", case.n).unwrap();
        writeln!(body, "      \"ns\": {},", case.ns).unwrap();
        writeln!(body, "      \"clusters\": {},", case.clusters).unwrap();
        writeln!(body, "      \"duplicate_groups\": {},", case.stats.groups).unwrap();
        writeln!(
            body,
            "      \"candidate_edges\": {},",
            case.stats.candidate_edges
        )
        .unwrap();
        writeln!(
            body,
            "      \"matrix_bytes_avoided\": {},",
            case.stats.matrix_bytes
        )
        .unwrap();
        writeln!(
            body,
            "      \"sparse_graph_bytes\": {},",
            case.stats.sparse_graph_bytes
        )
        .unwrap();
        writeln!(body, "      \"cut_quality\": \"verified\"").unwrap();
        writeln!(body, "    }}{comma}").unwrap();
    }
    writeln!(body, "  ],").unwrap();
    writeln!(body, "  \"clustering_hot_worst_case\": {{").unwrap();
    writeln!(body, "    \"vectors\": {hot_n},").unwrap();
    writeln!(body, "    \"ns\": {hot_ns},").unwrap();
    writeln!(body, "    \"clusters\": {},", hot_cut.n_clusters).unwrap();
    writeln!(body, "    \"duplicate_groups\": {},", hot_stats.groups).unwrap();
    writeln!(body, "    \"hot_dims\": {},", hot_stats.hot_dims).unwrap();
    writeln!(
        body,
        "    \"candidate_edges\": {},",
        hot_stats.candidate_edges
    )
    .unwrap();
    writeln!(body, "    \"quadratic_pairs_avoided\": {hot_quadratic},").unwrap();
    writeln!(body, "    \"cut_quality\": \"verified\"").unwrap();
    writeln!(body, "  }},").unwrap();
    writeln!(
        body,
        "  \"fca_outcome_equivalence\": \"verified_full_campaign\","
    )
    .unwrap();
    writeln!(body, "  \"fca_speedup_vs_reference\": {fca_speedup:.2}").unwrap();
    writeln!(body, "}}").unwrap();

    // crates/bench → workspace root. Smoke runs write to a separate file
    // so reproducing the CI step locally never clobbers the committed
    // full-scale trajectory artifact.
    let name = if smoke {
        "BENCH_campaign.smoke.json"
    } else {
        "BENCH_campaign.json"
    };
    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name);
    std::fs::write(&out, body).expect("write campaign bench json");
    eprintln!("wrote {}", out.display());
}
