//! Regenerates Table 3: the seeded self-sustaining cascading failures per
//! system, with cycle composition (D|E|N), the 3PA phase after which the
//! cycle's relationships were all known ("Alloc."), whether random
//! allocation also finds the bug ("Rnd.?") and whether the naive
//! single-fault strategy triggers it ("Alt.?").
//!
//! Usage: `table3 [--fast]` — `--fast` runs HDFS2, Flink and Ozone only.

use std::sync::Arc;

use csnake_baselines::{run_naive_strategy, NaiveConfig};
use csnake_bench::{run_csnake_with, run_random, EvalConfig};
use csnake_core::ProgressCollector;
use csnake_targets::all_paper_targets;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let cfg = EvalConfig::default();
    println!("Table 3: detected self-sustaining cascading failures");
    println!("| System | Bug | JIRA | Cycle | Alloc. | Rnd.? | Alt.? |");
    println!("|---|---|---|---|---|---|---|");

    let mut total = 0usize;
    let mut found = 0usize;
    for target in all_paper_targets() {
        if fast && (target.name() == "mini-hdfs3" || target.name() == "mini-hbase") {
            continue;
        }
        let progress = Arc::new(ProgressCollector::new());
        let detection = run_csnake_with(target.as_ref(), &cfg, progress.clone());
        let random = run_random(target.as_ref(), &cfg);
        let naive = run_naive_strategy(target.as_ref(), &NaiveConfig::default());

        for bug in target.known_bugs() {
            total += 1;
            let m = detection.report.matches.iter().find(|m| m.bug.id == bug.id);
            let rnd = random.report.matches.iter().any(|m| m.bug.id == bug.id);
            let alt = naive.alt_detected.contains(&bug.id);
            match m {
                Some(m) => {
                    found += 1;
                    println!(
                        "| {} | {} | {} | {} | {} | {} | {} |",
                        target.name(),
                        bug.id,
                        bug.jira,
                        m.composition,
                        m.phase,
                        if rnd { "yes" } else { "no" },
                        if alt { "yes" } else { "no" },
                    );
                }
                None => println!(
                    "| {} | {} | {} | MISSED | - | {} | {} |",
                    target.name(),
                    bug.id,
                    bug.jira,
                    if rnd { "yes" } else { "no" },
                    if alt { "yes" } else { "no" },
                ),
            }
        }
        // Cross-checked two ways: campaign results and the observer's
        // event stream must agree.
        let seen = progress.snapshot();
        assert_eq!(seen.experiments, detection.alloc.experiments_run);
        assert_eq!(seen.edges, detection.alloc.db.len());
        assert_eq!(seen.cycles, detection.report.cycles.len());
        eprintln!(
            "[{}] experiments={} edges={} cycles={} clusters={} runs={} (phases seen: {})",
            target.name(),
            detection.alloc.experiments_run,
            detection.alloc.db.len(),
            detection.report.cycles.len(),
            detection.report.clusters.len(),
            detection.runs_executed,
            seen.phases_finished,
        );
    }
    println!();
    println!("Detected {found} of {total} seeded self-sustaining cascading failures.");
}
