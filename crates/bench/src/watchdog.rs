//! Per-stage deadline watchdog for the evaluation binaries.
//!
//! The table and perf binaries run multi-minute pipelines; when one stage
//! hangs (a livelocked search, a stuck campaign), CI used to time the whole
//! job out with no indication of *where*. The watchdog gives every stage a
//! wall-clock budget: set `CSNAKE_STAGE_DEADLINE_S=<seconds>` and wrap each
//! stage in [`guard`]. If a stage overruns its budget the process prints
//! the stage name to stderr and exits with code 124 (the conventional
//! timeout status), so the CI log names the culprit instead of the job.
//!
//! Without the environment variable the watchdog is fully disarmed: no
//! thread is spawned and [`guard`] is a no-op, so local runs and
//! measurements are unaffected.
//!
//! ```no_run
//! let wd = csnake_bench::watchdog::guard("profile");
//! // ... run the profile stage ...
//! drop(wd); // stage done, deadline cleared
//! ```

use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Process exit code used on deadline overrun (mirrors `timeout(1)`).
pub const EXIT_DEADLINE: i32 = 124;

struct Watchdog {
    budget: Duration,
    /// Stage currently on the clock: name + absolute deadline.
    current: Mutex<Option<(String, Instant)>>,
}

static WATCHDOG: OnceLock<Option<&'static Watchdog>> = OnceLock::new();

fn instance() -> Option<&'static Watchdog> {
    *WATCHDOG.get_or_init(|| {
        let secs: u64 = std::env::var("CSNAKE_STAGE_DEADLINE_S")
            .ok()?
            .parse()
            .ok()?;
        if secs == 0 {
            return None;
        }
        let wd: &'static Watchdog = Box::leak(Box::new(Watchdog {
            budget: Duration::from_secs(secs),
            current: Mutex::new(None),
        }));
        std::thread::Builder::new()
            .name("csnake-stage-watchdog".into())
            .spawn(move || monitor(wd))
            .expect("spawn watchdog thread");
        Some(wd)
    })
}

fn monitor(wd: &'static Watchdog) -> ! {
    loop {
        std::thread::sleep(Duration::from_millis(100));
        let overrun = {
            let current = wd.current.lock().unwrap();
            current
                .as_ref()
                .filter(|(_, deadline)| Instant::now() >= *deadline)
                .map(|(stage, _)| stage.clone())
        };
        if let Some(stage) = overrun {
            eprintln!(
                "watchdog: stage {stage:?} exceeded the {}s deadline (CSNAKE_STAGE_DEADLINE_S)",
                wd.budget.as_secs()
            );
            std::process::exit(EXIT_DEADLINE);
        }
    }
}

/// Puts `stage` on the clock until the returned guard is dropped.
///
/// Stages are exclusive: entering a new stage replaces the previous
/// deadline, so sequential `guard` calls need no explicit `drop` between
/// them (the drop of the old guard after the new call is a no-op for the
/// clock, which already tracks the new stage).
pub fn guard(stage: &str) -> StageGuard {
    let wd = instance();
    if let Some(wd) = wd {
        *wd.current.lock().unwrap() = Some((stage.to_string(), Instant::now() + wd.budget));
    }
    StageGuard {
        wd,
        stage: stage.to_string(),
    }
}

/// Clears the stage deadline on drop (only if this guard's stage is still
/// the one on the clock).
pub struct StageGuard {
    wd: Option<&'static Watchdog>,
    stage: String,
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        if let Some(wd) = self.wd {
            let mut current = wd.current.lock().unwrap();
            if current
                .as_ref()
                .is_some_and(|(name, _)| *name == self.stage)
            {
                *current = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    // The armed path is exercised by the chaos smoke binary (which CI runs
    // with the deadline set); in-process tests can only cover the disarmed
    // default because arming is process-global.
    #[test]
    fn disarmed_guard_is_a_no_op() {
        let g = super::guard("anything");
        drop(g);
        let g1 = super::guard("a");
        let g2 = super::guard("b");
        drop(g1);
        drop(g2);
    }
}
