//! Evaluation harness shared by the table-regenerating binaries.
//!
//! Every table and measurement of the paper's §8 maps to one binary:
//!
//! | paper artifact | binary |
//! |---|---|
//! | Table 2 (injection/monitor points, tests) | `table2` |
//! | Table 3 (15 bugs, cycle composition, Alloc., Rnd.?, Alt.?) | `table3` |
//! | Table 4 (cycles / clusters / TP, unlimited vs ≤ 1 delay) | `table4` |
//! | §8.2.1 fuzzing comparison | `fuzz_compare` |
//! | §8.5 instrumentation overhead | `overhead` |

pub mod campaign;
pub mod watchdog;

use std::sync::Arc;

use csnake_core::{
    BeamConfig, CampaignObserver, DetectConfig, Detection, NoopObserver, RandomAllocation, Session,
    TargetSystem, ThreePhase,
};

/// Evaluation knobs for a full campaign on one target.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Budget multiplier (experiments = multiplier · |F|).
    ///
    /// The paper recommends a *minimum* of 4·|F| (§5.2). The mini-systems
    /// are far denser than real HDFS — almost every workload reaches almost
    /// every fault point, so the (fault, test) space per fault is larger
    /// relative to |F| — and the evaluation default of 12 compensates;
    /// see EXPERIMENTS.md for the sensitivity sweep.
    pub budget_per_fault: usize,
    /// Run repetitions (paper: 5).
    pub reps: usize,
    /// Delay sweep in milliseconds (paper: 7 points, 100 ms – 8 s).
    pub delay_values_ms: Vec<u64>,
    /// Base seed for the campaign.
    pub seed: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            budget_per_fault: 12,
            reps: 3,
            delay_values_ms: vec![800, 3200],
            seed: 0xC5AA5E,
        }
    }
}

impl EvalConfig {
    /// Builds the detector configuration for this evaluation.
    pub fn detect_config(&self) -> DetectConfig {
        let mut cfg = DetectConfig::default();
        cfg.driver.reps = self.reps;
        cfg.driver.delay_values_ms = self.delay_values_ms.clone();
        cfg.driver.base_seed = self.seed;
        cfg.alloc.budget_per_fault = self.budget_per_fault;
        cfg.alloc.seed = self.seed ^ 0x3A;
        cfg
    }
}

/// Runs the full CSnake pipeline on a target.
pub fn run_csnake(target: &dyn TargetSystem, cfg: &EvalConfig) -> Detection {
    run_csnake_with(target, cfg, Arc::new(NoopObserver))
}

/// Runs the full CSnake pipeline as an explicitly staged session, streaming
/// progress to the observer.
pub fn run_csnake_with(
    target: &dyn TargetSystem,
    cfg: &EvalConfig,
    observer: Arc<dyn CampaignObserver>,
) -> Detection {
    let dc = cfg.detect_config();
    let strategy = ThreePhase::new(dc.alloc.clone());
    let mut session = Session::builder(target)
        .config(dc)
        .observer(observer)
        .build()
        .expect("bundled targets are drivable");
    session
        .run_to_report(&strategy)
        .expect("staged pipeline runs in order");
    session.into_detection().expect("session is reported")
}

/// Runs the random-allocation variant (Table 3 "Rnd.?").
pub fn run_random(target: &dyn TargetSystem, cfg: &EvalConfig) -> Detection {
    let dc = cfg.detect_config();
    let strategy = RandomAllocation::new(dc.alloc.clone(), cfg.seed ^ 0x7777);
    let mut session = Session::builder(target)
        .config(dc)
        .build()
        .expect("bundled targets are drivable");
    session
        .run_to_report(&strategy)
        .expect("staged pipeline runs in order");
    session.into_detection().expect("session is reported")
}

/// Runs the beam search twice over an existing causal database: unlimited
/// delay injections vs. at most one (Table 4's two column groups).
pub fn table4_variants(detection: &Detection) -> (Table4Row, Table4Row) {
    let unlimited = Table4Row {
        cycles: detection.report.cycles.len(),
        clusters: detection.report.clusters.len(),
        tp: detection.report.tp_clusters(),
    };
    let sim_of = |f| detection.alloc.sim_score_of(f);
    let cfg = BeamConfig {
        max_delay_injections: Some(1),
        ..BeamConfig::default()
    };
    let cycles = csnake_core::beam_search(&detection.alloc.db, &sim_of, &cfg);
    let clusters =
        csnake_core::cluster_cycles(&cycles, &detection.alloc.db, &detection.alloc.cluster_of);
    // Rebuild verdicts for the limited variant.
    let limited_report = csnake_core::build_report(
        // SAFETY of design: build_report only reads the target's registry,
        // bugs and contention labels.
        detection_target(detection),
        &detection.alloc,
        cycles,
        clusters,
    );
    let limited = Table4Row {
        cycles: limited_report.cycles.len(),
        clusters: limited_report.clusters.len(),
        tp: limited_report.tp_clusters(),
    };
    (unlimited, limited)
}

/// One row of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table4Row {
    /// Cycles reported.
    pub cycles: usize,
    /// Distinct cycle clusters.
    pub clusters: usize,
    /// True-positive clusters.
    pub tp: usize,
}

// `table4_variants` needs the target back; the Detection struct does not
// carry it (trait object lifetimes), so the binaries pass it explicitly via
// this thread-local shim kept deliberately simple.
std::thread_local! {
    static CURRENT_TARGET: std::cell::RefCell<Option<&'static dyn TargetSystem>> =
        const { std::cell::RefCell::new(None) };
}

/// Registers the (leaked) target used by [`table4_variants`].
pub fn set_current_target(t: &'static dyn TargetSystem) {
    CURRENT_TARGET.with(|c| *c.borrow_mut() = Some(t));
}

fn detection_target(_d: &Detection) -> &'static dyn TargetSystem {
    CURRENT_TARGET.with(|c| {
        c.borrow()
            .expect("set_current_target before table4_variants")
    })
}

/// Formats a Markdown-ish table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Synthetic causal-database generator shared by the criterion benchmarks
/// and the `beam_perf` trajectory binary.
///
/// Produces `n_faults · fanout` forward edges on a ring (`c → c+k+1 mod
/// n`) plus one *back edge* (`c+1 → c`) for every [`BACK_EDGE_STRIDE`]-th
/// fault. Forward steps alone can never return to their origin within a
/// bounded chain length on a large ring, which left the search's
/// cycle-emission path cold at n ≥ 500; the back edges close two-edge
/// cycles everywhere, so every case exercises cycle discovery and the
/// structural cycle dedup. `loop_share` ∈ [0, 1] makes that share of
/// faults loop-shaped (delay edges with `LoopState` compatibility states,
/// exercising the merge over stacks + iteration signatures); the rest are
/// occurrence-shaped.
pub fn synthetic_db(n_faults: u32, fanout: u32, loop_share: f64) -> csnake_core::CausalDb {
    use csnake_core::{CausalEdge, CompatState, EdgeKind};
    use csnake_inject::{FaultId, FnId, LoopState, Occurrence, TestId};

    let loop_cut = (loop_share.clamp(0.0, 1.0) * 10.0) as u32;
    let is_loop = |f: u32| f % 10 < loop_cut;
    // One compatibility state per fault (as in the original bench DB):
    // every edge meeting at a fault stitches, which maximises the search
    // space for a given edge count.
    let occ_state =
        |f: u32| CompatState::Occurrences(vec![Occurrence::new([Some(FnId(f)), None], vec![])]);
    let loop_state = |f: u32| {
        let mut st = LoopState::default();
        st.entry_stacks.insert([Some(FnId(f)), None]);
        st.iter_sigs.insert(f as u64 * 10);
        CompatState::Loop(st)
    };
    let state = |f: u32| {
        if is_loop(f) {
            loop_state(f)
        } else {
            occ_state(f)
        }
    };
    let kind_of = |c: u32, e: u32| match (is_loop(c), is_loop(e)) {
        (true, true) => EdgeKind::Icfg,
        (true, false) => EdgeKind::ED,
        (false, true) => EdgeKind::SI,
        (false, false) => EdgeKind::EI,
    };
    let mut edges = Vec::new();
    for c in 0..n_faults {
        for k in 0..fanout {
            let e = (c + k + 1) % n_faults;
            edges.push(CausalEdge {
                cause: FaultId(c),
                effect: FaultId(e),
                kind: kind_of(c, e),
                test: TestId(k),
                phase: 1,
                cause_state: state(c),
                effect_state: state(e),
            });
        }
        // Back edge `c+1 → c` every stride: together with the ring edge
        // `c → c+1` (k = 0, identical per-fault states on both ends) this
        // closes a guaranteed two-edge cycle. A distinct test id keeps the
        // database dedup from ever folding it into a ring edge.
        if n_faults > fanout + 2 && c % BACK_EDGE_STRIDE == 0 {
            let e = (c + 1) % n_faults;
            edges.push(CausalEdge {
                cause: FaultId(e),
                effect: FaultId(c),
                kind: kind_of(e, c),
                test: TestId(fanout),
                phase: 1,
                cause_state: state(e),
                effect_state: state(c),
            });
        }
    }
    csnake_core::CausalDb::from_edges(edges)
}

/// Every how-many-th fault gets a cycle-closing back edge in
/// [`synthetic_db`].
pub const BACK_EDGE_STRIDE: u32 = 16;
