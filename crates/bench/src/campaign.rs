//! Deterministic synthetic campaign generator for the campaign-pipeline
//! benchmarks and equivalence tests.
//!
//! Builds a registry of throw/negation/loop points (with nested/sibling
//! loop metadata, so structural `ICFG`/`CFG` edges occur) and generates
//! profile and injection traces from pure hash functions of
//! `(seed, test, point, run)`. Every call with the same spec regenerates
//! identical traces, so callers can stream experiments without holding a
//! whole campaign's traces in memory, and reference/indexed analyses can
//! be compared on bit-identical inputs.
//!
//! The behaviour model mirrors what FCA sees in a real campaign:
//!
//! * a small share of points occur "naturally" in profile runs (the
//!   counterfactual that suppresses edges);
//! * injected faults trigger a few additional points consistently across
//!   runs (execution-trace interference → `EI`/`ED` edges);
//! * most loops are unaffected by most injections (the batched Welch
//!   test's fast-reject path), while a hash-selected few triple their
//!   iteration counts (`S+` edges, structural propagation).

use std::collections::BTreeSet;
use std::sync::Arc;

use csnake_core::idf::{IdfVectorizer, SparseVec};
use csnake_inject::{
    BoolSource, ExceptionCategory, FaultId, FaultKind, FnId, InjectionPlan, LoopState, Occurrence,
    Registry, RegistryBuilder, RunTrace, TestId,
};
use csnake_sim::VirtualTime;

/// Shape of a synthetic campaign.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Throw points in the registry.
    pub n_throws: u32,
    /// Negation points in the registry.
    pub n_negations: u32,
    /// Loop points in the registry (rounded down to a multiple of 3; loops
    /// come in outer/inner/sibling triples).
    pub n_loops: u32,
    /// Faults actually injected (a deterministic spread over all kinds).
    pub n_faults: u32,
    /// Workloads; every fault is paired with every test.
    pub n_tests: u32,
    /// Run repetitions per experiment side (paper: 5).
    pub reps: usize,
    /// Base seed of the behaviour model.
    pub seed: u64,
}

impl CampaignSpec {
    /// The full-scale default: 200 faults × 10 tests over a ~1600-point
    /// registry — the per-system point counts of the paper's Table 2 are
    /// in the thousands, and the reference path's cost is linear in
    /// registry size while the indexed path's is not.
    pub fn full() -> CampaignSpec {
        CampaignSpec {
            n_throws: 1100,
            n_negations: 380,
            n_loops: 120,
            n_faults: 200,
            n_tests: 10,
            reps: 5,
            seed: 0xCA5C_ADE5,
        }
    }

    /// A smoke-sized campaign for CI.
    pub fn smoke() -> CampaignSpec {
        CampaignSpec {
            n_throws: 60,
            n_negations: 30,
            n_loops: 24,
            n_faults: 40,
            n_tests: 4,
            reps: 3,
            seed: 0xCA5C_ADE5,
        }
    }
}

/// SplitMix64-style stateless mixer; all campaign behaviour derives from
/// hashes of `(seed, dimensions...)`.
fn mix(words: &[u64]) -> u64 {
    let mut z = 0x9E37_79B9_7F4A_7C15u64;
    for &w in words {
        z = z.wrapping_add(w).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
    }
    z
}

/// A generated campaign: registry plus the deterministic behaviour model.
pub struct SyntheticCampaign {
    spec: CampaignSpec,
    registry: Arc<Registry>,
    faults: Vec<FaultId>,
}

impl SyntheticCampaign {
    /// Builds the registry and picks the injected-fault spread.
    pub fn generate(spec: &CampaignSpec) -> SyntheticCampaign {
        let mut b = RegistryBuilder::new("synthetic-campaign");
        let f = b.func("Campaign.run");
        for i in 0..spec.n_throws {
            b.throw_point(
                f,
                i,
                "IOException",
                ExceptionCategory::SystemSpecific,
                "throw",
            );
        }
        for i in 0..spec.n_negations {
            b.negation_point(
                f,
                spec.n_throws + i,
                true,
                BoolSource::ErrorDetector,
                "detector",
            );
        }
        // Loops in (outer, inner, sibling) triples so S+ edges propagate
        // structurally.
        let triples = spec.n_loops / 3;
        for i in 0..triples {
            let line = spec.n_throws + spec.n_negations + i * 3;
            let outer = b.workload_loop(f, line, true, "outer");
            let inner = b.workload_loop(f, line + 1, false, "inner");
            let sibling = b.workload_loop(f, line + 2, false, "sibling");
            b.set_parent(inner, outer);
            b.set_parent(sibling, outer);
            b.set_sibling(inner, sibling);
        }
        let registry = Arc::new(b.build());

        // Injected faults: a fixed-stride spread over the whole registry so
        // throws, negations and loops all appear. The stride is at least
        // `n_points / n_faults`, so the spread spans the full id range
        // (loops live at the top) regardless of registry size.
        let n_points = registry.points().len() as u32;
        let n_faults = spec.n_faults.min(n_points);
        let min_stride = (n_points / n_faults.max(1)).max(7);
        let stride = pick_coprime_stride(n_points, min_stride);
        let faults: Vec<FaultId> = (0..n_faults)
            .map(|i| FaultId((i.wrapping_mul(stride).wrapping_add(1)) % n_points))
            .collect();

        SyntheticCampaign {
            spec: spec.clone(),
            registry,
            faults,
        }
    }

    /// The campaign's registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The injected-fault spread (distinct ids, all kinds represented).
    pub fn faults(&self) -> &[FaultId] {
        &self.faults
    }

    /// The campaign's workloads.
    pub fn tests(&self) -> Vec<TestId> {
        (0..self.spec.n_tests).map(TestId).collect()
    }

    /// The injection plan for a fault (a mid-sweep delay for loops).
    pub fn plan_for(&self, f: FaultId) -> InjectionPlan {
        match self.registry.point(f).kind {
            FaultKind::LoopPoint => InjectionPlan::delay(f, VirtualTime::from_millis(800)),
            FaultKind::Throw | FaultKind::LibCall => InjectionPlan::throw(f),
            FaultKind::Negation => InjectionPlan::negate(f),
        }
    }

    /// Profile runs of one test (no injection).
    pub fn profile_traces(&self, t: TestId) -> Vec<RunTrace> {
        (0..self.spec.reps)
            .map(|rep| self.trace(t, None, rep))
            .collect()
    }

    /// Injection runs of one `(fault, test)` experiment.
    pub fn injection_traces(&self, f: FaultId, t: TestId) -> Vec<RunTrace> {
        (0..self.spec.reps)
            .map(|rep| self.trace(t, Some(f), rep))
            .collect()
    }

    /// One deterministic run trace.
    fn trace(&self, t: TestId, injected: Option<FaultId>, rep: usize) -> RunTrace {
        let seed = self.spec.seed;
        let (tw, rw) = (t.0 as u64, rep as u64);
        let fw = injected.map(|f| f.0 as u64 + 1).unwrap_or(0);
        let mut trace = RunTrace::default();
        for p in self.registry.points() {
            let pw = p.id.0 as u64;
            if p.kind == FaultKind::LoopPoint {
                // Reached in ~60% of (test, loop) pairs; counts are stable
                // across runs up to small jitter; a hash-selected ~8% of
                // (fault, test, loop) triples triple their counts under
                // injection.
                if mix(&[seed, 1, tw, pw]) % 100 >= 60 {
                    continue;
                }
                let base = 40 + mix(&[seed, 2, tw, pw]) % 40;
                let jitter = mix(&[seed, 3, tw, pw, rw]) % 5;
                let boosted = fw != 0 && mix(&[seed, 4, fw, tw, pw]) % 100 < 8;
                let count = if boosted {
                    (base + jitter) * 3
                } else {
                    base + jitter
                };
                trace.loop_counts.insert(p.id, count);
                let mut st = LoopState::default();
                st.entry_stacks
                    .insert([Some(FnId((pw * 3 % 1000) as u32)), None]);
                st.iter_sigs.insert(pw * 10);
                st.iter_sigs.insert(pw * 10 + mix(&[seed, 5, tw, pw]) % 2);
                trace.loop_states.insert(p.id, st);
                trace.coverage.insert(p.id);
                continue;
            }
            // Natural profile occurrence for ~3% of (test, point) pairs,
            // flaking out of ~10% of runs; injected faults trigger an
            // additional ~0.8% of points consistently across runs. Half
            // the faults (even `fw` keys, i.e. odd fault ids — `fw` is
            // the id plus one) interfere identically in every test (the
            // paper's "causally equivalent" stable majority — what
            // phase-one clustering groups); the other half's effects are
            // conditional on the workload.
            let natural =
                mix(&[seed, 6, tw, pw]) % 1000 < 30 && mix(&[seed, 7, tw, pw, rw]) % 100 < 90;
            let effect_key = if fw.is_multiple_of(2) {
                mix(&[seed, 8, fw, pw])
            } else {
                mix(&[seed, 8, fw, tw, pw])
            };
            let caused = fw != 0 && Some(p.id) != injected && effect_key % 1000 < 8;
            if natural || caused {
                let variant = mix(&[seed, 9, tw, pw, rw]) % 2;
                trace
                    .occurrences
                    .entry(p.id)
                    .or_default()
                    .push(Occurrence::new(
                        [Some(FnId((pw * 4 + variant) as u32)), None],
                        vec![],
                    ));
                trace.coverage.insert(p.id);
            }
        }
        if let Some(f) = injected {
            let occ = Occurrence::new([Some(FnId(f.0 * 4)), None], vec![]);
            if self.registry.point(f).kind != FaultKind::LoopPoint {
                trace.occurrences.entry(f).or_default().push(occ.clone());
            }
            trace.injected = Some((f, occ));
            trace.coverage.insert(f);
        }
        trace
    }
}

/// Deterministic interference-vector corpus at arbitrary scale, shaped
/// like a real campaign's §5.2 input: a pool of `max(64, n/32)` distinct
/// interference "templates" over `max(256, n/8)` dimensions, most vectors
/// exact template copies (the duplicate mass sparse clustering
/// pre-groups), ~25% near-duplicates (one mutated dimension — the
/// sub-threshold merges), and ~2% empty interference lists (zero
/// vectors). Vectors go through [`IdfVectorizer`] so weights, norms and
/// stop-word suppression match the campaign pipeline bit-for-bit.
pub fn synthetic_vectors(n: usize, seed: u64) -> Vec<SparseVec> {
    let pool = (n / 8).max(256) as u64;
    let templates = (n / 32).max(64) as u64;
    let mut docs: Vec<BTreeSet<FaultId>> = Vec::with_capacity(n);
    for i in 0..n as u64 {
        if mix(&[seed, 20, i]).is_multiple_of(50) {
            docs.push(BTreeSet::new());
            continue;
        }
        let t = mix(&[seed, 21, i]) % templates;
        let k = 2 + mix(&[seed, 22, t]) % 5;
        let mut doc: BTreeSet<FaultId> = (0..k)
            .map(|j| FaultId((mix(&[seed, 23, t, j]) % pool) as u32))
            .collect();
        if mix(&[seed, 24, i]).is_multiple_of(4) {
            doc.insert(FaultId((mix(&[seed, 25, i]) % pool) as u32));
        }
        docs.push(doc);
    }
    let idf = IdfVectorizer::fit(&docs);
    docs.iter().map(|d| idf.vectorize(d)).collect()
}

/// The sparse-clustering candidate-generation worst case: one
/// near-ubiquitous dimension (present in ~90% of docs — ubiquitous
/// enough for a huge posting list, absent often enough that IDF keeps
/// its weight nonzero) plus one rare dimension per doc from a pool of
/// `max(8, n/2)`. Without hot-posting caps the shared dimension alone
/// makes the candidate graph quadratic in the ~0.9·n groups that carry
/// it; with caps the graph is driven by the rare-dimension collisions.
pub fn hot_dimension_vectors(n: usize, seed: u64) -> Vec<SparseVec> {
    let rare_pool = (n as u64 / 2).max(8);
    let mut docs: Vec<BTreeSet<FaultId>> = Vec::with_capacity(n);
    for i in 0..n as u64 {
        let mut doc = BTreeSet::new();
        if !mix(&[seed, 30, i]).is_multiple_of(10) {
            doc.insert(FaultId(0));
        }
        doc.insert(FaultId(1 + (mix(&[seed, 31, i]) % rare_pool) as u32));
        docs.push(doc);
    }
    let idf = IdfVectorizer::fit(&docs);
    docs.iter().map(|d| idf.vectorize(d)).collect()
}

/// Smallest stride ≥ `from` coprime to `n`, for the fault spread.
fn pick_coprime_stride(n: u32, from: u32) -> u32 {
    fn gcd(mut a: u32, mut b: u32) -> u32 {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    }
    (from..).find(|&s| gcd(s, n.max(1)) == 1).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = CampaignSpec::smoke();
        let c1 = SyntheticCampaign::generate(&spec);
        let c2 = SyntheticCampaign::generate(&spec);
        assert_eq!(c1.faults(), c2.faults());
        let f = c1.faults()[0];
        let t = TestId(0);
        let a = c1.injection_traces(f, t);
        let b = c2.injection_traces(f, t);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.occurrences, y.occurrences);
            assert_eq!(x.loop_counts, y.loop_counts);
            assert_eq!(x.injected, y.injected);
        }
    }

    #[test]
    fn fault_spread_covers_all_kinds_without_duplicates() {
        let c = SyntheticCampaign::generate(&CampaignSpec::full());
        let mut kinds = std::collections::BTreeSet::new();
        let mut seen = std::collections::BTreeSet::new();
        for &f in c.faults() {
            assert!(seen.insert(f), "duplicate fault {f}");
            kinds.insert(format!("{:?}", c.registry().point(f).kind));
        }
        assert!(kinds.len() >= 3, "kinds: {kinds:?}");
        assert_eq!(c.faults().len(), 200);
    }

    #[test]
    fn synthetic_vectors_have_the_advertised_shape() {
        let v = synthetic_vectors(2000, 7);
        assert_eq!(v.len(), 2000);
        let zeros = v.iter().filter(|x| x.is_zero()).count();
        assert!(zeros > 0, "some empty interference lists");
        assert!(zeros < 200, "zeros stay a small share: {zeros}");
        // Exact duplicates are common (template copies survive IDF).
        let distinct: std::collections::BTreeSet<Vec<(u32, u64)>> = v
            .iter()
            .map(|x| {
                x.components()
                    .iter()
                    .map(|(f, w)| (f.0, w.to_bits()))
                    .collect()
            })
            .collect();
        assert!(
            distinct.len() < v.len() / 2,
            "duplicate mass expected: {} distinct of {}",
            distinct.len(),
            v.len()
        );
        // Deterministic.
        assert_eq!(v, synthetic_vectors(2000, 7));
        assert_ne!(v, synthetic_vectors(2000, 8));
    }

    #[test]
    fn injections_fire_and_interfere() {
        let c = SyntheticCampaign::generate(&CampaignSpec::smoke());
        let t = TestId(0);
        let mut any_edges = 0;
        for &f in c.faults() {
            let traces = c.injection_traces(f, t);
            assert!(traces.iter().all(|tr| tr.injected.is_some()));
            let profile = c.profile_traces(t);
            let out = csnake_core::analyze_experiment(
                c.registry(),
                &profile,
                &traces,
                c.plan_for(f),
                t,
                1,
                &csnake_core::FcaConfig::default(),
            );
            any_edges += out.edges.len();
        }
        assert!(any_edges > 0, "campaign produced no causal edges at all");
    }
}
