//! Criterion benchmarks for the core pipeline stages and the §8.5
//! instrumentation-overhead comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeSet;

use csnake_bench::synthetic_db;
use csnake_core::beam::{beam_search, beam_search_reference, BeamConfig};
use csnake_core::cluster::hierarchical_cluster;
use csnake_core::idf::IdfVectorizer;
use csnake_core::stats::welch_one_sided_p;
use csnake_core::{StitchIndex, TargetSystem};
use csnake_inject::{FaultId, TestId};
use csnake_targets::{MiniHdfs2, ToySystem};

fn beam_cfg() -> BeamConfig {
    BeamConfig {
        beam_size: 10_000,
        max_len: 4,
        ..BeamConfig::default()
    }
}

fn bench_beam(c: &mut Criterion) {
    let mut g = c.benchmark_group("beam_search");
    // All-occurrence ring graphs (the historical sizes), then a large mixed
    // loop/occurrence case (n ≥ 500, fanout ≥ 6) the old implementation
    // could not survive.
    for &(n, fanout, loop_share) in &[(20u32, 3u32, 0.0), (60, 3, 0.0), (120, 3, 0.0)] {
        let db = synthetic_db(n, fanout, loop_share);
        g.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
            let cfg = beam_cfg();
            b.iter(|| beam_search(db, &|_| 0.5, &cfg).len());
        });
    }
    let large = synthetic_db(500, 6, 0.3);
    g.bench_with_input(BenchmarkId::from_parameter(500), &large, |b, db| {
        let cfg = beam_cfg();
        b.iter(|| beam_search(db, &|_| 0.5, &cfg).len());
    });
    g.finish();

    // The retained reference implementation at the historical largest size:
    // the beam_search/120 ÷ beam_search_reference/120 ratio is the
    // headline speedup of the stitch-index rewrite.
    let mut g = c.benchmark_group("beam_search_reference");
    let db = synthetic_db(120, 3, 0.0);
    g.bench_with_input(BenchmarkId::from_parameter(120), &db, |b, db| {
        let cfg = beam_cfg();
        b.iter(|| beam_search_reference(db, &|_| 0.5, &cfg).len());
    });
    g.finish();

    // Index compilation alone (amortised across searches in real use).
    let mut g = c.benchmark_group("stitch_index_build");
    for &(n, fanout, loop_share) in &[(120u32, 3u32, 0.0), (500, 6, 0.3)] {
        let db = synthetic_db(n, fanout, loop_share);
        g.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
            b.iter(|| StitchIndex::build(db, 4).len());
        });
    }
    g.finish();
}

fn bench_idf_cluster(c: &mut Criterion) {
    let docs: Vec<BTreeSet<FaultId>> = (0..200u32)
        .map(|i| (0..8).map(|k| FaultId((i * 7 + k * 13) % 64)).collect())
        .collect();
    c.bench_function("idf_fit_vectorize_cluster_200", |b| {
        b.iter(|| {
            let m = IdfVectorizer::fit(&docs);
            let vecs: Vec<_> = docs.iter().map(|d| m.vectorize(d)).collect();
            hierarchical_cluster(&vecs, 0.5).n_clusters
        });
    });
}

fn bench_welch(c: &mut Criterion) {
    let a: Vec<f64> = (0..5).map(|i| 100.0 + i as f64).collect();
    let b2: Vec<f64> = (0..5).map(|i| 140.0 + i as f64).collect();
    c.bench_function("welch_one_sided_p", |b| {
        b.iter(|| welch_one_sided_p(&a, &b2));
    });
}

fn bench_target_run(c: &mut Criterion) {
    let toy = ToySystem::new();
    c.bench_function("toy_profile_run", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            toy.run(TestId(0), None, seed).events
        });
    });
    let hdfs = MiniHdfs2::new();
    c.bench_function("hdfs2_profile_run", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            hdfs.run(TestId(0), None, seed).events
        });
    });
}

/// §8.5: instrumented vs monitoring-off profile runs.
fn bench_overhead(c: &mut Criterion) {
    let hdfs = MiniHdfs2::new();
    let mut g = c.benchmark_group("instrumentation_overhead");
    g.bench_function("tracing_on", |b| {
        csnake_inject::tracing_switch::set(true);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            hdfs.run(TestId(0), None, seed).events
        });
    });
    g.bench_function("tracing_off", |b| {
        csnake_inject::tracing_switch::set(false);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            hdfs.run(TestId(0), None, seed).events
        });
        csnake_inject::tracing_switch::set(true);
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_beam, bench_idf_cluster, bench_welch, bench_target_run, bench_overhead
}
criterion_main!(benches);
