//! Criterion benchmarks for the core pipeline stages and the §8.5
//! instrumentation-overhead comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeSet;

use csnake_core::beam::{beam_search, BeamConfig};
use csnake_core::cluster::hierarchical_cluster;
use csnake_core::edge::{CausalDb, CausalEdge, CompatState, EdgeKind};
use csnake_core::idf::IdfVectorizer;
use csnake_core::stats::welch_one_sided_p;
use csnake_core::TargetSystem;
use csnake_inject::{FaultId, Occurrence, TestId};
use csnake_targets::{MiniHdfs2, ToySystem};

fn synthetic_db(n_faults: u32, fanout: u32) -> CausalDb {
    let state = |tag: u32| {
        CompatState::Occurrences(vec![Occurrence::new(
            [Some(csnake_inject::FnId(tag)), None],
            vec![],
        )])
    };
    let mut edges = Vec::new();
    for c in 0..n_faults {
        for k in 0..fanout {
            let e = (c + k + 1) % n_faults;
            edges.push(CausalEdge {
                cause: FaultId(c),
                effect: FaultId(e),
                kind: EdgeKind::EI,
                test: TestId(k),
                phase: 1,
                cause_state: state(c),
                effect_state: state(e),
            });
        }
    }
    CausalDb::from_edges(edges)
}

fn bench_beam(c: &mut Criterion) {
    let mut g = c.benchmark_group("beam_search");
    for &n in &[20u32, 60, 120] {
        let db = synthetic_db(n, 3);
        g.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
            let cfg = BeamConfig {
                beam_size: 10_000,
                max_len: 4,
                ..BeamConfig::default()
            };
            b.iter(|| beam_search(db, &|_| 0.5, &cfg).len());
        });
    }
    g.finish();
}

fn bench_idf_cluster(c: &mut Criterion) {
    let docs: Vec<BTreeSet<FaultId>> = (0..200u32)
        .map(|i| (0..8).map(|k| FaultId((i * 7 + k * 13) % 64)).collect())
        .collect();
    c.bench_function("idf_fit_vectorize_cluster_200", |b| {
        b.iter(|| {
            let m = IdfVectorizer::fit(&docs);
            let vecs: Vec<_> = docs.iter().map(|d| m.vectorize(d)).collect();
            hierarchical_cluster(&vecs, 0.5).n_clusters
        });
    });
}

fn bench_welch(c: &mut Criterion) {
    let a: Vec<f64> = (0..5).map(|i| 100.0 + i as f64).collect();
    let b2: Vec<f64> = (0..5).map(|i| 140.0 + i as f64).collect();
    c.bench_function("welch_one_sided_p", |b| {
        b.iter(|| welch_one_sided_p(&a, &b2));
    });
}

fn bench_target_run(c: &mut Criterion) {
    let toy = ToySystem::new();
    c.bench_function("toy_profile_run", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            toy.run(TestId(0), None, seed).events
        });
    });
    let hdfs = MiniHdfs2::new();
    c.bench_function("hdfs2_profile_run", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            hdfs.run(TestId(0), None, seed).events
        });
    });
}

/// §8.5: instrumented vs monitoring-off profile runs.
fn bench_overhead(c: &mut Criterion) {
    let hdfs = MiniHdfs2::new();
    let mut g = c.benchmark_group("instrumentation_overhead");
    g.bench_function("tracing_on", |b| {
        csnake_inject::tracing_switch::set(true);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            hdfs.run(TestId(0), None, seed).events
        });
    });
    g.bench_function("tracing_off", |b| {
        csnake_inject::tracing_switch::set(false);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            hdfs.run(TestId(0), None, seed).events
        });
        csnake_inject::tracing_switch::set(true);
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_beam, bench_idf_cluster, bench_welch, bench_target_run, bench_overhead
}
criterion_main!(benches);
