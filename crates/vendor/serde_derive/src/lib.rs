//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The workspace derives the serde traits for forward compatibility but
//! never serializes through them (artifacts are written by hand), so the
//! derives emit nothing: the marker traits in the `serde` stub have
//! blanket implementations.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
