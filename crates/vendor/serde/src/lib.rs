//! Offline stand-in for `serde`: marker traits plus no-op derives.
//!
//! The real serde pairs each trait with a derive macro of the same name in
//! the macro namespace; this stub mirrors that so `use serde::{Serialize,
//! Deserialize}` imports both. The traits are blanket-implemented because
//! the derives emit nothing and nothing in the workspace bounds on them.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
