//! Offline stand-in for `criterion`: a minimal wall-clock harness.
//!
//! Each benchmark runs a short warm-up to size the per-sample iteration
//! count, then `sample_size` timed samples; the median, mean, and min
//! per-iteration times are printed one line per benchmark. Statistics are
//! far cruder than real criterion's, but medians over ≥ 10 samples are
//! stable enough to track hot-path trends (see `BENCH_beam.json`).

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-time per sample; the harness packs iterations to reach it.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(25);

/// Measurement result for one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Estimate {
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// Mean per-iteration time in nanoseconds.
    pub mean_ns: f64,
    /// Fastest sample's per-iteration time in nanoseconds.
    pub min_ns: f64,
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Times closures over adaptive iteration batches.
pub struct Bencher {
    sample_size: usize,
    estimate: Option<Estimate>,
}

impl Bencher {
    /// Benchmarks `f`, recording per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run once to page everything in and estimate cost.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE_TIME.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        self.estimate = Some(Estimate {
            median_ns: median,
            mean_ns: mean,
            min_ns: samples[0],
        });
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made from a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only the parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

fn run_one(label: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) -> Estimate {
    let mut b = Bencher {
        sample_size,
        estimate: None,
    };
    f(&mut b);
    let est = b.estimate.unwrap_or(Estimate {
        median_ns: 0.0,
        mean_ns: 0.0,
        min_ns: 0.0,
    });
    println!(
        "bench {label:<40} median {:>12}   mean {:>12}   min {:>12}",
        fmt_ns(est.median_ns),
        fmt_ns(est.mean_ns),
        fmt_ns(est.min_ns)
    );
    est
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.criterion.sample_size, |b| f(b));
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.criterion.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (all reporting already happened inline).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, optionally with a configured
/// `Criterion` instance.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_produces_positive_estimates() {
        let est = run_one("noop", 5, |b| b.iter(|| black_box(1u64 + 1)));
        assert!(est.median_ns > 0.0);
        assert!(est.min_ns <= est.median_ns);
    }

    #[test]
    fn group_and_ids_compose() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }
}
