//! Value-generation strategies: ranges, tuples, `prop_map`, `Just`.

use std::ops::Range;

use crate::test_runner::TestRng;

/// Generates values of `Self::Value` from a seeded stream.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128).wrapping_mul(width) >> 64;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + rng.unit() * (self.end - self.start);
        // Guard against rounding up to the exclusive bound.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + (rng.unit() as f32) * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..500 {
            let x = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let y = (-4i64..4).generate(&mut rng);
            assert!((-4..4).contains(&y));
            let z = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&z));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let strat = ((0u32..10).prop_map(|x| x * 2), 0u32..3);
        let mut rng = TestRng::from_seed(2);
        for _ in 0..100 {
            let (a, b) = strat.generate(&mut rng);
            assert!(a % 2 == 0 && a < 20);
            assert!(b < 3);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(0u64..1000, 0..10);
        let a: Vec<u64> = strat.generate(&mut TestRng::for_case(5));
        let b: Vec<u64> = strat.generate(&mut TestRng::for_case(5));
        assert_eq!(a, b);
    }
}
