//! Config, deterministic per-case RNG, and failure reporting.

use std::ops::Range;

/// Runner configuration (only the case count is meaningful here).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// SplitMix64-based generator; each case index derives an independent,
/// reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The stream for one case of one property run.
    pub fn for_case(case: u32) -> Self {
        TestRng {
            state: 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(case as u64 + 1) ^ 0x5eed_cafe_f00d_d00d,
        }
    }

    /// A stream from an explicit seed (used by workspace-internal tests).
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from a half-open usize range.
    pub fn usize_in(&mut self, r: Range<usize>) -> usize {
        assert!(r.start < r.end, "empty range");
        let width = (r.end - r.start) as u64;
        r.start + ((self.next_u64() as u128 * width as u128) >> 64) as usize
    }
}

/// Prints the failing property and case index if dropped during a panic.
pub struct CaseGuard {
    name: &'static str,
    case: u32,
    armed: bool,
}

impl CaseGuard {
    /// Arms a guard for one case execution.
    pub fn new(name: &'static str, case: u32) -> Self {
        CaseGuard {
            name,
            case,
            armed: true,
        }
    }

    /// Disarms after the case body returned normally.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest: property `{}` failed at case {} (deterministic; rerun reproduces it)",
                self.name, self.case
            );
        }
    }
}
