//! Offline stand-in for `proptest`: random generation without shrinking.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]` header),
//! range / tuple / mapped / collection strategies, and the `prop_assert*`
//! macros. Every case is generated from a seed derived deterministically
//! from the case index, so a failing case always reproduces; the case
//! index is reported on failure via a panic-time message.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (`vec`, `btree_set`).

    use std::collections::BTreeSet;
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Creates a strategy generating vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; duplicates shrink the set, as in
    /// real proptest when the value domain is small.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Creates a strategy generating ordered sets of `element` values.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual glob-import surface.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ..)`
/// becomes a plain test running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr) $(
        $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let guard = $crate::test_runner::CaseGuard::new(stringify!($name), case);
                    (|| $body)();
                    guard.disarm();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that also mentions the proptest case on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}
