//! Offline stand-in for `rand`: the exact API surface `csnake-sim` uses.
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64. The simulator only
//! needs determinism (same seed → same stream) and decent statistical
//! quality for jitter; it never relies on the real `StdRng`'s ChaCha
//! stream, so the algorithm swap is invisible to the workspace.

use std::ops::{Range, RangeInclusive};

/// Seeding interface (only the `u64` convenience constructor is needed).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value samplable uniformly from the generator's raw stream.
pub trait Standard: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range samplable via `gen_range`.
pub trait SampleRange {
    type Output;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform draw from `[0, width)` by widening multiply (no modulo bias to
/// speak of at the widths the simulator uses).
fn below<R: Rng + ?Sized>(rng: &mut R, width: u64) -> u64 {
    ((rng.next_u64() as u128 * width as u128) >> 64) as u64
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + below(rng, self.end - self.start)
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + below(rng, (self.end - self.start) as u64) as usize
    }
}

impl SampleRange for Range<i64> {
    type Output = i64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "empty range");
        let width = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(below(rng, width) as i64)
    }
}

impl SampleRange for RangeInclusive<i64> {
    type Output = i64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> i64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let width = hi.wrapping_sub(lo) as u64;
        if width == u64::MAX {
            return rng.next_u64() as i64;
        }
        lo.wrapping_add(below(rng, width + 1) as i64)
    }
}

/// The sampling interface.
pub trait Rng {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from the raw stream.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ generator (Blackman & Vigna), SplitMix64-seeded.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl StdRng {
        /// Exports the raw xoshiro256++ state so a generator can be
        /// checkpointed and later restored with [`StdRng::from_state`].
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state previously returned by
        /// [`StdRng::state`]. The restored generator continues the exact
        /// stream the original would have produced.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let u = r.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(r.gen_range(-1i64..=1) + 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
