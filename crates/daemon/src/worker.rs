//! The worker side of the daemon: a process (or thread) that owns a
//! locally re-derived copy of the target and serves experiment shards.
//!
//! A worker is stateless between shards. It receives the campaign
//! preamble once ([`WireMsg::Hello`]), resolves the target by name,
//! profiles it with the shipped config — profiling is deterministic in the
//! config's seeds, so every worker and the coordinator agree on coverage
//! and plans — and proves that agreement by echoing the registry
//! fingerprint. After the handshake it loops: run a shard's jobs on the
//! in-process driver (retry supervision included), ship the outcomes,
//! gaps, run count and buffered supervisor events back in one
//! [`WireMsg::Result`].
//!
//! A heartbeat thread keeps the coordinator's lease alive while a long
//! batch computes; a worker that dies (or stalls with heartbeats lost)
//! simply stops answering, and the coordinator reassigns its shard. The
//! worker never checkpoints — shards are small and idempotent, so the
//! coordinator-side checkpoint plus reassignment is the whole recovery
//! story.

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use csnake_core::alloc::ExperimentEngine;
use csnake_core::error::{CsnakeError, Result};
use csnake_core::{registry_fingerprint, CampaignObserver, Driver};
use csnake_inject::{FaultId, TestId};

use crate::transport::Endpoint;
use crate::wire::{WireMsg, WorkerEvent};

/// Fault-injection knobs for recovery tests; the default is a well-behaved
/// worker.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Die mid-assignment: after completing this many shards, the next
    /// [`WireMsg::Assign`] is accepted and silently dropped — the worker
    /// exits (or hangs, see `fail_hang_ms`) without ever answering, which
    /// is exactly what a crashed worker looks like to the coordinator.
    pub fail_after: Option<usize>,
    /// When dying, keep the connection open for this long before exiting.
    /// `0` drops the connection immediately (crash → EOF → instant
    /// reassignment); a positive value with `heartbeats: false` models a
    /// silent stall, which only the lease clock can catch.
    pub fail_hang_ms: u64,
    /// Send lease heartbeats (on by default; disabled to exercise lease
    /// expiry in tests).
    pub heartbeats: bool,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            fail_after: None,
            fail_hang_ms: 0,
            heartbeats: true,
        }
    }
}

/// Maps a transport error into the workspace error type.
fn wire_io(source: io::Error) -> CsnakeError {
    CsnakeError::Io {
        path: PathBuf::from("<wire>"),
        source,
    }
}

/// Observer buffering the driver's supervisor events for the current
/// shard; drained into each [`WireMsg::Result`]. Worker-local batch
/// ordinals are dropped here — the coordinator re-numbers events in shard
/// merge order so the replayed stream is deterministic.
#[derive(Default)]
struct EventBuffer {
    events: Mutex<Vec<WorkerEvent>>,
}

impl EventBuffer {
    fn drain(&self) -> Vec<WorkerEvent> {
        std::mem::take(&mut self.events.lock().expect("event buffer poisoned"))
    }

    /// A copy of the buffered events *without* draining them: the live
    /// [`WireMsg::Event`] frame ships a copy, the authoritative drain
    /// still happens into the shard's [`WireMsg::Result`].
    fn peek(&self) -> Vec<WorkerEvent> {
        self.events.lock().expect("event buffer poisoned").clone()
    }
}

impl CampaignObserver for EventBuffer {
    fn batch_retried(&self, _batch: usize, failed_jobs: usize, attempt: u32, backoff_ms: u64) {
        self.events
            .lock()
            .expect("event buffer poisoned")
            .push(WorkerEvent::BatchRetried {
                failed_jobs,
                attempt,
                backoff_ms,
            });
    }

    fn batch_failed(&self, _batch: usize, fault: FaultId, test: TestId, phase: u8, reason: &str) {
        self.events
            .lock()
            .expect("event buffer poisoned")
            .push(WorkerEvent::BatchFailed {
                fault,
                test,
                phase,
                reason: reason.to_string(),
            });
    }
}

/// Sleeps `ms` in short slices so `stop` is honoured promptly.
fn sliced_sleep(ms: u64, stop: &AtomicBool) {
    let mut left = ms;
    while left > 0 && !stop.load(Ordering::Relaxed) {
        let step = left.min(10);
        std::thread::sleep(Duration::from_millis(step));
        left -= step;
    }
}

/// Serves one coordinator connection to completion. Returns when the
/// coordinator shuts the worker down, hangs up, or an injected failure
/// (`opts.fail_after`) fires.
pub fn run_worker(endpoint: Endpoint, opts: WorkerOptions) -> Result<()> {
    let Endpoint { tx, mut rx } = endpoint;
    let (target_name, want_fp, cfg, worker_id, lease_ms, profiles) =
        match rx.recv().map_err(wire_io)? {
            Some(WireMsg::Hello {
                target,
                registry_fp,
                cfg,
                worker,
                lease_ms,
                profiles,
            }) => (target, registry_fp, cfg, worker, lease_ms, profiles),
            Some(other) => {
                return Err(CsnakeError::SnapshotCorrupt(format!(
                    "worker expected Hello, got {other:?}"
                )))
            }
            None => return Ok(()), // coordinator gone before the handshake
        };

    let system = crate::targets::resolve(&target_name)?;
    let fp = registry_fingerprint(&system.registry());
    if fp != want_fp {
        return Err(CsnakeError::RegistryMismatch {
            snapshot: want_fp,
            actual: fp,
        });
    }

    // The Hello ships the coordinator's profile traces, so the worker
    // rebuilds its driver from the artifact instead of paying the full
    // profiling pass. Re-profiling locally (empty artifact) produces
    // bit-identical traces because run seeds are pure functions of
    // (test, rep) — the artifact changes startup cost, never results.
    let mut driver = if profiles.is_empty() {
        Driver::new(system.as_ref(), cfg.driver.clone())
    } else {
        Driver::from_profiles(system.as_ref(), cfg.driver.clone(), profiles, 0)
    };
    let events = Arc::new(EventBuffer::default());
    driver.set_observer(events.clone());
    // Profile runs stay out of shard deltas: the coordinator accounts its
    // own profiling, and worker profiling is a re-derivation, not campaign
    // work.
    let mut runs_sent = driver.runs_executed;

    let tx = Arc::new(Mutex::new(tx));
    tx.lock()
        .expect("wire tx poisoned")
        .send(&WireMsg::HelloAck {
            worker: worker_id,
            registry_fp: fp,
        })
        .map_err(wire_io)?;

    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        if opts.heartbeats && lease_ms > 0 {
            let hb_tx = Arc::clone(&tx);
            let hb_stop = Arc::clone(&stop);
            scope.spawn(move || {
                let tick = (lease_ms / 3).max(1);
                let mut seq = 0u64;
                loop {
                    sliced_sleep(tick, &hb_stop);
                    if hb_stop.load(Ordering::Relaxed) {
                        return;
                    }
                    seq += 1;
                    let beat = WireMsg::Heartbeat {
                        worker: worker_id,
                        seq,
                    };
                    if hb_tx.lock().expect("wire tx poisoned").send(&beat).is_err() {
                        return;
                    }
                }
            });
        }

        let served = (|| -> Result<()> {
            let mut completed = 0usize;
            loop {
                match rx.recv().map_err(wire_io)? {
                    Some(WireMsg::Assign { shard, jobs }) => {
                        if opts.fail_after.is_some_and(|n| completed >= n) {
                            // Injected crash: the shard is ours on the
                            // coordinator's books, and we vanish.
                            sliced_sleep(opts.fail_hang_ms, &AtomicBool::new(false));
                            return Ok(());
                        }
                        let outcomes = driver.run_experiments(&jobs);
                        // Live telemetry rides ahead of the Result: a copy
                        // of the shard's supervisor events, one summary per
                        // completed experiment, and the cumulative cache
                        // counters. The coordinator forwards these with
                        // worker attribution and never merges them, so a
                        // send failure here is the reader's problem to
                        // notice — the authoritative Result follows on the
                        // same stream.
                        let mut live = events.peek();
                        live.extend(outcomes.iter().map(|o| WorkerEvent::ExperimentCompleted {
                            fault: o.fault,
                            test: o.test,
                            edges: o.edges.len(),
                        }));
                        let (hits, misses) = driver.trace_cache_stats();
                        live.push(WorkerEvent::TraceCache { hits, misses });
                        tx.lock()
                            .expect("wire tx poisoned")
                            .send(&WireMsg::Event {
                                worker: worker_id,
                                events: live,
                            })
                            .map_err(wire_io)?;
                        let gaps = driver.take_gaps();
                        let runs = driver.runs_executed - runs_sent;
                        runs_sent = driver.runs_executed;
                        let reply = WireMsg::Result {
                            shard,
                            outcomes,
                            gaps,
                            runs,
                            events: events.drain(),
                        };
                        tx.lock()
                            .expect("wire tx poisoned")
                            .send(&reply)
                            .map_err(wire_io)?;
                        completed += 1;
                    }
                    Some(WireMsg::Shutdown) | None => return Ok(()),
                    Some(_) => {} // stray frames (e.g. echoed heartbeats) are ignored
                }
            }
        })();
        stop.store(true, Ordering::Relaxed);
        served
    })
}
