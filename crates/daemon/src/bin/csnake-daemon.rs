//! The `csnake-daemon` binary: distributed campaigns from the command
//! line.
//!
//! ```text
//! csnake-daemon run   --target <name> [-j N] [options]   one-shot local fleet
//! csnake-daemon serve --listen ADDR --target <name> -j N wait for TCP workers, then run
//! csnake-daemon work  --stdio | --connect HOST:PORT      serve shards to a coordinator
//! ```
//!
//! `run` spawns `N` copies of itself as `work --stdio` children and
//! coordinates them over pipes — the no-setup path. `serve`/`work` split
//! the same roles across machines over TCP. All three print the final
//! `DetectionReport` Debug form on stdout (`report: ...`), which is
//! byte-comparable with a single-process `Session::run_to_report` — the
//! property the daemon exists to preserve.

use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};

use csnake_core::{CampaignObserver, DetectConfig, FanoutObserver, ProgressCollector, ThreePhase};
use csnake_daemon::transport::Endpoint;
use csnake_daemon::{drive_session, run_worker, DaemonConfig, WorkerOptions};
use csnake_telemetry::{FlightRecorder, LiveProgress, MetricsDigest};
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: csnake-daemon <command> [options]\n\
         \n\
         commands:\n\
         \x20 run    --target <name> [-j N] [--shard-jobs J] [--lease-ms MS]\n\
         \x20        [--checkpoint PATH --cadence K] [--fast] [--kill-worker W:K]\n\
         \x20        [--progress] [--journal BASE]\n\
         \x20        spawn N local worker processes and run one campaign\n\
         \x20 serve  --listen ADDR --target <name> -j N [--shard-jobs J] [--lease-ms MS] [--fast]\n\
         \x20        [--progress] [--journal BASE]\n\
         \x20        accept N TCP workers, then run one campaign\n\
         \x20 work   --stdio | --connect HOST:PORT [--fail-after K] [--no-heartbeat] [--fast]\n\
         \x20        serve experiment shards to a coordinator\n\
         \n\
         targets: builtins (toy, ...), scenario corpus names (kafka-isr, ...), gen:<seed>"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("csnake-daemon: {msg}");
    std::process::exit(1);
}

/// The smoke-test configuration: enough repetitions to detect, small
/// enough to iterate (mirrors the chaos-smoke harness).
fn fast_config() -> DetectConfig {
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800];
    cfg.driver.retry.backoff_base_ms = 1;
    cfg
}

struct Parsed {
    target: Option<String>,
    jobs: usize,
    daemon: DaemonConfig,
    fast: bool,
    checkpoint: Option<(String, usize)>,
    kill_worker: Option<(usize, usize)>,
    listen: Option<String>,
    connect: Option<String>,
    stdio: bool,
    fail_after: Option<usize>,
    heartbeats: bool,
    progress: bool,
    journal: Option<String>,
}

fn parse(args: &[String]) -> Parsed {
    let mut p = Parsed {
        target: None,
        jobs: 2,
        daemon: DaemonConfig::default(),
        fast: false,
        checkpoint: None,
        kill_worker: None,
        listen: None,
        connect: None,
        stdio: false,
        fail_after: None,
        heartbeats: true,
        progress: false,
        journal: None,
    };
    let mut cadence = 16usize;
    let mut checkpoint_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--target" => p.target = Some(value("--target")),
            "-j" | "--workers" => {
                p.jobs = value("-j")
                    .parse()
                    .unwrap_or_else(|_| fail("-j needs a number"))
            }
            "--shard-jobs" => {
                p.daemon.shard_jobs = value("--shard-jobs")
                    .parse()
                    .unwrap_or_else(|_| fail("--shard-jobs needs a number"))
            }
            "--lease-ms" => {
                p.daemon.lease_ms = value("--lease-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--lease-ms needs a number"))
            }
            "--checkpoint" => checkpoint_path = Some(value("--checkpoint")),
            "--cadence" => {
                cadence = value("--cadence")
                    .parse()
                    .unwrap_or_else(|_| fail("--cadence needs a number"))
            }
            "--fast" => p.fast = true,
            "--kill-worker" => {
                let v = value("--kill-worker");
                let (w, k) = v
                    .split_once(':')
                    .unwrap_or_else(|| fail("--kill-worker wants W:K"));
                p.kill_worker = Some((
                    w.parse()
                        .unwrap_or_else(|_| fail("--kill-worker wants W:K")),
                    k.parse()
                        .unwrap_or_else(|_| fail("--kill-worker wants W:K")),
                ));
            }
            "--listen" => p.listen = Some(value("--listen")),
            "--connect" => p.connect = Some(value("--connect")),
            "--stdio" => p.stdio = true,
            "--fail-after" => {
                p.fail_after = Some(
                    value("--fail-after")
                        .parse()
                        .unwrap_or_else(|_| fail("--fail-after needs a number")),
                )
            }
            "--no-heartbeat" => p.heartbeats = false,
            "--progress" => p.progress = true,
            "--journal" => p.journal = Some(value("--journal")),
            _ => usage(),
        }
    }
    p.checkpoint = checkpoint_path.map(|path| (path, cadence));
    p
}

fn campaign(target_name: &str, endpoints: Vec<Endpoint>, p: &Parsed) -> ! {
    let target =
        csnake_daemon::targets::resolve(target_name).unwrap_or_else(|e| fail(&e.to_string()));
    let cfg = if p.fast {
        fast_config()
    } else {
        DetectConfig::default()
    };
    let progress = Arc::new(ProgressCollector::new());
    // The recorder rides next to the collector in a fanout: observers
    // never perturb results, so the report stays byte-comparable with a
    // plain run.
    let recorder = p.journal.as_ref().map(|base| {
        Arc::new(
            FlightRecorder::builder()
                .jsonl(format!("{base}.jsonl"))
                .binary(format!("{base}.csnj"))
                .build()
                .unwrap_or_else(|e| fail(&format!("cannot open journal: {e}"))),
        )
    });
    let observer: Arc<dyn CampaignObserver> = match &recorder {
        Some(rec) => Arc::new(FanoutObserver::new(vec![
            progress.clone() as Arc<dyn CampaignObserver>,
            rec.clone(),
        ])),
        None => progress.clone(),
    };
    let live = p
        .progress
        .then(|| LiveProgress::start(progress.clone(), Duration::from_secs(1)));
    let mut builder = csnake_core::Session::builder(target.as_ref())
        .config(cfg)
        .observer(observer);
    if let Some((path, cadence)) = &p.checkpoint {
        builder = builder.auto_checkpoint(path, *cadence);
    }
    let mut session = builder.build().unwrap_or_else(|e| fail(&e.to_string()));
    let (report, outcome) = drive_session(
        &mut session,
        target_name,
        endpoints,
        p.daemon.clone(),
        &ThreePhase::default(),
    )
    .unwrap_or_else(|e| fail(&e.to_string()));
    if let Some(live) = live {
        live.stop();
    }
    if let Some(rec) = &recorder {
        rec.finish()
            .unwrap_or_else(|e| fail(&format!("journal write failed: {e}")));
        let base = p.journal.as_deref().expect("recorder implies --journal");
        let records = rec.records();
        csnake_telemetry::write_chrome_trace(format!("{base}.trace.json"), &records)
            .unwrap_or_else(|e| fail(&format!("trace write failed: {e}")));
        MetricsDigest::from_records(&records)
            .write_json(format!("{base}.digest.json"))
            .unwrap_or_else(|e| fail(&format!("digest write failed: {e}")));
        eprintln!(
            "journal: {base}.jsonl {base}.csnj {base}.trace.json {base}.digest.json ({} records)",
            records.len()
        );
    }
    let snap = progress.snapshot();
    eprintln!(
        "workers: connected={} lost={} shards: assigned={} reassigned={} events_forwarded={}",
        snap.workers_connected,
        snap.workers_lost,
        snap.shards_assigned,
        snap.shards_reassigned,
        snap.events_forwarded,
    );
    if let Some(reason) = progress.last_loss_reason() {
        eprintln!("last worker loss: {reason}");
    }
    println!("report: {report:?}");
    println!("runs: {}", outcome.runs_executed);
    std::process::exit(0);
}

fn cmd_run(p: Parsed) -> ! {
    let Some(target_name) = p.target.clone() else {
        fail("run needs --target <name>");
    };
    let exe = std::env::current_exe().unwrap_or_else(|e| fail(&e.to_string()));
    let mut children: Vec<Child> = Vec::new();
    let mut endpoints = Vec::new();
    for w in 0..p.jobs.max(1) {
        let mut cmd = Command::new(&exe);
        cmd.arg("work").arg("--stdio");
        if let Some((kw, k)) = p.kill_worker {
            if kw == w {
                cmd.arg("--fail-after").arg(k.to_string());
            }
        }
        let mut child = cmd
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .unwrap_or_else(|e| fail(&format!("cannot spawn worker: {e}")));
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        endpoints.push(Endpoint::from_stream(stdout, stdin));
        children.push(child);
    }
    // campaign() exits the process; children exit with it on Shutdown/EOF,
    // so nothing here needs to reap them — but reap the fast-failure path
    // where campaign would fail before the handshake completes.
    campaign(&target_name, endpoints, &p)
}

fn cmd_serve(p: Parsed) -> ! {
    let Some(addr) = p.listen.clone() else {
        fail("serve needs --listen ADDR");
    };
    let Some(target_name) = p.target.clone() else {
        fail("serve needs --target <name>");
    };
    let listener = TcpListener::bind(&addr).unwrap_or_else(|e| fail(&format!("bind {addr}: {e}")));
    let local = listener
        .local_addr()
        .unwrap_or_else(|e| fail(&e.to_string()));
    println!("listening on {local}");
    std::io::stdout().flush().ok();
    let mut endpoints = Vec::new();
    for _ in 0..p.jobs.max(1) {
        let (stream, peer) = listener
            .accept()
            .unwrap_or_else(|e| fail(&format!("accept: {e}")));
        eprintln!("worker connected from {peer}");
        let read = stream
            .try_clone()
            .unwrap_or_else(|e| fail(&format!("clone socket: {e}")));
        endpoints.push(Endpoint::from_stream(read, stream));
    }
    campaign(&target_name, endpoints, &p)
}

fn cmd_work(p: Parsed) -> ! {
    let opts = WorkerOptions {
        fail_after: p.fail_after,
        fail_hang_ms: 0,
        heartbeats: p.heartbeats,
    };
    let endpoint = if p.stdio {
        Endpoint::from_stream(std::io::stdin(), std::io::stdout())
    } else if let Some(addr) = &p.connect {
        let stream =
            TcpStream::connect(addr).unwrap_or_else(|e| fail(&format!("connect {addr}: {e}")));
        let read = stream
            .try_clone()
            .unwrap_or_else(|e| fail(&format!("clone socket: {e}")));
        Endpoint::from_stream(read, stream)
    } else {
        fail("work needs --stdio or --connect HOST:PORT");
    };
    match run_worker(endpoint, opts) {
        Ok(()) => std::process::exit(0),
        Err(e) => fail(&format!("worker failed: {e}")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
    };
    let parsed = parse(rest);
    match cmd.as_str() {
        "run" => cmd_run(parsed),
        "serve" => cmd_serve(parsed),
        "work" => cmd_work(parsed),
        _ => usage(),
    }
}
