//! The coordinator side of the daemon: an [`ExperimentEngine`] that owns
//! no simulator and instead shards every 3PA batch across a fleet of
//! workers.
//!
//! # Why this is safe
//!
//! 3PA plans each phase's full `(fault, test, phase)` batch before
//! executing any of it — picks never depend on intra-phase outcomes — and
//! worker experiment runs are deterministic in `(test, plan, seed)` with
//! seeds that are pure functions of the plan cell. So outcomes can be
//! computed anywhere, in any order, by any worker, as long as they are
//! *merged back in batch order*. That merge is the only ordering this
//! module enforces; everything else (which worker gets which shard, when
//! results arrive, who dies) is free to vary without perturbing results.
//!
//! # Leases and reassignment
//!
//! Every assignment carries a lease: a worker must be heard from
//! (heartbeat or result) within `lease_ms` or it is declared lost and its
//! shard re-queued. A hangup (EOF on the connection) short-circuits the
//! lease. A shard that cannot be delivered after
//! [`DaemonConfig::max_assign_attempts`] tries degrades deterministically:
//! its cells become gap placeholders — exactly what the in-process retry
//! supervisor does for a job that exhausts its budget — so the campaign
//! completes with those cells enumerated in the report's missing set.
//!
//! # Wire chaos
//!
//! The self-chaos harness gates the coordinator's *send* path:
//! [`ChaosInjector::wire_drop_hook`] models a lost assignment frame
//! (burning one delivery attempt) and [`ChaosInjector::wire_stall_hook`]
//! models link latency. Both key on the global shard ordinal, which is
//! independent of the worker count — so a given chaos seed degrades the
//! same cells whether the fleet has one worker or eight.

use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use csnake_core::alloc::{ExperimentEngine, ShardSpan};
use csnake_core::error::{CsnakeError, Result};
use csnake_core::{
    registry_fingerprint, CampaignObserver, ChaosConfig, ChaosInjector, DetectConfig, Driver,
    ExperimentOutcome, ForwardedEvent, NoopObserver, TargetSystem,
};
use csnake_inject::{FaultId, TestId};

use crate::transport::{Endpoint, WireRx, WireTx};
use crate::wire::{Job, WireMsg, WorkerEvent};

/// Coordinator knobs.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Jobs per shard. Smaller shards rebalance and recover faster;
    /// larger shards amortize framing. The value never affects results —
    /// only scheduling granularity — but it *is* part of the chaos
    /// key-space (shard ordinals), so keep it fixed when comparing chaos
    /// runs.
    pub shard_jobs: usize,
    /// Lease duration handed to workers; a busy worker silent for longer
    /// is declared lost and its shard reassigned.
    pub lease_ms: u64,
    /// Delivery attempts per shard before it degrades into gaps.
    pub max_assign_attempts: u32,
    /// Granularity of the lease clock.
    pub poll_ms: u64,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            shard_jobs: 4,
            lease_ms: 2_000,
            max_assign_attempts: 3,
            poll_ms: 20,
        }
    }
}

/// What a reader thread reports about its worker.
///
/// One note exists per decoded frame, moved through a channel and
/// consumed immediately — the size skew of `Result` frames never
/// accumulates, so boxing would only add an allocation per frame.
#[allow(clippy::large_enum_variant)]
enum WorkerNote {
    /// A decoded frame.
    Msg(WireMsg),
    /// The connection is gone (EOF or transport error).
    Gone(String),
}

struct WorkerSlot {
    tx: Box<dyn WireTx>,
    alive: bool,
    /// Index (into the current batch's shard list) this worker is running.
    busy: Option<usize>,
    /// Lease expiry while busy.
    deadline: Instant,
}

/// A completed shard, parked until the in-order merge.
struct ShardResult {
    outcomes: Vec<ExperimentOutcome>,
    gaps: Vec<Job>,
    runs: usize,
    events: Vec<WorkerEvent>,
}

struct Shard {
    ordinal: u32,
    range: Range<usize>,
    attempts: u32,
    done: Option<ShardResult>,
}

/// Distributed [`ExperimentEngine`]: plans locally, executes remotely.
///
/// Built from a *profiled* local driver — the coordinator profiles the
/// target itself so the 3PA plan tables (injectable faults, reaching
/// tests, coverage sizes) are exactly the single-process ones — plus one
/// [`Endpoint`] per worker. Drive it through
/// [`Session::allocate_with_engine`].
///
/// [`Session::allocate_with_engine`]: csnake_core::Session::allocate_with_engine
pub struct DistributedEngine {
    faults: Vec<FaultId>,
    reaching: BTreeMap<FaultId, Vec<TestId>>,
    coverage: BTreeMap<TestId, usize>,
    workers: Vec<WorkerSlot>,
    notes: Receiver<(u32, WorkerNote)>,
    cfg: DaemonConfig,
    chaos: ChaosInjector,
    observer: Arc<dyn CampaignObserver>,
    gaps: Vec<Job>,
    runs: usize,
    /// Coordinator-side batch ordinal for replayed supervisor events.
    batch_counter: usize,
    /// Global shard ordinal: the chaos key and the `Assign` id.
    shard_counter: u32,
    /// Last cumulative `(hits, misses)` cache counters each worker
    /// reported in a live [`WireMsg::Event`] frame; the fleet-wide figure
    /// is their sum.
    worker_cache: BTreeMap<u32, (usize, usize)>,
}

/// Maps a wire-level worker event into the observer-facing forwarded form.
///
/// This is attribution-only fan-out: every one of these events is (or will
/// be) accounted in the deterministic campaign stream by the coordinator's
/// own merge, so the forwarded copy must never feed campaign totals — only
/// the per-worker view.
fn forwarded(ev: &WorkerEvent) -> ForwardedEvent {
    match ev {
        WorkerEvent::BatchRetried {
            failed_jobs,
            attempt,
            backoff_ms,
        } => ForwardedEvent::BatchRetried {
            failed_jobs: *failed_jobs,
            attempt: *attempt,
            backoff_ms: *backoff_ms,
        },
        WorkerEvent::BatchFailed {
            fault, test, phase, ..
        } => ForwardedEvent::BatchFailed {
            fault: *fault,
            test: *test,
            phase: *phase,
        },
        WorkerEvent::ExperimentCompleted { fault, test, edges } => {
            ForwardedEvent::ExperimentCompleted {
                fault: *fault,
                test: *test,
                edges: *edges,
            }
        }
        WorkerEvent::TraceCache { hits, misses } => ForwardedEvent::TraceCache {
            hits: *hits,
            misses: *misses,
        },
    }
}

fn reader_thread(mut rx: Box<dyn WireRx>, worker: u32, notes: Sender<(u32, WorkerNote)>) {
    loop {
        match rx.recv() {
            Ok(Some(msg)) => {
                if notes.send((worker, WorkerNote::Msg(msg))).is_err() {
                    return; // coordinator gone
                }
            }
            Ok(None) => {
                let _ = notes.send((worker, WorkerNote::Gone("connection closed".into())));
                return;
            }
            Err(e) => {
                let _ = notes.send((worker, WorkerNote::Gone(e.to_string())));
                return;
            }
        }
    }
}

impl DistributedEngine {
    /// Performs the campaign handshake with every endpoint and returns a
    /// ready engine.
    ///
    /// `target_name` must be the *resolution* name workers can look up
    /// (e.g. `gen:5`, not the generated system's descriptive name).
    /// `driver` is the coordinator's own profiled driver; only its plan
    /// tables are copied — the engine holds no borrow afterwards.
    ///
    /// Workers that fail the handshake (unresolvable target, fingerprint
    /// mismatch, dead connection) are dropped from the fleet with a
    /// [`CampaignObserver::worker_lost`] at attach time; connecting
    /// succeeds as long as at least one worker survives.
    pub fn connect(
        target_name: &str,
        target: &dyn TargetSystem,
        cfg: &DetectConfig,
        driver: &Driver<'_>,
        endpoints: Vec<Endpoint>,
        dcfg: DaemonConfig,
    ) -> Result<DistributedEngine> {
        let faults = driver.faults();
        let mut reaching = BTreeMap::new();
        for &f in &faults {
            reaching.insert(f, driver.tests_reaching(f));
        }
        let mut coverage = BTreeMap::new();
        for tc in target.tests() {
            coverage.insert(tc.id, driver.coverage_size(tc.id));
        }
        let registry_fp = registry_fingerprint(&target.registry());
        // Ship the coordinator's profile traces with the handshake: the
        // workers would re-derive bit-identical traces from the config's
        // seeds, so sending the artifact only removes their slow start.
        let profiles = driver.profiles().clone();

        let (note_tx, notes) = channel();
        let mut workers = Vec::with_capacity(endpoints.len());
        let now = Instant::now();
        for (i, ep) in endpoints.into_iter().enumerate() {
            let Endpoint { mut tx, rx } = ep;
            let hello = WireMsg::Hello {
                target: target_name.to_string(),
                registry_fp,
                cfg: cfg.clone(),
                worker: i as u32,
                lease_ms: dcfg.lease_ms,
                profiles: profiles.clone(),
            };
            let alive = tx.send(&hello).is_ok();
            let sender = note_tx.clone();
            std::thread::spawn(move || reader_thread(rx, i as u32, sender));
            workers.push(WorkerSlot {
                tx,
                alive,
                busy: None,
                deadline: now,
            });
        }
        drop(note_tx);

        // Handshake barrier: wait until every worker acked or died. No
        // lease here — workers are profiling the target, which is the one
        // legitimately slow step.
        let mut awaiting: usize = workers.iter().filter(|w| w.alive).count();
        while awaiting > 0 {
            match notes.recv() {
                Ok((
                    w,
                    WorkerNote::Msg(WireMsg::HelloAck {
                        registry_fp: fp, ..
                    }),
                )) => {
                    awaiting -= 1;
                    if fp != registry_fp {
                        workers[w as usize].alive = false;
                    }
                }
                Ok((w, WorkerNote::Gone(_))) => {
                    if workers[w as usize].alive {
                        workers[w as usize].alive = false;
                        awaiting -= 1;
                    }
                }
                Ok(_) => {} // heartbeats etc. before the barrier clears
                Err(_) => break,
            }
        }
        if !workers.iter().any(|w| w.alive) {
            return Err(CsnakeError::InvalidTarget(
                "distributed campaign: no worker completed the handshake".into(),
            ));
        }

        Ok(DistributedEngine {
            faults,
            reaching,
            coverage,
            workers,
            notes,
            cfg: dcfg,
            chaos: ChaosInjector::new(
                ChaosConfig::from_env().unwrap_or_else(|| cfg.driver.chaos.clone()),
            ),
            observer: Arc::new(NoopObserver),
            gaps: Vec::new(),
            runs: 0,
            batch_counter: 0,
            shard_counter: 0,
            worker_cache: BTreeMap::new(),
        })
    }

    /// Live workers remaining in the fleet.
    pub fn live_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.alive).count()
    }

    /// Asks every live worker to exit. Also invoked on drop; explicit
    /// calls just make shutdown visible in the calling code.
    pub fn shutdown(&mut self) {
        for w in &mut self.workers {
            if w.alive {
                let _ = w.tx.send(&WireMsg::Shutdown);
                w.alive = false;
            }
        }
    }

    fn lose_worker(
        workers: &mut [WorkerSlot],
        observer: &dyn CampaignObserver,
        pending: &mut std::collections::VecDeque<usize>,
        w: usize,
        reason: &str,
    ) {
        if !workers[w].alive {
            return;
        }
        workers[w].alive = false;
        observer.worker_lost(w as u32, reason);
        if let Some(si) = workers[w].busy.take() {
            // Its shard goes back to the head of the queue: recovering
            // in-flight work beats starting new work.
            pending.push_front(si);
        }
    }

    /// A shard that exhausted its delivery attempts: every cell becomes a
    /// gap with the canonical empty placeholder, exactly like a job that
    /// exhausts the in-process retry budget.
    fn degraded_result(batch: &[Job], shard: &Shard, reason: &str) -> ShardResult {
        let jobs = &batch[shard.range.clone()];
        ShardResult {
            outcomes: jobs
                .iter()
                .map(|&(f, t, _)| ExperimentOutcome {
                    fault: f,
                    test: t,
                    interference: Default::default(),
                    edges: Vec::new(),
                })
                .collect(),
            gaps: jobs.to_vec(),
            runs: 0,
            events: jobs
                .iter()
                .map(|&(f, t, p)| WorkerEvent::BatchFailed {
                    fault: f,
                    test: t,
                    phase: p,
                    reason: reason.to_string(),
                })
                .collect(),
        }
    }

    fn run_batch(
        &mut self,
        batch: &[Job],
        progress: &mut dyn FnMut(&[ShardSpan]),
    ) -> Vec<ExperimentOutcome> {
        if batch.is_empty() {
            return Vec::new();
        }
        let shard_jobs = self.cfg.shard_jobs.max(1);
        let mut shards: Vec<Shard> = Vec::new();
        let mut start = 0usize;
        while start < batch.len() {
            let end = (start + shard_jobs).min(batch.len());
            shards.push(Shard {
                ordinal: self.shard_counter,
                range: start..end,
                attempts: 0,
                done: None,
            });
            self.shard_counter += 1;
            start = end;
        }

        let mut pending: std::collections::VecDeque<usize> = (0..shards.len()).collect();
        let mut done = 0usize;
        let lease = Duration::from_millis(self.cfg.lease_ms);
        let abandoned =
            |attempts: u32| format!("shard abandoned after {attempts} delivery attempts");

        while done < shards.len() {
            // Lease expiries first: a silent worker must not hold its
            // shard hostage past the deadline.
            let now = Instant::now();
            for w in 0..self.workers.len() {
                if self.workers[w].alive
                    && self.workers[w].busy.is_some()
                    && now >= self.workers[w].deadline
                {
                    Self::lose_worker(
                        &mut self.workers,
                        self.observer.as_ref(),
                        &mut pending,
                        w,
                        "lease expired",
                    );
                }
            }

            // Dispatch pending shards onto idle live workers, burning
            // chaos-dropped deliveries as attempts.
            for w in 0..self.workers.len() {
                if !self.workers[w].alive || self.workers[w].busy.is_some() {
                    continue;
                }
                while let Some(si) = pending.pop_front() {
                    let ordinal = shards[si].ordinal;
                    shards[si].attempts += 1;
                    let attempts = shards[si].attempts;
                    if attempts > 1 {
                        self.observer
                            .shard_reassigned(ordinal, w as u32, attempts - 1);
                    }
                    // Chaos gates the send path: a stall is pure latency,
                    // a drop loses the frame in transit.
                    self.chaos.wire_stall_hook(ordinal as u64);
                    if self.chaos.wire_drop_hook(ordinal as u64) {
                        if attempts >= self.cfg.max_assign_attempts {
                            shards[si].done = Some(Self::degraded_result(
                                batch,
                                &shards[si],
                                &abandoned(attempts),
                            ));
                            done += 1;
                            continue; // this worker is still idle; next shard
                        }
                        pending.push_back(si);
                        continue;
                    }
                    let msg = WireMsg::Assign {
                        shard: ordinal,
                        jobs: batch[shards[si].range.clone()].to_vec(),
                    };
                    match self.workers[w].tx.send(&msg) {
                        Ok(()) => {
                            self.workers[w].busy = Some(si);
                            self.workers[w].deadline = Instant::now() + lease;
                            self.observer
                                .shard_assigned(ordinal, w as u32, shards[si].range.len());
                            break;
                        }
                        Err(e) => {
                            pending.push_front(si);
                            Self::lose_worker(
                                &mut self.workers,
                                self.observer.as_ref(),
                                &mut pending,
                                w,
                                &e.to_string(),
                            );
                            break;
                        }
                    }
                }
                if pending.is_empty() {
                    break;
                }
            }

            // A dead fleet cannot make progress: degrade what's left so
            // the campaign still completes (deterministically) instead of
            // hanging.
            if !self.workers.iter().any(|w| w.alive) {
                while let Some(si) = pending.pop_front() {
                    if shards[si].done.is_none() {
                        let attempts = shards[si].attempts;
                        shards[si].done = Some(Self::degraded_result(
                            batch,
                            &shards[si],
                            &format!("no live workers ({})", abandoned(attempts)),
                        ));
                        done += 1;
                    }
                }
            }
            if done >= shards.len() {
                break;
            }

            match self
                .notes
                .recv_timeout(Duration::from_millis(self.cfg.poll_ms))
            {
                Ok((
                    w,
                    WorkerNote::Msg(WireMsg::Result {
                        shard: ordinal,
                        outcomes,
                        gaps,
                        runs,
                        events,
                    }),
                )) => {
                    let w = w as usize;
                    if self.workers[w].alive {
                        self.workers[w].deadline = Instant::now() + lease;
                    }
                    let si = shards
                        .iter()
                        .position(|s| s.ordinal == ordinal && s.done.is_none());
                    if let Some(si) = si {
                        if outcomes.len() != shards[si].range.len() {
                            // Protocol violation: treat the worker as lost
                            // and let the shard be re-run.
                            Self::lose_worker(
                                &mut self.workers,
                                self.observer.as_ref(),
                                &mut pending,
                                w,
                                "result size mismatch",
                            );
                            continue;
                        }
                        shards[si].done = Some(ShardResult {
                            outcomes,
                            gaps,
                            runs,
                            events,
                        });
                        done += 1;
                        // Whoever holds the shard (possibly a later
                        // assignee, if the original came back first) is
                        // free again.
                        for slot in &mut self.workers {
                            if slot.busy == Some(si) {
                                slot.busy = None;
                            }
                        }
                        // Report every completed island so the runner can
                        // checkpoint mid-batch.
                        let spans: Vec<ShardSpan> = shards
                            .iter()
                            .filter_map(|s| {
                                s.done.as_ref().map(|r| ShardSpan {
                                    shard: s.ordinal,
                                    start: s.range.start,
                                    outcomes: r.outcomes.clone(),
                                    gaps: r.gaps.clone(),
                                    runs: r.runs,
                                })
                            })
                            .collect();
                        progress(&spans);
                    }
                }
                Ok((w, WorkerNote::Msg(WireMsg::Heartbeat { .. }))) => {
                    let w = w as usize;
                    if self.workers[w].alive && self.workers[w].busy.is_some() {
                        self.workers[w].deadline = Instant::now() + lease;
                    }
                }
                Ok((w, WorkerNote::Msg(WireMsg::Event { events, .. }))) => {
                    // Any frame from a worker is a life sign: an Event
                    // refreshes the lease exactly like a heartbeat.
                    let wi = w as usize;
                    if self.workers[wi].alive && self.workers[wi].busy.is_some() {
                        self.workers[wi].deadline = Instant::now() + lease;
                    }
                    for ev in &events {
                        if let WorkerEvent::TraceCache { hits, misses } = ev {
                            // Cumulative counters: last value wins.
                            self.worker_cache.insert(w, (*hits, *misses));
                        }
                        self.observer.event_forwarded(w, &forwarded(ev));
                    }
                }
                Ok((_, WorkerNote::Msg(_))) => {} // stray frames ignored
                Ok((w, WorkerNote::Gone(reason))) => {
                    Self::lose_worker(
                        &mut self.workers,
                        self.observer.as_ref(),
                        &mut pending,
                        w as usize,
                        &reason,
                    );
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    // Every reader thread has exited and their Gone notes
                    // are drained: nothing will ever arrive again.
                    for w in 0..self.workers.len() {
                        Self::lose_worker(
                            &mut self.workers,
                            self.observer.as_ref(),
                            &mut pending,
                            w,
                            "reader channel closed",
                        );
                    }
                }
            }
        }

        // Deterministic merge: batch order = shard order, and the workers'
        // supervisor telemetry replays in the same order with
        // coordinator-assigned batch ordinals.
        let mut out = Vec::with_capacity(batch.len());
        for s in shards {
            let res = s.done.expect("loop exits only when every shard is done");
            let batch_id = self.batch_counter;
            self.batch_counter += 1;
            for ev in &res.events {
                match ev {
                    WorkerEvent::BatchRetried {
                        failed_jobs,
                        attempt,
                        backoff_ms,
                    } => self
                        .observer
                        .batch_retried(batch_id, *failed_jobs, *attempt, *backoff_ms),
                    WorkerEvent::BatchFailed {
                        fault,
                        test,
                        phase,
                        reason,
                    } => self
                        .observer
                        .batch_failed(batch_id, *fault, *test, *phase, reason),
                    // Live-telemetry variants never reach a Result's event
                    // buffer (workers only buffer supervisor events); if a
                    // nonconforming worker ships them anyway, replaying
                    // would double-count against the coordinator's own
                    // deterministic stream — drop them.
                    WorkerEvent::ExperimentCompleted { .. } | WorkerEvent::TraceCache { .. } => {}
                }
            }
            self.gaps.extend(res.gaps);
            self.runs += res.runs;
            out.extend(res.outcomes);
        }
        out
    }
}

impl Drop for DistributedEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl ExperimentEngine for DistributedEngine {
    fn faults(&self) -> Vec<FaultId> {
        self.faults.clone()
    }

    fn tests_reaching(&self, f: FaultId) -> Vec<TestId> {
        self.reaching.get(&f).cloned().unwrap_or_default()
    }

    fn coverage_size(&self, t: TestId) -> usize {
        self.coverage.get(&t).copied().unwrap_or(0)
    }

    fn run_experiment(&mut self, f: FaultId, t: TestId, phase: u8) -> ExperimentOutcome {
        self.run_experiments(&[(f, t, phase)])
            .pop()
            .expect("one outcome per experiment")
    }

    fn run_experiments(&mut self, batch: &[Job]) -> Vec<ExperimentOutcome> {
        self.run_batch(batch, &mut |_| {})
    }

    fn run_experiments_checkpointed(
        &mut self,
        batch: &[Job],
        progress: &mut dyn FnMut(&[ShardSpan]),
    ) -> Vec<ExperimentOutcome> {
        self.run_batch(batch, progress)
    }

    fn take_gaps(&mut self) -> Vec<Job> {
        std::mem::take(&mut self.gaps)
    }

    fn runs_executed(&self) -> usize {
        self.runs
    }

    fn trace_cache_stats(&self) -> (usize, usize) {
        // Fleet-wide figure: sum of the last cumulative counters each
        // worker reported. A worker that died mid-campaign still counts
        // what it had reported — the caches were real even if the worker
        // is gone.
        self.worker_cache
            .values()
            .fold((0, 0), |(h, m), &(wh, wm)| (h + wh, m + wm))
    }

    fn attach_observer(&mut self, observer: Arc<dyn CampaignObserver>) {
        self.observer = observer;
        for (i, w) in self.workers.iter().enumerate() {
            if w.alive {
                self.observer.worker_connected(i as u32);
            }
        }
    }
}
