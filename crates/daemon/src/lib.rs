//! csnake-daemon: a distributed campaign service.
//!
//! The single-process pipeline runs every experiment on one machine's
//! worker pool. This crate scales the allocation stage out across
//! processes: a **coordinator** owns the staged [`Session`] and the 3PA
//! plan, shards each phase's batch across N **workers**, and merges the
//! results deterministically by batch index — so a distributed campaign's
//! [`DetectionReport`] is bit-identical to the single-process one, for any
//! worker count, including a fleet that loses workers mid-phase.
//!
//! The pieces, bottom-up:
//!
//! * [`wire`] — the frame codec: [`Persist`]-encoded messages in
//!   length-prefixed, versioned, checksummed `CSNW` containers (the
//!   `.csnake` snapshot discipline, applied to a socket).
//! * [`transport`] — endpoint plumbing over byte streams (TCP, child
//!   stdio) and in-process channels.
//! * [`worker`] — the stateless shard executor: resolve the target by
//!   name, rebuild the driver from the Hello's shipped profile artifact
//!   (re-profiling deterministically only when the artifact is empty),
//!   serve `Assign`→`Result`.
//! * [`coordinator`] — [`DistributedEngine`], an
//!   [`ExperimentEngine`](csnake_core::ExperimentEngine) that plans
//!   locally and executes remotely, with per-shard leases, reassignment,
//!   degrade-to-gaps, and wire-level chaos sites.
//! * [`targets`] — the shared target-name resolver.
//!
//! The `csnake-daemon` binary wraps the same pieces as `run` (spawn local
//! worker processes), `serve` (TCP coordinator) and `work` (a worker over
//! stdio or TCP).
//!
//! # In-process quick start
//!
//! ```
//! use csnake_daemon::{run_distributed, RunOptions};
//! use csnake_core::DetectConfig;
//!
//! let run = run_distributed("toy", DetectConfig::default(), 2, RunOptions::default())
//!     .expect("distributed campaign");
//! assert!(run.report.experiments_run > 0);
//! ```
//!
//! [`Session`]: csnake_core::Session
//! [`DetectionReport`]: csnake_core::DetectionReport
//! [`Persist`]: csnake_core::Persist

pub mod coordinator;
pub mod targets;
pub mod transport;
pub mod wire;
pub mod worker;

use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;

use csnake_core::alloc::AllocationStrategy;
use csnake_core::error::Result;
use csnake_core::{
    CampaignObserver, CampaignOutcome, DetectConfig, DetectionReport, Session, Stage, TargetSystem,
    ThreePhase,
};

pub use coordinator::{DaemonConfig, DistributedEngine};
pub use transport::{channel_pair, Endpoint};
pub use worker::{run_worker, WorkerOptions};

/// Options for [`run_distributed`].
#[derive(Default)]
pub struct RunOptions {
    /// Coordinator knobs (shard size, lease, attempts).
    pub daemon: DaemonConfig,
    /// Campaign observer for the coordinator-side session (workers report
    /// through the wire, not directly).
    pub observer: Option<Arc<dyn CampaignObserver>>,
    /// Stream mid-phase checkpoints to this path every `cadence`
    /// experiments, exactly like the single-process supervisor.
    pub checkpoint: Option<(PathBuf, usize)>,
    /// Per-worker fault-injection knobs (index-aligned; missing entries
    /// get well-behaved defaults). Test-only in spirit.
    pub worker_opts: Vec<WorkerOptions>,
}

/// A finished distributed campaign.
pub struct DistributedRun {
    /// The final report — bit-identical to the single-process run.
    pub report: DetectionReport,
    /// The allocation-stage artifact (budget, runs, edge counts).
    pub outcome: CampaignOutcome,
}

/// Spawns `n` in-process worker threads, each serving one side of a
/// channel transport, and returns the coordinator-side endpoints plus the
/// thread handles (joined once their connections close).
pub fn spawn_thread_workers(
    n: usize,
    opts: &[WorkerOptions],
) -> (Vec<Endpoint>, Vec<JoinHandle<Result<()>>>) {
    let mut endpoints = Vec::with_capacity(n);
    let mut handles = Vec::with_capacity(n);
    for i in 0..n {
        let (coord_side, worker_side) = channel_pair();
        let wopts = opts.get(i).cloned().unwrap_or_default();
        handles.push(std::thread::spawn(move || run_worker(worker_side, wopts)));
        endpoints.push(coord_side);
    }
    (endpoints, handles)
}

/// Drives a session from its current stage to a report on a worker fleet.
///
/// Profiles locally if needed (the coordinator always owns the plan),
/// runs the allocation stage through a [`DistributedEngine`] over
/// `endpoints`, then stitches and reports in-process. Works for fresh
/// sessions and for sessions resumed from (possibly mid-phase, possibly
/// shard-island-bearing) checkpoints.
pub fn drive_session(
    session: &mut Session<'_>,
    target_name: &str,
    endpoints: Vec<Endpoint>,
    dcfg: DaemonConfig,
    strategy: &dyn AllocationStrategy,
) -> Result<(DetectionReport, CampaignOutcome)> {
    if session.stage() == Stage::Built {
        session.profile()?;
    }
    let cfg = session.config().clone();
    let mut engine = {
        let target = session.target();
        let driver = session.engine_mut().expect("profiled session has a driver");
        DistributedEngine::connect(target_name, target, &cfg, driver, endpoints, dcfg)?
    };
    let outcome = session.allocate_with_engine(strategy, &mut engine)?;
    engine.shutdown();
    session.stitch()?;
    let report = session.report()?.clone();
    Ok((report, outcome))
}

/// Runs a complete distributed campaign against `target_name` with `n`
/// in-process worker threads — the library-level equivalent of
/// `csnake-daemon run -j N --target <name>`.
pub fn run_distributed(
    target_name: &str,
    cfg: DetectConfig,
    n: usize,
    opts: RunOptions,
) -> Result<DistributedRun> {
    let target = targets::resolve(target_name)?;
    run_on_target(target.as_ref(), target_name, cfg, n, opts)
}

fn run_on_target(
    target: &dyn TargetSystem,
    target_name: &str,
    cfg: DetectConfig,
    n: usize,
    opts: RunOptions,
) -> Result<DistributedRun> {
    let (endpoints, handles) = spawn_thread_workers(n, &opts.worker_opts);
    let mut builder = Session::builder(target).config(cfg);
    if let Some(observer) = &opts.observer {
        builder = builder.observer(Arc::clone(observer));
    }
    if let Some((path, cadence)) = &opts.checkpoint {
        builder = builder.auto_checkpoint(path, *cadence);
    }
    let mut session = builder.build()?;
    let driven = drive_session(
        &mut session,
        target_name,
        endpoints,
        opts.daemon,
        &ThreePhase::default(),
    );
    // Workers exit on Shutdown or hangup either way; reap them before
    // surfacing the campaign result so a failure can't leak threads.
    for h in handles {
        let _ = h.join();
    }
    let (report, outcome) = driven?;
    Ok(DistributedRun { report, outcome })
}
