//! Target resolution for daemon processes.
//!
//! Workers receive a target *name* in [`WireMsg::Hello`], never target
//! state: every process re-derives the system locally and proves agreement
//! through the registry fingerprint. Resolution goes through the
//! generator-aware resolver, so one namespace covers the hand-coded
//! builtins (`toy`, the paper targets), the scenario corpus by declared
//! name (`kafka-isr`, ...), and synthesized systems (`gen:<seed>`).
//!
//! [`WireMsg::Hello`]: crate::wire::WireMsg::Hello

use csnake_core::{Result, TargetSystem};

/// Resolves a target name exactly as the evaluation binaries do.
pub fn resolve(name: &str) -> Result<Box<dyn TargetSystem>> {
    csnake_gen::by_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_builtins_scenarios_and_generated_targets() {
        assert_eq!(resolve("toy").unwrap().name(), "toy");
        // Generated systems resolve under the `gen:<seed>` pseudo-name but
        // declare a descriptive `gen-<family>-<seed>` name — which is why
        // the wire protocol ships the *resolution* name, never `name()`.
        assert!(resolve("gen:5").unwrap().name().starts_with("gen-"));
        assert!(resolve("no-such-system").is_err());
    }
}
