//! Transport endpoints carrying framed [`WireMsg`]s.
//!
//! The coordinator drives each worker through an [`Endpoint`]: an owned
//! sending half plus an owned receiving half, split so a reader thread can
//! block on `recv` while the dispatch loop sends. Three concrete carriers
//! exist, all speaking the identical frame bytes:
//!
//! * [`FrameWriter`] / [`FrameReader`] over any `Write` / `Read` pair —
//!   TCP sockets (`serve` / `work --connect`) and child-process stdio
//!   (`run -j N`).
//! * [`channel_pair`] — an in-process connection over `mpsc`, used by
//!   thread workers and tests. Frames cross the channel *fully encoded*,
//!   so the codec (checksums included) is exercised even without a socket.

use std::io::{self, Read, Write};
use std::sync::mpsc::{channel, Receiver, Sender};

use crate::wire::{open_frame, read_msg, seal_frame, write_msg, WireMsg};

/// The sending half of a connection.
pub trait WireTx: Send {
    /// Sends one message; errors mean the peer is unreachable.
    fn send(&mut self, msg: &WireMsg) -> io::Result<()>;
}

/// The receiving half of a connection.
pub trait WireRx: Send {
    /// Receives the next message, blocking; `Ok(None)` is a clean hangup.
    fn recv(&mut self) -> io::Result<Option<WireMsg>>;
}

/// [`WireTx`] over any byte sink (socket write half, child stdin).
pub struct FrameWriter<W: Write + Send>(pub W);

impl<W: Write + Send> WireTx for FrameWriter<W> {
    fn send(&mut self, msg: &WireMsg) -> io::Result<()> {
        write_msg(&mut self.0, msg)
    }
}

/// [`WireRx`] over any byte source (socket read half, child stdout).
pub struct FrameReader<R: Read + Send>(pub R);

impl<R: Read + Send> WireRx for FrameReader<R> {
    fn recv(&mut self) -> io::Result<Option<WireMsg>> {
        read_msg(&mut self.0)
    }
}

/// In-process sending half: encoded frames cross an `mpsc` channel.
pub struct ChannelTx(Sender<Vec<u8>>);

impl WireTx for ChannelTx {
    fn send(&mut self, msg: &WireMsg) -> io::Result<()> {
        self.0
            .send(seal_frame(msg))
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer hung up"))
    }
}

/// In-process receiving half.
pub struct ChannelRx(Receiver<Vec<u8>>);

impl WireRx for ChannelRx {
    fn recv(&mut self) -> io::Result<Option<WireMsg>> {
        match self.0.recv() {
            Ok(bytes) => open_frame(&bytes).map(Some).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("wire decode failed: {e}"),
                )
            }),
            // Sender dropped: the peer exited, a clean hangup.
            Err(_) => Ok(None),
        }
    }
}

/// One side of a connection: what this side sends, the peer receives.
pub struct Endpoint {
    /// Sending half.
    pub tx: Box<dyn WireTx>,
    /// Receiving half.
    pub rx: Box<dyn WireRx>,
}

impl Endpoint {
    /// Builds an endpoint from a byte source and sink (e.g. a child
    /// process's stdout/stdin, or the two halves of a cloned socket).
    pub fn from_stream<R, W>(read: R, write: W) -> Self
    where
        R: Read + Send + 'static,
        W: Write + Send + 'static,
    {
        Endpoint {
            tx: Box::new(FrameWriter(write)),
            rx: Box::new(FrameReader(read)),
        }
    }
}

/// Creates a connected in-process endpoint pair `(a, b)`: messages sent on
/// `a.tx` arrive at `b.rx` and vice versa.
pub fn channel_pair() -> (Endpoint, Endpoint) {
    let (a_to_b, b_from_a) = channel();
    let (b_to_a, a_from_b) = channel();
    (
        Endpoint {
            tx: Box::new(ChannelTx(a_to_b)),
            rx: Box::new(ChannelRx(a_from_b)),
        },
        Endpoint {
            tx: Box::new(ChannelTx(b_to_a)),
            rx: Box::new(ChannelRx(b_from_a)),
        },
    )
}
