//! The coordinator/worker wire protocol.
//!
//! Frames reuse the snapshot wire discipline wholesale: every message is a
//! [`Persist`]-encoded payload sealed in a length-prefixed, versioned,
//! checksummed container — the same header layout as `.csnake` files, under
//! a distinct magic so a snapshot can never be mistaken for a frame (or
//! vice versa):
//!
//! ```text
//! "CSNW" | version: u32 LE | payload len: u64 LE | FNV-1a: u64 LE | payload
//! ```
//!
//! The decode path mirrors the snapshot reader's failure taxonomy exactly:
//! a frame cut short is [`CsnakeError::SnapshotTorn`] (retryable — the peer
//! died mid-write), a checksum or structure mismatch is
//! [`CsnakeError::SnapshotCorrupt`], and an unknown version is
//! [`CsnakeError::SnapshotVersion`]. Stream adapters translate those into
//! `io::ErrorKind::InvalidData` at the socket boundary.
//!
//! Message flow: the coordinator opens with [`WireMsg::Hello`] (target
//! name, registry fingerprint, full campaign config); the worker re-derives
//! the target locally, answers [`WireMsg::HelloAck`], then serves
//! [`WireMsg::Assign`] / [`WireMsg::Result`] pairs until
//! [`WireMsg::Shutdown`] or EOF. [`WireMsg::Heartbeat`] keeps the worker's
//! lease alive across long experiment batches; supervisor telemetry rides
//! inside `Result` as [`WorkerEvent`]s so the coordinator can replay it in
//! deterministic shard-merge order. [`WireMsg::Event`] additionally ships a
//! *live* copy of a completed shard's events ahead of its `Result` — the
//! coordinator re-emits them with worker attribution (observer
//! `event_forwarded`) for fleet telemetry, but never merges them into
//! campaign results, so losing or reordering Event frames is harmless.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};

use csnake_core::error::{CsnakeError, Result};
use csnake_core::{fnv1a_bytes, DetectConfig, ExperimentOutcome, Persist, Reader, Writer};
use csnake_inject::{FaultId, RunTrace, TestId};

/// Frame magic: `CSNW` ("CSnake Wire"), deliberately one letter away from
/// the snapshot magic so hexdumps distinguish the two at a glance.
pub const WIRE_MAGIC: [u8; 4] = *b"CSNW";

/// Current protocol version. Bumped on any incompatible message change;
/// there is no cross-version negotiation — coordinator and workers are one
/// build, so a mismatch is a deployment error and fails the handshake.
/// Version 2 added the [`WireMsg::Event`] telemetry frame and the
/// [`WorkerEvent::ExperimentCompleted`] / [`WorkerEvent::TraceCache`]
/// event kinds. Version 3 ships the coordinator's profile traces inside
/// [`WireMsg::Hello`] so workers rebuild their driver from the artifact
/// instead of re-profiling the target from scratch.
pub const WIRE_VERSION: u32 = 3;

/// Fixed header length: magic + version + payload length + checksum.
pub const WIRE_HEADER_LEN: usize = 4 + 4 + 8 + 8;

/// Upper bound accepted for one frame's payload. Far above any real
/// message (the largest is a `Result` for one shard); its purpose is to
/// turn a garbled length field into a typed error instead of an
/// out-of-memory allocation.
pub const MAX_FRAME_PAYLOAD: u64 = 1 << 30;

/// One planned experiment cell: `(fault, test, phase)`.
pub type Job = (FaultId, TestId, u8);

/// Supervisor telemetry collected on a worker while running one shard,
/// shipped back inside [`WireMsg::Result`]. Batch ordinals are assigned by
/// the *coordinator* at merge time (worker-local counters would interleave
/// nondeterministically), so the wire form carries none.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerEvent {
    /// The worker's driver retried part of the shard after job panics.
    BatchRetried {
        /// Jobs that failed and were re-queued.
        failed_jobs: usize,
        /// Retry attempt number (1-based).
        attempt: u32,
        /// Backoff pause the worker slept before the retry.
        backoff_ms: u64,
    },
    /// A cell exhausted the worker's retry budget and became a gap.
    BatchFailed {
        /// The abandoned cell's fault.
        fault: FaultId,
        /// The abandoned cell's test.
        test: TestId,
        /// The abandoned cell's 3PA phase.
        phase: u8,
        /// Panic message of the final attempt.
        reason: String,
    },
    /// One `(fault, test)` experiment finished on the worker. Only ever
    /// shipped in [`WireMsg::Event`] frames (the `Result` carries the full
    /// outcomes); the summary exists for live fleet attribution.
    ExperimentCompleted {
        /// The injected fault.
        fault: FaultId,
        /// The workload it was injected into.
        test: TestId,
        /// Causal edges the experiment's FCA produced (pre-dedup).
        edges: usize,
    },
    /// The worker's cumulative injection-run cache counters, shipped with
    /// each completed shard so the coordinator can sum fleet-wide cache
    /// stats (`hits`/`misses` are totals, not deltas — last value wins).
    TraceCache {
        /// Cache hits so far on this worker.
        hits: usize,
        /// Cache misses so far on this worker.
        misses: usize,
    },
}

/// Every message of the coordinator/worker protocol.
// `Hello` dwarfs the other variants (it inlines the whole campaign
// config plus the profile artifact), but exactly one is built per
// connection and consumed immediately — boxing would only add
// indirection to the codec.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum WireMsg {
    /// Coordinator → worker: campaign preamble. The worker resolves
    /// `target` by name, rebuilds its driver from the shipped `profiles`
    /// artifact (or profiles locally when the artifact is empty —
    /// profiling is deterministic in the config's seeds either way), and
    /// must arrive at `registry_fp` — a mismatched fingerprint means
    /// coordinator and worker see different systems and the handshake
    /// fails.
    Hello {
        /// Target name as accepted by the generator-aware resolver
        /// (builtins, scenario corpus, `gen:<seed>`).
        target: String,
        /// Expected registry fingerprint of the resolved target.
        registry_fp: u64,
        /// Full campaign configuration; the worker only consults
        /// `cfg.driver`, but shipping the whole struct keeps the frame
        /// self-describing.
        cfg: DetectConfig,
        /// Identity assigned to this worker by the coordinator.
        worker: u32,
        /// Lease duration: the worker must be heard from (heartbeat or
        /// result) at least this often or its shards are reassigned.
        lease_ms: u64,
        /// The coordinator's profile traces, keyed by test. Non-empty on
        /// every coordinator Hello: shipping the artifact spares each
        /// worker the full profiling pass (the handshake's one slow step)
        /// and is result-identical because workers would have re-derived
        /// bit-equal traces from the same seeds.
        profiles: BTreeMap<TestId, Vec<RunTrace>>,
    },
    /// Worker → coordinator: handshake completion, fingerprint echoed.
    HelloAck {
        /// The worker's assigned identity.
        worker: u32,
        /// Fingerprint of the registry the worker actually built.
        registry_fp: u64,
    },
    /// Coordinator → worker: one shard of independent experiments.
    Assign {
        /// Global shard ordinal (unique across the whole campaign).
        shard: u32,
        /// The shard's cells, in plan order.
        jobs: Vec<Job>,
    },
    /// Worker → coordinator: a completed shard.
    Result {
        /// Ordinal of the shard these outcomes belong to.
        shard: u32,
        /// One outcome per assigned job, in job order (gap cells hold the
        /// usual empty placeholder).
        outcomes: Vec<ExperimentOutcome>,
        /// Cells abandoned by the worker's retry supervisor.
        gaps: Vec<Job>,
        /// Simulator runs this shard cost on the worker.
        runs: usize,
        /// Supervisor telemetry, replayed by the coordinator in merge
        /// order.
        events: Vec<WorkerEvent>,
    },
    /// Worker → coordinator: lease keep-alive while computing.
    Heartbeat {
        /// The sending worker.
        worker: u32,
        /// Monotonic per-worker sequence number.
        seq: u64,
    },
    /// Coordinator → worker: drain and exit cleanly.
    Shutdown,
    /// Worker → coordinator: live telemetry. A copy of a completed shard's
    /// supervisor events plus per-experiment summaries, sent *before* the
    /// shard's `Result` so a fleet operator sees work as it lands. Any
    /// frame from a worker is also a life sign, so Event refreshes the
    /// sender's lease like a heartbeat. Purely operational: the
    /// coordinator re-emits these through the observer's `event_forwarded`
    /// and never folds them into campaign results.
    Event {
        /// The sending worker.
        worker: u32,
        /// The events, in worker-side occurrence order.
        events: Vec<WorkerEvent>,
    },
}

impl Persist for WorkerEvent {
    fn put(&self, w: &mut Writer) {
        match self {
            WorkerEvent::BatchRetried {
                failed_jobs,
                attempt,
                backoff_ms,
            } => {
                0u8.put(w);
                failed_jobs.put(w);
                attempt.put(w);
                backoff_ms.put(w);
            }
            WorkerEvent::BatchFailed {
                fault,
                test,
                phase,
                reason,
            } => {
                1u8.put(w);
                fault.put(w);
                test.put(w);
                phase.put(w);
                reason.put(w);
            }
            WorkerEvent::ExperimentCompleted { fault, test, edges } => {
                2u8.put(w);
                fault.put(w);
                test.put(w);
                edges.put(w);
            }
            WorkerEvent::TraceCache { hits, misses } => {
                3u8.put(w);
                hits.put(w);
                misses.put(w);
            }
        }
    }

    fn load(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match u8::load(r)? {
            0 => WorkerEvent::BatchRetried {
                failed_jobs: usize::load(r)?,
                attempt: u32::load(r)?,
                backoff_ms: u64::load(r)?,
            },
            1 => WorkerEvent::BatchFailed {
                fault: FaultId::load(r)?,
                test: TestId::load(r)?,
                phase: u8::load(r)?,
                reason: String::load(r)?,
            },
            2 => WorkerEvent::ExperimentCompleted {
                fault: FaultId::load(r)?,
                test: TestId::load(r)?,
                edges: usize::load(r)?,
            },
            3 => WorkerEvent::TraceCache {
                hits: usize::load(r)?,
                misses: usize::load(r)?,
            },
            n => {
                return Err(CsnakeError::SnapshotCorrupt(format!(
                    "bad worker-event tag {n}"
                )))
            }
        })
    }
}

impl Persist for WireMsg {
    fn put(&self, w: &mut Writer) {
        match self {
            WireMsg::Hello {
                target,
                registry_fp,
                cfg,
                worker,
                lease_ms,
                profiles,
            } => {
                0u8.put(w);
                target.put(w);
                registry_fp.put(w);
                cfg.put(w);
                worker.put(w);
                lease_ms.put(w);
                profiles.put(w);
            }
            WireMsg::HelloAck {
                worker,
                registry_fp,
            } => {
                1u8.put(w);
                worker.put(w);
                registry_fp.put(w);
            }
            WireMsg::Assign { shard, jobs } => {
                2u8.put(w);
                shard.put(w);
                jobs.put(w);
            }
            WireMsg::Result {
                shard,
                outcomes,
                gaps,
                runs,
                events,
            } => {
                3u8.put(w);
                shard.put(w);
                outcomes.put(w);
                gaps.put(w);
                runs.put(w);
                events.put(w);
            }
            WireMsg::Heartbeat { worker, seq } => {
                4u8.put(w);
                worker.put(w);
                seq.put(w);
            }
            WireMsg::Shutdown => 5u8.put(w),
            WireMsg::Event { worker, events } => {
                6u8.put(w);
                worker.put(w);
                events.put(w);
            }
        }
    }

    fn load(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match u8::load(r)? {
            0 => WireMsg::Hello {
                target: String::load(r)?,
                registry_fp: u64::load(r)?,
                cfg: DetectConfig::load(r)?,
                worker: u32::load(r)?,
                lease_ms: u64::load(r)?,
                profiles: BTreeMap::load(r)?,
            },
            1 => WireMsg::HelloAck {
                worker: u32::load(r)?,
                registry_fp: u64::load(r)?,
            },
            2 => WireMsg::Assign {
                shard: u32::load(r)?,
                jobs: Vec::load(r)?,
            },
            3 => WireMsg::Result {
                shard: u32::load(r)?,
                outcomes: Vec::load(r)?,
                gaps: Vec::load(r)?,
                runs: usize::load(r)?,
                events: Vec::load(r)?,
            },
            4 => WireMsg::Heartbeat {
                worker: u32::load(r)?,
                seq: u64::load(r)?,
            },
            5 => WireMsg::Shutdown,
            6 => WireMsg::Event {
                worker: u32::load(r)?,
                events: Vec::load(r)?,
            },
            n => {
                return Err(CsnakeError::SnapshotCorrupt(format!(
                    "bad wire-message tag {n}"
                )))
            }
        })
    }
}

/// Encodes one message into a complete frame (header + payload).
pub fn seal_frame(msg: &WireMsg) -> Vec<u8> {
    let mut w = Writer::with_version(WIRE_VERSION);
    msg.put(&mut w);
    let payload = w.into_bytes();
    let mut out = Vec::with_capacity(WIRE_HEADER_LEN + payload.len());
    out.extend_from_slice(&WIRE_MAGIC);
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a_bytes(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes one complete frame, verifying magic, version, length and
/// checksum, and requiring the payload to be consumed exactly.
pub fn open_frame(bytes: &[u8]) -> Result<WireMsg> {
    if bytes.len() < WIRE_HEADER_LEN {
        return Err(CsnakeError::SnapshotTorn {
            expected: WIRE_HEADER_LEN as u64,
            found: bytes.len() as u64,
        });
    }
    if bytes[0..4] != WIRE_MAGIC {
        return Err(CsnakeError::SnapshotCorrupt(format!(
            "bad wire magic {:02x?}",
            &bytes[0..4]
        )));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("sized slice"));
    if version != WIRE_VERSION {
        return Err(CsnakeError::SnapshotVersion {
            found: version,
            supported: WIRE_VERSION,
        });
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().expect("sized slice"));
    if len > MAX_FRAME_PAYLOAD {
        return Err(CsnakeError::SnapshotCorrupt(format!(
            "wire frame claims {len} payload bytes (cap {MAX_FRAME_PAYLOAD})"
        )));
    }
    let expected_total = WIRE_HEADER_LEN as u64 + len;
    if (bytes.len() as u64) < expected_total {
        return Err(CsnakeError::SnapshotTorn {
            expected: expected_total,
            found: bytes.len() as u64,
        });
    }
    let payload = &bytes[WIRE_HEADER_LEN..expected_total as usize];
    let sum = u64::from_le_bytes(bytes[16..24].try_into().expect("sized slice"));
    if fnv1a_bytes(payload) != sum {
        return Err(CsnakeError::SnapshotCorrupt(
            "wire frame checksum mismatch".into(),
        ));
    }
    let mut r = Reader::with_version(payload, version);
    let msg = WireMsg::load(&mut r)?;
    if !r.finished() {
        return Err(CsnakeError::SnapshotCorrupt(
            "trailing bytes after wire message".into(),
        ));
    }
    Ok(msg)
}

/// Writes one framed message to a byte stream and flushes it (frames are
/// request/response units; buffering across them would deadlock the
/// protocol).
pub fn write_msg<W: Write>(w: &mut W, msg: &WireMsg) -> io::Result<()> {
    w.write_all(&seal_frame(msg))?;
    w.flush()
}

/// Reads one framed message from a byte stream.
///
/// A clean EOF *between* frames is `Ok(None)` — the peer hung up, which is
/// a normal shutdown path. EOF *inside* a frame, or any decode failure, is
/// an `io::Error` (`UnexpectedEof` / `InvalidData` respectively).
pub fn read_msg<R: Read>(r: &mut R) -> io::Result<Option<WireMsg>> {
    let mut frame = vec![0u8; WIRE_HEADER_LEN];
    let mut got = 0usize;
    while got < WIRE_HEADER_LEN {
        match r.read(&mut frame[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("wire frame header cut short at {got} bytes"),
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u64::from_le_bytes(frame[8..16].try_into().expect("sized slice"));
    if len > MAX_FRAME_PAYLOAD {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("wire frame claims {len} payload bytes (cap {MAX_FRAME_PAYLOAD})"),
        ));
    }
    frame.resize(WIRE_HEADER_LEN + len as usize, 0);
    r.read_exact(&mut frame[WIRE_HEADER_LEN..])?;
    open_frame(&frame).map(Some).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("wire decode failed: {e}"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csnake_core::{CausalEdge, CompatState, EdgeKind};
    use proptest::collection;
    use proptest::prelude::*;

    fn edge(cause: u32, effect: u32, kind: EdgeKind, test: u32, phase: u8) -> CausalEdge {
        CausalEdge {
            cause: FaultId(cause),
            effect: FaultId(effect),
            kind,
            test: TestId(test),
            phase,
            cause_state: CompatState::Occurrences(Vec::new()),
            effect_state: CompatState::Occurrences(Vec::new()),
        }
    }

    fn outcome(
        fault: u32,
        test: u32,
        interference: &[u32],
        edges: Vec<CausalEdge>,
    ) -> ExperimentOutcome {
        ExperimentOutcome {
            fault: FaultId(fault),
            test: TestId(test),
            interference: interference.iter().map(|&f| FaultId(f)).collect(),
            edges,
        }
    }

    /// A small but non-trivial profile artifact for handshake frames.
    fn sample_profiles() -> BTreeMap<TestId, Vec<RunTrace>> {
        let mut trace = RunTrace::default();
        trace.coverage.insert(FaultId(1));
        trace.coverage.insert(FaultId(4));
        trace.loop_counts.insert(FaultId(1), 17);
        trace.hook_count = 99;
        trace.events = 1_234;
        let mut profiles = BTreeMap::new();
        profiles.insert(TestId(0), vec![trace.clone(), trace]);
        profiles.insert(TestId(2), vec![RunTrace::default()]);
        profiles
    }

    /// One non-trivial message per protocol variant.
    fn sample_messages() -> Vec<WireMsg> {
        let mut cfg = DetectConfig::default();
        cfg.driver.reps = 3;
        cfg.driver.base_seed = 0xDECAF;
        vec![
            WireMsg::Hello {
                target: "kafka-isr".into(),
                registry_fp: 0xFEED_BEEF_u64,
                cfg,
                worker: 3,
                lease_ms: 1_500,
                profiles: sample_profiles(),
            },
            WireMsg::HelloAck {
                worker: 3,
                registry_fp: 0xFEED_BEEF_u64,
            },
            WireMsg::Assign {
                shard: 17,
                jobs: vec![
                    (FaultId(1), TestId(2), 1),
                    (FaultId(9), TestId(0), 2),
                    (FaultId(4), TestId(7), 3),
                ],
            },
            WireMsg::Result {
                shard: 17,
                outcomes: vec![
                    outcome(1, 2, &[4, 6], vec![edge(1, 4, EdgeKind::ED, 2, 1)]),
                    outcome(9, 0, &[], Vec::new()),
                ],
                gaps: vec![(FaultId(4), TestId(7), 3)],
                runs: 42,
                events: vec![
                    WorkerEvent::BatchRetried {
                        failed_jobs: 2,
                        attempt: 1,
                        backoff_ms: 10,
                    },
                    WorkerEvent::BatchFailed {
                        fault: FaultId(4),
                        test: TestId(7),
                        phase: 3,
                        reason: "job panicked: chaos".into(),
                    },
                ],
            },
            WireMsg::Heartbeat { worker: 3, seq: 99 },
            WireMsg::Shutdown,
            WireMsg::Event {
                worker: 3,
                events: vec![
                    WorkerEvent::ExperimentCompleted {
                        fault: FaultId(1),
                        test: TestId(2),
                        edges: 4,
                    },
                    WorkerEvent::TraceCache {
                        hits: 12,
                        misses: 30,
                    },
                    WorkerEvent::BatchRetried {
                        failed_jobs: 1,
                        attempt: 2,
                        backoff_ms: 20,
                    },
                ],
            },
        ]
    }

    #[test]
    fn every_message_type_roundtrips_bit_exactly() {
        for msg in sample_messages() {
            let frame = seal_frame(&msg);
            let back = open_frame(&frame).expect("frame decodes");
            assert_eq!(
                seal_frame(&back),
                frame,
                "re-encoding {msg:?} must reproduce the frame"
            );
        }
    }

    #[test]
    fn truncation_at_every_boundary_is_a_typed_error() {
        // Mirrors the snapshot torn-file sweep: a frame cut at ANY byte
        // boundary must fail loudly, and cuts the header/length declare
        // (as opposed to garbled content) must be the retryable Torn kind.
        for msg in sample_messages() {
            let frame = seal_frame(&msg);
            for cut in 0..frame.len() {
                match open_frame(&frame[..cut]) {
                    Err(CsnakeError::SnapshotTorn { expected, found }) => {
                        assert_eq!(found, cut as u64);
                        assert!(expected > found, "torn must promise more than present");
                    }
                    Err(other) => panic!("cut at {cut}: expected Torn, got {other:?}"),
                    Ok(m) => panic!("cut at {cut} still decoded {m:?}"),
                }
            }
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        // The checksum covers the payload; the header fields are each
        // individually validated. Net effect: no single corrupted byte
        // anywhere in a frame can slip through.
        let frame = seal_frame(&sample_messages().remove(3));
        for i in 0..frame.len() {
            let mut garbled = frame.clone();
            garbled[i] ^= 0x20;
            assert!(
                open_frame(&garbled).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn garbled_checksum_is_corrupt_not_torn() {
        let mut frame = seal_frame(&WireMsg::Shutdown);
        frame[16] ^= 0xFF; // first checksum byte
        match open_frame(&frame) {
            Err(CsnakeError::SnapshotCorrupt(msg)) => {
                assert!(msg.contains("checksum"), "{msg}")
            }
            other => panic!("expected SnapshotCorrupt, got {other:?}"),
        }
    }

    #[test]
    fn version_bump_is_rejected_typed() {
        let mut frame = seal_frame(&WireMsg::Shutdown);
        frame[4..8].copy_from_slice(&(WIRE_VERSION + 1).to_le_bytes());
        match open_frame(&frame) {
            Err(CsnakeError::SnapshotVersion { found, supported }) => {
                assert_eq!(found, WIRE_VERSION + 1);
                assert_eq!(supported, WIRE_VERSION);
            }
            other => panic!("expected SnapshotVersion, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_magic_is_not_wire_magic() {
        // A `.csnake` file fed to the wire decoder must fail on the magic,
        // not limp into payload parsing.
        let mut frame = seal_frame(&WireMsg::Shutdown);
        frame[0..4].copy_from_slice(&csnake_core::SNAPSHOT_MAGIC);
        match open_frame(&frame) {
            Err(CsnakeError::SnapshotCorrupt(msg)) => assert!(msg.contains("magic"), "{msg}"),
            other => panic!("expected SnapshotCorrupt, got {other:?}"),
        }
    }

    #[test]
    fn stream_reads_frames_back_to_back_and_reports_clean_eof() {
        let mut stream = Vec::new();
        let msgs = sample_messages();
        for m in &msgs {
            write_msg(&mut stream, m).expect("vec write");
        }
        let mut cursor = std::io::Cursor::new(stream.clone());
        for m in &msgs {
            let got = read_msg(&mut cursor).expect("read").expect("not eof");
            assert_eq!(seal_frame(&got), seal_frame(m));
        }
        assert!(read_msg(&mut cursor).expect("clean eof").is_none());

        // EOF *inside* a frame is an error, at every cut point.
        for cut in 1..stream.len() {
            let mut torn = std::io::Cursor::new(stream[..cut].to_vec());
            loop {
                match read_msg(&mut torn) {
                    Ok(Some(_)) => continue,
                    Ok(None) => {
                        // Only legal if the cut landed exactly on a frame
                        // boundary.
                        let consumed = torn.position() as usize;
                        assert_eq!(consumed, cut, "cut {cut} swallowed a partial frame");
                        break;
                    }
                    Err(e) => {
                        assert!(
                            matches!(
                                e.kind(),
                                io::ErrorKind::UnexpectedEof | io::ErrorKind::InvalidData
                            ),
                            "cut {cut}: {e:?}"
                        );
                        break;
                    }
                }
            }
        }
    }

    // -- property coverage: randomized payloads for every message type ----

    fn arb_job() -> impl Strategy<Value = Job> {
        (0u32..500, 0u32..100, 0u8..4).prop_map(|(f, t, p)| (FaultId(f), TestId(t), p))
    }

    fn arb_edge() -> impl Strategy<Value = CausalEdge> {
        (0u32..500, 0u32..500, 0u8..6, 0u32..100, 0u8..4).prop_map(|(c, e, k, t, p)| {
            let kind = match k {
                0 => EdgeKind::ED,
                1 => EdgeKind::SD,
                2 => EdgeKind::EI,
                3 => EdgeKind::SI,
                4 => EdgeKind::Icfg,
                _ => EdgeKind::Cfg,
            };
            edge(c, e, kind, t, p)
        })
    }

    fn arb_outcome() -> impl Strategy<Value = ExperimentOutcome> {
        (
            0u32..500,
            0u32..100,
            collection::btree_set(0u32..500, 0..6),
            collection::vec(arb_edge(), 0..4),
        )
            .prop_map(|(f, t, interference, edges)| ExperimentOutcome {
                fault: FaultId(f),
                test: TestId(t),
                interference: interference.into_iter().map(FaultId).collect(),
                edges,
            })
    }

    fn arb_event() -> impl Strategy<Value = WorkerEvent> {
        (0u8..4, 0usize..50, 1u32..5, 0u64..5_000, arb_job()).prop_map(
            |(tag, failed_jobs, attempt, backoff_ms, (f, t, p))| match tag {
                0 => WorkerEvent::BatchRetried {
                    failed_jobs,
                    attempt,
                    backoff_ms,
                },
                1 => WorkerEvent::BatchFailed {
                    fault: f,
                    test: t,
                    phase: p,
                    reason: format!("job panicked after {backoff_ms}ms"),
                },
                2 => WorkerEvent::ExperimentCompleted {
                    fault: f,
                    test: t,
                    edges: failed_jobs,
                },
                _ => WorkerEvent::TraceCache {
                    hits: failed_jobs,
                    misses: attempt as usize,
                },
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn random_payloads_roundtrip_for_every_message_type(
            jobs in collection::vec(arb_job(), 0..12),
            outcomes in collection::vec(arb_outcome(), 0..6),
            events in collection::vec(arb_event(), 0..4),
            shard in 0u32..10_000,
            worker in 0u32..64,
            seq in 0u64..1_000_000,
            runs in 0usize..100_000,
            lease_ms in 1u64..60_000,
        ) {
            let mut cfg = DetectConfig::default();
            cfg.driver.base_seed = seq;
            let gaps = jobs.clone();
            let events2 = events.clone();
            let msgs = [
                WireMsg::Hello {
                    target: format!("gen:{seq}"),
                    registry_fp: seq.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    cfg,
                    worker,
                    lease_ms,
                    profiles: {
                        let mut trace = RunTrace {
                            hook_count: seq,
                            ..Default::default()
                        };
                        for (f, t, _) in &gaps {
                            trace.coverage.insert(*f);
                            trace.loop_counts.insert(*f, t.0 as u64);
                        }
                        let mut profiles = BTreeMap::new();
                        profiles.insert(TestId(worker), vec![trace]);
                        profiles
                    },
                },
                WireMsg::HelloAck { worker, registry_fp: seq },
                WireMsg::Assign { shard, jobs },
                WireMsg::Result { shard, outcomes, gaps, runs, events },
                WireMsg::Heartbeat { worker, seq },
                WireMsg::Shutdown,
                WireMsg::Event { worker, events: events2 },
            ];
            for msg in msgs {
                let frame = seal_frame(&msg);
                let back = open_frame(&frame).expect("random frame decodes");
                prop_assert_eq!(seal_frame(&back), frame);
            }
        }
    }
}
