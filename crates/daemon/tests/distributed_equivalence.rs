//! The daemon's headline contract: a distributed campaign produces a
//! `DetectionReport` Debug-identical to the single-process
//! `Session::run_to_report`, for any worker count.

use csnake_core::{DetectConfig, Session, ThreePhase};
use csnake_daemon::{run_distributed, DaemonConfig, RunOptions};

/// Small-but-real campaign config (the chaos-smoke settings).
fn fast_config() -> DetectConfig {
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800];
    cfg.driver.retry.backoff_base_ms = 1;
    cfg
}

/// `(report debug, runs_executed)` of the plain in-process pipeline.
fn single_process(target_name: &str) -> (String, usize) {
    let target = csnake_daemon::targets::resolve(target_name).expect("target resolves");
    let mut session = Session::builder(target.as_ref())
        .config(fast_config())
        .build()
        .expect("session builds");
    let report = format!(
        "{:?}",
        session
            .run_to_report(&ThreePhase::default())
            .expect("single-process campaign")
    );
    (report, session.runs_executed())
}

fn distributed(target_name: &str, workers: usize) -> (String, usize) {
    let opts = RunOptions {
        daemon: DaemonConfig {
            // Tight lease: these tests must also prove that healthy
            // heartbeat-keeping workers are never falsely reaped.
            lease_ms: 500,
            ..DaemonConfig::default()
        },
        ..RunOptions::default()
    };
    let run =
        run_distributed(target_name, fast_config(), workers, opts).expect("distributed campaign");
    (format!("{:?}", run.report), run.outcome.runs_executed)
}

#[test]
fn toy_reports_are_identical_across_worker_counts() {
    let (baseline, baseline_runs) = single_process("toy");
    for workers in [1, 2, 4] {
        let (report, runs) = distributed("toy", workers);
        assert_eq!(report, baseline, "toy, {workers} workers");
        assert_eq!(runs, baseline_runs, "toy runs, {workers} workers");
    }
}

#[test]
fn generated_target_reports_are_identical_across_worker_counts() {
    let (baseline, baseline_runs) = single_process("gen:5");
    for workers in [1, 4] {
        let (report, runs) = distributed("gen:5", workers);
        assert_eq!(report, baseline, "gen:5, {workers} workers");
        assert_eq!(runs, baseline_runs, "gen:5 runs, {workers} workers");
    }
}

#[test]
fn scenario_corpus_target_report_is_identical_distributed() {
    let (baseline, baseline_runs) = single_process("kafka-isr");
    let (report, runs) = distributed("kafka-isr", 2);
    assert_eq!(report, baseline);
    assert_eq!(runs, baseline_runs);
}
