//! The daemon's headline contract: a distributed campaign produces a
//! `DetectionReport` Debug-identical to the single-process
//! `Session::run_to_report`, for any worker count.

use csnake_core::{DetectConfig, Session, ThreePhase};
use csnake_daemon::{run_distributed, DaemonConfig, RunOptions};

/// Small-but-real campaign config (the chaos-smoke settings).
fn fast_config() -> DetectConfig {
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800];
    cfg.driver.retry.backoff_base_ms = 1;
    cfg
}

/// `(report debug, runs_executed)` of the plain in-process pipeline.
fn single_process(target_name: &str) -> (String, usize) {
    let target = csnake_daemon::targets::resolve(target_name).expect("target resolves");
    let mut session = Session::builder(target.as_ref())
        .config(fast_config())
        .build()
        .expect("session builds");
    let report = format!(
        "{:?}",
        session
            .run_to_report(&ThreePhase::default())
            .expect("single-process campaign")
    );
    (report, session.runs_executed())
}

fn distributed(target_name: &str, workers: usize) -> (String, usize) {
    let opts = RunOptions {
        daemon: DaemonConfig {
            // Tight lease: these tests must also prove that healthy
            // heartbeat-keeping workers are never falsely reaped.
            lease_ms: 500,
            ..DaemonConfig::default()
        },
        ..RunOptions::default()
    };
    let run =
        run_distributed(target_name, fast_config(), workers, opts).expect("distributed campaign");
    (format!("{:?}", run.report), run.outcome.runs_executed)
}

#[test]
fn toy_reports_are_identical_across_worker_counts() {
    let (baseline, baseline_runs) = single_process("toy");
    for workers in [1, 2, 4] {
        let (report, runs) = distributed("toy", workers);
        assert_eq!(report, baseline, "toy, {workers} workers");
        assert_eq!(runs, baseline_runs, "toy runs, {workers} workers");
    }
}

#[test]
fn generated_target_reports_are_identical_across_worker_counts() {
    let (baseline, baseline_runs) = single_process("gen:5");
    for workers in [1, 4] {
        let (report, runs) = distributed("gen:5", workers);
        assert_eq!(report, baseline, "gen:5, {workers} workers");
        assert_eq!(runs, baseline_runs, "gen:5 runs, {workers} workers");
    }
}

#[test]
fn scenario_corpus_target_report_is_identical_distributed() {
    let (baseline, baseline_runs) = single_process("kafka-isr");
    let (report, runs) = distributed("kafka-isr", 2);
    assert_eq!(report, baseline);
    assert_eq!(runs, baseline_runs);
}

/// The v3 handshake ships the coordinator's profile artifact so workers
/// skip the from-scratch profiling pass. This must be a pure startup-cost
/// optimization: a worker handed the artifact and a worker forced to
/// re-profile (empty artifact) must answer the same `Assign` with
/// bit-identical frames.
#[test]
fn shipped_profile_artifact_is_frame_identical_to_reprofiling() {
    use csnake_core::alloc::ExperimentEngine as _;
    use csnake_core::{registry_fingerprint, DetectConfig, Driver};
    use csnake_daemon::wire::{seal_frame, WireMsg};
    use csnake_daemon::{channel_pair, run_worker, WorkerOptions};
    use std::collections::BTreeMap;

    let target = csnake_daemon::targets::resolve("toy").expect("target resolves");
    let cfg: DetectConfig = fast_config();
    let driver = Driver::new(target.as_ref(), cfg.driver.clone());
    let registry_fp = registry_fingerprint(&target.registry());
    // A couple of real plan cells: first two faults, any test reaching them.
    let jobs: Vec<_> = driver
        .faults()
        .into_iter()
        .filter_map(|f| driver.tests_reaching(f).first().map(|&t| (f, t, 1u8)))
        .take(3)
        .collect();
    assert!(!jobs.is_empty(), "toy target must have injectable cells");

    let serve = |profiles: BTreeMap<_, _>| -> Vec<Vec<u8>> {
        let (coord, worker_side) = channel_pair();
        let handle = std::thread::spawn(move || run_worker(worker_side, WorkerOptions::default()));
        let mut tx = coord.tx;
        let mut rx = coord.rx;
        tx.send(&WireMsg::Hello {
            target: "toy".into(),
            registry_fp,
            cfg: cfg.clone(),
            worker: 0,
            lease_ms: 0, // no heartbeat thread: the reply stream is pure
            profiles,
        })
        .expect("hello");
        tx.send(&WireMsg::Assign {
            shard: 0,
            jobs: jobs.clone(),
        })
        .expect("assign");
        tx.send(&WireMsg::Shutdown).expect("shutdown");
        let mut frames = Vec::new();
        while let Some(msg) = rx.recv().expect("worker reply") {
            frames.push(seal_frame(&msg));
        }
        handle
            .join()
            .expect("worker thread")
            .expect("worker served cleanly");
        frames
    };

    let with_artifact = serve(driver.profiles().clone());
    let reprofiled = serve(BTreeMap::new());
    assert_eq!(
        with_artifact.len(),
        reprofiled.len(),
        "same frame count (HelloAck, Event, Result)"
    );
    for (i, (a, b)) in with_artifact.iter().zip(&reprofiled).enumerate() {
        assert_eq!(a, b, "frame {i} differs between artifact and re-profiling");
    }
}
