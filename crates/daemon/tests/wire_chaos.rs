//! Transport-level self-chaos: dropped and stalled assignment frames.
//!
//! Transient wire faults must be invisible in results (the coordinator
//! re-sends); permanent wire faults must degrade *deterministically* —
//! chaos keys on the global shard ordinal, which does not depend on the
//! worker count, so the same cells go missing whether one worker or four
//! carry the campaign.

use std::sync::Arc;

use csnake_core::{ChaosConfig, DetectConfig, ProgressCollector, Session, ThreePhase};
use csnake_daemon::{run_distributed, DaemonConfig, RunOptions};

fn fast_config() -> DetectConfig {
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800];
    cfg.driver.retry.backoff_base_ms = 1;
    cfg
}

fn chaos_config(wire_drop: f64, wire_stall: f64, permanent: bool) -> DetectConfig {
    let mut cfg = fast_config();
    cfg.driver.chaos = ChaosConfig {
        seed: 0xC0FFEE,
        wire_drop,
        wire_stall,
        permanent,
        transient_attempts: 1,
        stall_ms: 1,
        ..ChaosConfig::default()
    };
    cfg
}

fn single_process(target_name: &str) -> String {
    let target = csnake_daemon::targets::resolve(target_name).expect("target resolves");
    let mut session = Session::builder(target.as_ref())
        .config(fast_config())
        .build()
        .expect("session builds");
    format!(
        "{:?}",
        session
            .run_to_report(&ThreePhase::default())
            .expect("single-process campaign")
    )
}

fn run_with(cfg: DetectConfig, workers: usize, progress: Arc<ProgressCollector>) -> String {
    let opts = RunOptions {
        daemon: DaemonConfig {
            lease_ms: 1_000,
            ..DaemonConfig::default()
        },
        observer: Some(progress),
        ..RunOptions::default()
    };
    let run = run_distributed("toy", cfg, workers, opts).expect("chaos campaign completes");
    format!("{:?}", run.report)
}

#[test]
fn transient_wire_drops_are_invisible_in_results() {
    let baseline = single_process("toy");
    let progress = Arc::new(ProgressCollector::new());
    // Every shard's first delivery is dropped; the re-send succeeds.
    let report = run_with(chaos_config(1.0, 0.0, false), 2, progress.clone());
    assert_eq!(report, baseline, "transient drops must not reach results");
    assert!(
        progress.snapshot().shards_reassigned > 0,
        "the drops must actually have fired"
    );
}

#[test]
fn wire_stalls_only_pace_the_campaign() {
    let baseline = single_process("toy");
    let progress = Arc::new(ProgressCollector::new());
    let report = run_with(chaos_config(0.0, 1.0, true), 2, progress.clone());
    assert_eq!(report, baseline, "stalled frames still arrive");
    assert_eq!(progress.snapshot().workers_lost, 0);
}

#[test]
fn permanent_wire_drops_degrade_identically_across_worker_counts() {
    let reports: Vec<String> = [1, 2, 4]
        .into_iter()
        .map(|workers| {
            run_with(
                chaos_config(0.4, 0.0, true),
                workers,
                Arc::new(ProgressCollector::new()),
            )
        })
        .collect();
    assert!(
        !reports[0].contains("missing_cells: []"),
        "rate 0.4 permanent drops must cost some cells: {}",
        reports[0]
    );
    assert_eq!(reports[0], reports[1], "1 vs 2 workers");
    assert_eq!(reports[0], reports[2], "1 vs 4 workers");
    assert_ne!(
        reports[0],
        single_process("toy"),
        "a degraded report must differ from the clean baseline"
    );
}
