//! Mid-phase checkpoints under distribution: a distributed campaign
//! streams the same `.csnake` checkpoints as the single-process
//! supervisor — including shard islands for out-of-order completions —
//! and a *different* session (with a different fleet) can resume from one
//! and land on the identical report.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use csnake_core::{CampaignObserver, DetectConfig, Session, Snapshot, Stage, ThreePhase};
use csnake_daemon::{run_distributed, DaemonConfig, RunOptions};

fn fast_config() -> DetectConfig {
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800];
    cfg.driver.retry.backoff_base_ms = 1;
    cfg
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("csnake-daemon-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Steals a copy of the live checkpoint file the first time a phase-2
/// mid-phase state hits disk — a frozen "the coordinator died here"
/// artifact the resume half of the test can start from.
struct CheckpointThief {
    dst: PathBuf,
    grabbed: AtomicBool,
}

impl CampaignObserver for CheckpointThief {
    fn checkpoint_written(&self, path: &std::path::Path, phase: u8, executed_in_phase: usize) {
        if phase == 2 && executed_in_phase > 0 && !self.grabbed.swap(true, Ordering::Relaxed) {
            std::fs::copy(path, &self.dst).expect("steal checkpoint copy");
        }
    }
}

#[test]
fn resuming_a_distributed_checkpoint_with_a_new_fleet_is_identical() {
    let dir = temp_dir("resume");
    let live = dir.join("campaign.csnake");
    let stolen = dir.join("stolen.csnake");
    let thief = Arc::new(CheckpointThief {
        dst: stolen.clone(),
        grabbed: AtomicBool::new(false),
    });

    // First life: 4 workers, tiny shards, checkpoint every 2 experiments.
    let opts = RunOptions {
        daemon: DaemonConfig {
            shard_jobs: 2,
            lease_ms: 1_000,
            ..DaemonConfig::default()
        },
        observer: Some(thief.clone()),
        checkpoint: Some((live.clone(), 2)),
        ..RunOptions::default()
    };
    let baseline = run_distributed("toy", fast_config(), 4, opts).expect("first life");
    let baseline_report = format!("{:?}", baseline.report);
    assert!(
        thief.grabbed.load(Ordering::Relaxed),
        "phase 2 must have produced at least one mid-phase checkpoint"
    );

    // The stolen artifact is a well-formed mid-phase snapshot.
    let snap = Snapshot::read_file(&stolen).expect("stolen checkpoint decodes");
    assert_eq!(snap.stage, Stage::Profiled);
    let mid = snap.mid_phase.as_ref().expect("mid-phase state present");
    assert_eq!(mid.phase, 2);

    // Second life: resume from the frozen artifact on a *new* fleet with
    // a different worker count and shard size — none of which may leak
    // into results.
    let target = csnake_daemon::targets::resolve("toy").expect("target resolves");
    let mut session = Session::builder(target.as_ref())
        .auto_checkpoint(dir.join("campaign-2.csnake"), 2)
        .resume(&stolen)
        .expect("resume from stolen checkpoint");
    let (endpoints, handles) = csnake_daemon::spawn_thread_workers(2, &[]);
    let (report, _) = csnake_daemon::drive_session(
        &mut session,
        "toy",
        endpoints,
        DaemonConfig {
            shard_jobs: 3,
            lease_ms: 1_000,
            ..DaemonConfig::default()
        },
        &ThreePhase::default(),
    )
    .expect("second life");
    for h in handles {
        let _ = h.join();
    }
    assert_eq!(format!("{report:?}"), baseline_report);

    std::fs::remove_dir_all(&dir).ok();
}
