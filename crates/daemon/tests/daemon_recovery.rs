//! Fault tolerance: losing workers mid-phase must not perturb results.
//!
//! Two failure shapes are exercised — a crash (connection drops, the
//! coordinator reacts instantly) and a silent stall (heartbeats stop, only
//! the lease clock catches it). In both, the dead worker's unacked shard
//! is reassigned and the final report stays bit-identical to the
//! single-process run.

use std::sync::Arc;

use csnake_core::{DetectConfig, ProgressCollector, Session, ThreePhase};
use csnake_daemon::{run_distributed, DaemonConfig, RunOptions, WorkerOptions};

fn fast_config() -> DetectConfig {
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800];
    cfg.driver.retry.backoff_base_ms = 1;
    cfg
}

fn single_process(target_name: &str) -> String {
    let target = csnake_daemon::targets::resolve(target_name).expect("target resolves");
    let mut session = Session::builder(target.as_ref())
        .config(fast_config())
        .build()
        .expect("session builds");
    format!(
        "{:?}",
        session
            .run_to_report(&ThreePhase::default())
            .expect("single-process campaign")
    )
}

#[test]
fn worker_crash_mid_phase_reassigns_and_report_is_identical() {
    let baseline = single_process("toy");
    let progress = Arc::new(ProgressCollector::new());
    let opts = RunOptions {
        daemon: DaemonConfig {
            lease_ms: 500,
            ..DaemonConfig::default()
        },
        observer: Some(progress.clone()),
        // Worker 0 completes one shard, then accepts the next assignment
        // and dies holding it — the textbook mid-phase crash.
        worker_opts: vec![WorkerOptions {
            fail_after: Some(1),
            ..WorkerOptions::default()
        }],
        ..RunOptions::default()
    };
    let run = run_distributed("toy", fast_config(), 2, opts).expect("campaign survives the crash");
    assert_eq!(format!("{:?}", run.report), baseline);
    assert!(
        !run.report.degraded(),
        "a reassigned shard must not surface as missing cells"
    );

    let snap = progress.snapshot();
    assert_eq!(snap.workers_connected, 2);
    assert_eq!(snap.workers_lost, 1, "exactly the killed worker is lost");
    assert!(
        snap.shards_reassigned >= 1,
        "the orphaned shard must be reassigned (saw {})",
        snap.shards_reassigned
    );
}

#[test]
fn silent_stall_is_caught_by_the_lease_clock() {
    let baseline = single_process("toy");
    let progress = Arc::new(ProgressCollector::new());
    let opts = RunOptions {
        daemon: DaemonConfig {
            lease_ms: 150,
            ..DaemonConfig::default()
        },
        observer: Some(progress.clone()),
        // Worker 0 goes silent holding its second shard, keeping the
        // connection open — no EOF, no heartbeats, nothing but the lease.
        worker_opts: vec![WorkerOptions {
            fail_after: Some(1),
            fail_hang_ms: 3_000,
            heartbeats: false,
        }],
        ..RunOptions::default()
    };
    let run = run_distributed("toy", fast_config(), 2, opts).expect("campaign survives the stall");
    assert_eq!(format!("{:?}", run.report), baseline);

    let snap = progress.snapshot();
    assert_eq!(snap.workers_lost, 1, "the stalled worker must be reaped");
    assert!(snap.shards_reassigned >= 1);
}

#[test]
fn losing_every_worker_degrades_instead_of_hanging() {
    let progress = Arc::new(ProgressCollector::new());
    let opts = RunOptions {
        daemon: DaemonConfig {
            lease_ms: 200,
            max_assign_attempts: 2,
            ..DaemonConfig::default()
        },
        observer: Some(progress.clone()),
        worker_opts: vec![
            WorkerOptions {
                fail_after: Some(0),
                ..WorkerOptions::default()
            },
            WorkerOptions {
                fail_after: Some(1),
                ..WorkerOptions::default()
            },
        ],
        ..RunOptions::default()
    };
    let run = run_distributed("toy", fast_config(), 2, opts)
        .expect("a dead fleet still completes the campaign");
    assert!(
        run.report.degraded(),
        "with no workers left, unfinished cells must be enumerated as missing"
    );
    assert!(!run.report.missing_cells.is_empty());
    assert_eq!(progress.snapshot().workers_lost, 2);
}
