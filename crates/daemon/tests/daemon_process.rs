//! The `csnake-daemon` binary end-to-end: real processes, real pipes,
//! real sockets.

use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};

use csnake_core::{DetectConfig, Session, ThreePhase};

const BIN: &str = env!("CARGO_BIN_EXE_csnake-daemon");

fn fast_config() -> DetectConfig {
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800];
    cfg.driver.retry.backoff_base_ms = 1;
    cfg
}

/// The `report: ...` line the binary prints, for byte comparison.
fn expected_report_line(target_name: &str) -> String {
    let target = csnake_daemon::targets::resolve(target_name).expect("target resolves");
    let mut session = Session::builder(target.as_ref())
        .config(fast_config())
        .build()
        .expect("session builds");
    format!(
        "report: {:?}",
        session
            .run_to_report(&ThreePhase::default())
            .expect("single-process campaign")
    )
}

fn report_line(stdout: &str) -> &str {
    stdout
        .lines()
        .find(|l| l.starts_with("report: "))
        .unwrap_or_else(|| panic!("no report line in output:\n{stdout}"))
}

#[test]
fn run_subcommand_matches_the_in_process_pipeline() {
    let expected = expected_report_line("toy");
    let out = Command::new(BIN)
        .args(["run", "--target", "toy", "-j", "2", "--fast"])
        .output()
        .expect("spawn csnake-daemon run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "run failed: {stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(report_line(&stdout), expected);
}

#[test]
fn run_survives_a_killed_worker_process() {
    let expected = expected_report_line("toy");
    let out = Command::new(BIN)
        .args([
            "run",
            "--target",
            "toy",
            "-j",
            "2",
            "--fast",
            "--kill-worker",
            "0:1",
        ])
        .output()
        .expect("spawn csnake-daemon run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "run failed: {stdout}\n{stderr}");
    assert_eq!(report_line(&stdout), expected);
    assert!(
        stderr.contains("lost=1"),
        "the killed worker must be reported lost: {stderr}"
    );
}

#[test]
fn serve_and_work_speak_tcp() {
    let expected = expected_report_line("toy");
    let mut server = Command::new(BIN)
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--target",
            "toy",
            "-j",
            "2",
            "--fast",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn csnake-daemon serve");
    let mut stdout = BufReader::new(server.stdout.take().expect("piped stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read listen line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .to_string();

    let workers: Vec<_> = (0..2)
        .map(|_| {
            Command::new(BIN)
                .args(["work", "--connect", &addr])
                .stderr(Stdio::null())
                .spawn()
                .expect("spawn csnake-daemon work")
        })
        .collect();

    let mut rest = String::new();
    std::io::Read::read_to_string(&mut stdout, &mut rest).expect("read server output");
    let status = server.wait().expect("server exits");
    assert!(status.success(), "serve failed: {rest}");
    assert_eq!(report_line(&rest), expected);
    for mut w in workers {
        let status = w.wait().expect("worker exits");
        assert!(status.success(), "worker exited nonzero");
    }
}
