//! Worker event forwarding: the coordinator's collector must see the
//! whole fleet as if the campaign were local.
//!
//! With live [`WireMsg::Event`] frames re-emitted coordinator-side via
//! `CampaignObserver::event_forwarded`, a `ProgressCollector` attached to
//! the coordinator session lands on the *same deterministic totals*
//! (experiments, edges, cycles, retries, cache hits/misses) as the same
//! collector on a single-process run — forwarded events feed per-worker
//! attribution only, never the campaign totals, so nothing double-counts.
//! The recorded deterministic event sequence is also fleet-size-invariant
//! across 1/2/4-worker fleets.

use std::sync::Arc;

use csnake_core::{
    CampaignObserver, DetectConfig, FanoutObserver, ProgressCollector, ProgressSnapshot, Session,
    ThreePhase,
};
use csnake_daemon::{run_distributed, RunOptions};
use csnake_telemetry::{FlightRecorder, TelemetryRecord};

fn fast_config() -> DetectConfig {
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800];
    cfg.driver.retry.backoff_base_ms = 1;
    // Cache injections so the trace-cache counters are live: the fleet
    // sum of per-worker figures must reproduce the local driver's.
    cfg.driver.cache_injections = true;
    cfg
}

fn deterministic_keys(records: &[TelemetryRecord]) -> Vec<String> {
    records
        .iter()
        .filter_map(|r| r.deterministic_key())
        .collect()
}

fn single_process(name: &str) -> (String, ProgressSnapshot, Vec<String>) {
    let target = csnake_daemon::targets::resolve(name).expect("known target");
    let progress = Arc::new(ProgressCollector::new());
    let recorder = Arc::new(FlightRecorder::builder().build().expect("recorder"));
    let fanout = Arc::new(FanoutObserver::new(vec![
        progress.clone() as Arc<dyn CampaignObserver>,
        recorder.clone() as Arc<dyn CampaignObserver>,
    ]));
    let mut session = Session::builder(target.as_ref())
        .config(fast_config())
        .observer(fanout)
        .build()
        .expect("target is drivable");
    let report = session
        .run_to_report(&ThreePhase::default())
        .expect("campaign completes");
    (
        format!("{report:?}"),
        progress.snapshot(),
        deterministic_keys(&recorder.records()),
    )
}

#[test]
fn collector_totals_match_single_process_across_fleet_sizes() {
    let name = "gen:5";
    let (baseline_report, baseline, baseline_keys) = single_process(name);
    assert!(baseline.experiments > 0 && baseline.trace_cache_misses > 0);

    for workers in [1usize, 2, 4] {
        let progress = Arc::new(ProgressCollector::new());
        let recorder = Arc::new(FlightRecorder::builder().build().expect("recorder"));
        let fanout = Arc::new(FanoutObserver::new(vec![
            progress.clone() as Arc<dyn CampaignObserver>,
            recorder.clone() as Arc<dyn CampaignObserver>,
        ]));
        let run = run_distributed(
            name,
            fast_config(),
            workers,
            RunOptions {
                observer: Some(fanout),
                ..RunOptions::default()
            },
        )
        .expect("distributed campaign completes");
        assert_eq!(
            format!("{:?}", run.report),
            baseline_report,
            "{workers}-worker report diverged"
        );

        // Deterministic totals: the coordinator's own merge stream must
        // reproduce the local campaign exactly, forwarding or not.
        let snap = progress.snapshot();
        assert_eq!(snap.experiments, baseline.experiments, "w={workers}");
        assert_eq!(snap.edges, baseline.edges, "w={workers}");
        assert_eq!(snap.cycles, baseline.cycles, "w={workers}");
        assert_eq!(snap.batch_retries, baseline.batch_retries, "w={workers}");
        assert_eq!(snap.batch_failures, baseline.batch_failures, "w={workers}");
        assert_eq!(snap.budget_spent, baseline.budget_spent, "w={workers}");
        assert_eq!(
            snap.trace_cache_hits, baseline.trace_cache_hits,
            "w={workers}: fleet cache-hit sum diverged"
        );
        assert_eq!(
            snap.trace_cache_misses, baseline.trace_cache_misses,
            "w={workers}: fleet cache-miss sum diverged"
        );

        // ...and the recorded deterministic event sequence is the same
        // one, whatever the fleet size.
        assert_eq!(
            deterministic_keys(&recorder.records()),
            baseline_keys,
            "w={workers}: deterministic event sequence diverged"
        );

        // Live forwarding actually happened, with per-worker attribution
        // that tiles the campaign: every experiment ran on exactly one
        // worker.
        assert!(snap.events_forwarded > 0, "w={workers}: nothing forwarded");
        let per_worker = progress.worker_progress();
        assert_eq!(per_worker.len(), workers, "w={workers}");
        let attributed: usize = per_worker.iter().map(|(_, w)| w.experiments).sum();
        assert_eq!(
            attributed, baseline.experiments,
            "w={workers}: per-worker experiment attribution must tile the campaign"
        );
        // Worker-side edge figures are raw per-outcome counts (pre-dedup:
        // the coordinator's db dedups sweep repeats at merge), so the
        // attributed sum bounds the accepted total from above.
        let attributed_edges: usize = per_worker.iter().map(|(_, w)| w.edges).sum();
        assert!(
            attributed_edges >= snap.edges,
            "w={workers}: raw attributed edges ({attributed_edges}) below accepted total ({})",
            snap.edges
        );
        let cache_sum: (usize, usize) = per_worker.iter().fold((0, 0), |(h, m), (_, w)| {
            (h + w.cache_hits, m + w.cache_misses)
        });
        assert_eq!(
            cache_sum,
            (snap.trace_cache_hits, snap.trace_cache_misses),
            "w={workers}: per-worker cache figures must sum to the fleet total"
        );
    }
}
