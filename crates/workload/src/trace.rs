//! Recorded request traces: a first-party line format for replaying real
//! traffic through the simulator.
//!
//! The format is one request per line — a timestamp with a unit suffix,
//! optionally followed by a request-class label:
//!
//! ```text
//! # checkout burst captured 2024-03-01 (timestamps are relative)
//! 0us      browse
//! 1250us   browse
//! 2ms      checkout
//! 2500us
//! 1s       browse
//! ```
//!
//! Blank lines and `#` comments are skipped. Timestamps must be
//! nondecreasing (a trace replays in recorded order). Parse failures carry
//! a line/column [`TraceSpan`], the same error-reporting shape as the
//! scenario language, so a bad trace points at the offending character
//! instead of failing wholesale.

use std::fmt;

use csnake_sim::VirtualTime;

/// Position of a parse error inside a trace file (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpan {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

/// A trace parse error with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// Where in the trace text the error sits.
    pub span: TraceSpan,
    /// What went wrong.
    pub msg: String,
}

impl TraceError {
    fn at(line: u32, col: u32, msg: impl Into<String>) -> Self {
        TraceError {
            span: TraceSpan { line, col },
            msg: msg.into(),
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error at line {}, col {}: {}",
            self.span.line, self.span.col, self.msg
        )
    }
}

impl std::error::Error for TraceError {}

/// A parsed request trace: nondecreasing arrival instants, each tagged
/// with an interned request class.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecordedTrace {
    /// Distinct request-class labels, in first-appearance order.
    classes: Vec<String>,
    /// `(arrival, class index)` per request, in recorded order.
    entries: Vec<(VirtualTime, u32)>,
}

impl RecordedTrace {
    /// Parses the line format described in the module docs.
    pub fn parse(text: &str) -> Result<RecordedTrace, TraceError> {
        let mut trace = RecordedTrace::default();
        let mut last = VirtualTime::ZERO;
        for (idx, raw_line) in text.lines().enumerate() {
            let line_no = idx as u32 + 1;
            let line = match raw_line.find('#') {
                Some(pos) => &raw_line[..pos],
                None => raw_line,
            };
            if line.trim().is_empty() {
                continue;
            }
            let col0 = line.len() - line.trim_start().len();
            let body = line.trim();
            let (time_tok, rest) = match body.split_once(char::is_whitespace) {
                Some((t, r)) => (t, r.trim()),
                None => (body, ""),
            };
            let at = parse_time(time_tok, line_no, col0 as u32 + 1)?;
            if at < last {
                return Err(TraceError::at(
                    line_no,
                    col0 as u32 + 1,
                    format!("timestamp {at} goes backwards (previous request at {last})"),
                ));
            }
            last = at;
            let class = if rest.is_empty() { "req" } else { rest };
            if let Some(extra) = class.find(char::is_whitespace) {
                let col = col0 + (body.len() - rest.len()) + extra;
                return Err(TraceError::at(
                    line_no,
                    col as u32 + 1,
                    format!("unexpected trailing input {:?}", rest[extra..].trim()),
                ));
            }
            let class_idx = match trace.classes.iter().position(|c| c == class) {
                Some(i) => i as u32,
                None => {
                    trace.classes.push(class.to_string());
                    trace.classes.len() as u32 - 1
                }
            };
            trace.entries.push((at, class_idx));
        }
        Ok(trace)
    }

    /// Number of recorded requests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace records no requests.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The arrival instants, in recorded (nondecreasing) order.
    pub fn arrival_times(&self) -> Vec<VirtualTime> {
        self.entries.iter().map(|&(t, _)| t).collect()
    }

    /// Distinct request-class labels, in first-appearance order.
    pub fn classes(&self) -> &[String] {
        &self.classes
    }

    /// The class label of request `i`.
    pub fn class_of(&self, i: usize) -> &str {
        &self.classes[self.entries[i].1 as usize]
    }
}

/// Parses a `<digits><unit>` timestamp token (`us`, `ms`, or `s`).
fn parse_time(tok: &str, line: u32, col: u32) -> Result<VirtualTime, TraceError> {
    let digits_len = tok.bytes().take_while(|b| b.is_ascii_digit()).count();
    if digits_len == 0 {
        return Err(TraceError::at(
            line,
            col,
            format!("expected a timestamp like `1250us`, found {tok:?}"),
        ));
    }
    let value: u64 = tok[..digits_len].parse().map_err(|_| {
        TraceError::at(
            line,
            col,
            format!("timestamp {:?} overflows", &tok[..digits_len]),
        )
    })?;
    match &tok[digits_len..] {
        "us" => Ok(VirtualTime::from_micros(value)),
        "ms" => Ok(VirtualTime::from_millis(value)),
        "s" => Ok(VirtualTime::from_secs(value)),
        unit => Err(TraceError::at(
            line,
            col + digits_len as u32,
            format!("unknown time unit {unit:?} (expected us, ms, or s)"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_example() {
        let trace = RecordedTrace::parse(
            "# captured burst\n0us      browse\n1250us   browse\n2ms      checkout\n2500us\n1s       browse\n",
        )
        .expect("valid trace");
        assert_eq!(trace.len(), 5);
        assert_eq!(trace.classes(), &["browse", "checkout", "req"]);
        assert_eq!(trace.class_of(3), "req");
        assert_eq!(
            trace.arrival_times(),
            vec![
                VirtualTime::ZERO,
                VirtualTime::from_micros(1250),
                VirtualTime::from_millis(2),
                VirtualTime::from_micros(2500),
                VirtualTime::from_secs(1),
            ]
        );
    }

    #[test]
    fn inline_comments_and_blank_lines_are_skipped() {
        let trace = RecordedTrace::parse("\n10us get # hot path\n\n20us get\n").expect("valid");
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn backwards_time_is_an_error_with_span() {
        let err = RecordedTrace::parse("5ms a\n2ms b\n").expect_err("must reject");
        assert_eq!(err.span, TraceSpan { line: 2, col: 1 });
        assert!(err.msg.contains("goes backwards"), "{}", err.msg);
    }

    #[test]
    fn bad_unit_points_at_the_unit() {
        let err = RecordedTrace::parse("12min x\n").expect_err("must reject");
        assert_eq!(err.span, TraceSpan { line: 1, col: 3 });
        assert!(err.msg.contains("unknown time unit"), "{}", err.msg);
    }

    #[test]
    fn missing_digits_is_an_error() {
        let err = RecordedTrace::parse("  fast\n").expect_err("must reject");
        assert_eq!(err.span, TraceSpan { line: 1, col: 3 });
        assert!(err.msg.contains("expected a timestamp"), "{}", err.msg);
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        let err = RecordedTrace::parse("1ms get extra\n").expect_err("must reject");
        assert_eq!(err.span.line, 1);
        assert!(err.msg.contains("trailing"), "{}", err.msg);
    }

    #[test]
    fn display_formats_span() {
        let err = RecordedTrace::parse("oops\n").expect_err("must reject");
        let s = err.to_string();
        assert!(s.contains("line 1"), "{s}");
        assert!(s.contains("col 1"), "{s}");
    }
}
