//! Open-loop, trace-driven workload engine for the CSnake reproduction.
//!
//! The detection pipeline's shipped targets drive *closed* workloads: a
//! fixed list of jobs, submitted and drained, the run ends. Real traffic
//! is open-loop — requests keep arriving at the source's pace whether or
//! not the service is keeping up — and that difference is exactly what
//! makes cascading failures *self-sustaining*: with no back-pressure to
//! yield to, queueing delay compounds until timeouts fire, retries
//! amplify, and the system feeds its own collapse. This crate supplies
//! that traffic: deterministic arrival processes and recorded request
//! traces compiled into a [`TargetSystem`](csnake_core::TargetSystem) that
//! any driver, session, or campaign in the workspace can run unchanged.
//!
//! # Drive real traffic: a walkthrough
//!
//! **1. Describe the traffic.** Pick an [`Arrival`] process — Poisson
//! ([`SimRng`](csnake_sim::SimRng)-sampled exponential inter-arrival
//! gaps), on/off [`Arrival::Bursty`] bursts, a raised-cosine
//! [`Arrival::Diurnal`] rate curve, or exact [`Arrival::Paced`] pacing —
//! or parse a recorded [`RecordedTrace`] (one `timestamp class` line per
//! request; parse errors carry line/column spans like the scenario
//! language):
//!
//! ```
//! use csnake_workload::{Arrival, ArrivalSource, RecordedTrace};
//!
//! let poisson = ArrivalSource::Process {
//!     arrival: Arrival::Poisson { rate_per_sec: 2_000.0 },
//!     offered: 10_000,
//! };
//! let replay = ArrivalSource::Trace(
//!     RecordedTrace::parse("0us browse\n1250us browse\n2ms checkout\n").unwrap(),
//! );
//! assert_eq!(replay.offered(), 3);
//! # let _ = poisson;
//! ```
//!
//! **2. Compile it into a target.** [`WorkloadSystem::with_spec`] wraps a
//! [`WorkloadSpec`] (source, service cost, deadline, retry amplifier,
//! queue bound, latency-window width) into a `TargetSystem`;
//! [`WorkloadSystem::new`] bundles four standard workloads. Requests are
//! pre-scheduled open-loop on the simulator — millions of pending timers,
//! which is what the event-wheel scheduler
//! ([`csnake_sim::scheduler`]) exists to make cheap.
//!
//! **3. Run it and read the latency.** Every run folds per-request
//! latency into a [`WorkloadSummary`](csnake_core::WorkloadSummary) —
//! whole-run p50/p90/p99/max plus fixed-width windows. The
//! [`Driver`](csnake_core::Driver) drains summaries after each experiment
//! batch and streams them through
//! [`CampaignObserver::workload_summary`](csnake_core::CampaignObserver::workload_summary)
//! (and on into `csnake-telemetry`'s flight recorder and
//! `MetricsDigest`); under a cascade the windowed p99 shows a sharp
//! inflection
//! ([`WorkloadSummary::p99_inflection_milli`](csnake_core::WorkloadSummary::p99_inflection_milli)).
//!
//! ```
//! use csnake_core::TargetSystem;
//! use csnake_inject::TestId;
//! use csnake_workload::WorkloadSystem;
//!
//! let sys = WorkloadSystem::new();
//! sys.run(TestId(3), None, 42); // replay the bundled trace
//! let summary = sys.drain_workload_summaries().pop().unwrap();
//! assert_eq!(summary.offered, summary.completed);
//! assert_eq!(summary.p99_inflection_milli(), None); // no cascade here
//! ```
//!
//! **4. Detect on it.** The system plants the paper-shaped cascade
//! `delay(drain_loop) → req_timeout → delay(drain_loop)` (retry
//! amplification), so the full pipeline — `detect`, staged `Session`s,
//! scenario campaigns via the `workload:` pseudo-targets ([`by_name`]) —
//! works end-to-end; `examples/trace_driven_campaign.rs` walks a Poisson
//! campaign from arrival spec to detection report.

pub mod arrival;
pub mod system;
pub mod trace;

pub use arrival::{Arrival, ArrivalSource};
pub use system::{WorkloadIds, WorkloadSpec, WorkloadSystem, SAMPLE_TRACE};
pub use trace::{RecordedTrace, TraceError, TraceSpan};

use csnake_core::{CsnakeError, TargetSystem};
use csnake_sim::VirtualTime;

/// Prefix that marks a target name as a workload pseudo-target.
pub const PSEUDO_TARGET_PREFIX: &str = "workload:";

/// Names of every workload pseudo-target, in `by_name` resolution order.
/// `csnake_scenario::by_name` and `csnake_gen::by_name` list these next to
/// the hand-coded targets in unknown-target errors.
pub fn pseudo_target_names() -> Vec<&'static str> {
    vec![
        "workload:open-loop",
        "workload:poisson",
        "workload:bursty",
        "workload:diurnal",
        "workload:replay",
    ]
}

/// Resolves a workload pseudo-target by name:
///
/// * `workload:open-loop` — the standard four-workload system;
/// * `workload:poisson` / `workload:bursty` / `workload:diurnal` — a
///   single-workload system over that arrival process;
/// * `workload:replay` — a single workload replaying the bundled
///   [`SAMPLE_TRACE`].
///
/// Unknown names produce a typed [`CsnakeError::InvalidTarget`] listing
/// the known pseudo-targets.
pub fn by_name(name: &str) -> Result<Box<dyn TargetSystem>, CsnakeError> {
    let single = |sys_name: &'static str, arrival: Arrival, offered: u64| {
        Box::new(WorkloadSystem::with_spec(
            sys_name,
            WorkloadSpec {
                source: ArrivalSource::Process { arrival, offered },
                ..WorkloadSpec::default()
            },
        ))
    };
    match name {
        "workload:open-loop" => Ok(Box::new(WorkloadSystem::new())),
        "workload:poisson" => Ok(single(
            "workload:poisson",
            Arrival::Poisson {
                rate_per_sec: 1_500.0,
            },
            6_000,
        )),
        "workload:bursty" => Ok(single(
            "workload:bursty",
            Arrival::Bursty {
                rate_per_sec: 3_000.0,
                on: VirtualTime::from_millis(200),
                off: VirtualTime::from_millis(300),
            },
            3_000,
        )),
        "workload:diurnal" => Ok(single(
            "workload:diurnal",
            Arrival::Diurnal {
                low_per_sec: 200.0,
                high_per_sec: 2_500.0,
                period: VirtualTime::from_secs(4),
            },
            4_000,
        )),
        "workload:replay" => Ok(Box::new(WorkloadSystem::with_spec(
            "workload:replay",
            WorkloadSpec {
                source: ArrivalSource::Trace(
                    RecordedTrace::parse(SAMPLE_TRACE).expect("bundled trace parses"),
                ),
                horizon: VirtualTime::from_secs(10),
                ..WorkloadSpec::default()
            },
        ))),
        other => Err(CsnakeError::InvalidTarget(format!(
            "unknown workload pseudo-target {other:?}; known pseudo-targets: {}",
            pseudo_target_names().join(", ")
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_pseudo_target_resolves() {
        for name in pseudo_target_names() {
            let sys = by_name(name).expect(name);
            assert_eq!(sys.name(), name);
            assert!(!sys.tests().is_empty());
        }
    }

    #[test]
    fn unknown_pseudo_target_lists_the_known_ones() {
        let msg = match by_name("workload:nope") {
            Ok(_) => panic!("must reject"),
            Err(e) => e.to_string(),
        };
        for name in pseudo_target_names() {
            assert!(msg.contains(name), "{msg}");
        }
    }
}
