//! The open-loop workload target: a request service driven by an arrival
//! process (or recorded trace) that measures per-request latency.
//!
//! Architecture of the simulated service:
//!
//! * a **gateway** enqueues each arriving request into a bounded queue,
//!   stamping it with its *intended* arrival instant (open-loop: the
//!   latency clock starts when the traffic source fired, not when the
//!   backed-up server got around to accepting);
//! * a **server** drains the queue on a fixed tick cadence through the
//!   instrumented `drain_loop`, paying a service cost per request;
//! * requests whose completion latency exceeds the deadline raise the
//!   `req_timeout` exception; on retry-enabled workloads a timed-out
//!   request is speculatively re-submitted `retry_fanout` times — the
//!   amplifier that closes the seeded cascade
//!   `delay(drain_loop) → req_timeout → delay(drain_loop)`;
//! * an **admission monitor** polls queue depth (`admission_ok` detector).
//!
//! Every run folds its latency measurements into a
//! [`WorkloadSummary`] (whole-run percentiles plus fixed-width windows)
//! buffered on the system and drained via
//! [`TargetSystem::drain_workload_summaries`].

use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

use csnake_core::{KnownBug, TargetSystem, TestCase, WorkloadSummary, WorkloadWindow};
use csnake_inject::{
    Agent, BoolSource, BranchId, ExceptionCategory, FaultId, FnId, InjectionPlan, Registry,
    RegistryBuilder, RunTrace, TestId,
};
use csnake_sim::{Clock, Sim, VirtualTime, World};
use csnake_targets::common::timeouts;

use crate::arrival::{Arrival, ArrivalSource};
use crate::trace::RecordedTrace;

/// Instrumentation ids of the workload service.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadIds {
    fn_server: FnId,
    fn_handle: FnId,
    fn_monitor: FnId,
    /// Server drain loop (delay-injection candidate).
    pub l_drain: FaultId,
    /// Constant-bound warmup loop (filtered by the analyzer).
    pub l_warmup: FaultId,
    /// Request-deadline timeout exception.
    pub tp_timeout: FaultId,
    /// Queue-depth admission detector (error when overloaded).
    pub np_admission: FaultId,
    /// JDK-utility emptiness check (filtered by the analyzer).
    pub np_empty: FaultId,
    br_backlog: BranchId,
}

/// Full parameterisation of one open-loop workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Where requests come from: an arrival process or a recorded trace.
    pub source: ArrivalSource,
    /// Per-request service cost.
    pub service: VirtualTime,
    /// Completion-latency deadline; beyond it the request times out.
    pub deadline: VirtualTime,
    /// Server drain cadence.
    pub tick: VirtualTime,
    /// Speculative re-submissions per timed-out request (0 = no retries).
    pub retry_fanout: u32,
    /// Retry-depth bound per original request.
    pub max_retries: u8,
    /// Bounded queue capacity; overflow is shed (counted as dropped).
    pub queue_cap: usize,
    /// Latency-window width for the windowed percentiles.
    pub window: VirtualTime,
    /// Run horizon.
    pub horizon: VirtualTime,
    /// Simulator event budget for one run (raise for million-request runs).
    pub event_limit: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            source: ArrivalSource::Process {
                arrival: Arrival::Poisson {
                    rate_per_sec: 1_500.0,
                },
                offered: 6_000,
            },
            service: VirtualTime::from_micros(250),
            deadline: timeouts::OPERATION,
            tick: VirtualTime::from_millis(10),
            retry_fanout: 0,
            max_retries: 0,
            queue_cap: 50_000,
            window: VirtualTime::from_millis(250),
            horizon: VirtualTime::from_secs(20),
            event_limit: 2_000_000,
        }
    }
}

/// A tiny recorded trace bundled for the `trace_replay` workload and the
/// quickstart example: a browse burst, a checkout, a lull, a second burst.
pub const SAMPLE_TRACE: &str = "\
# bundled sample: checkout burst, lull, second burst (relative time)
0us     browse
800us   browse
1500us  browse
2200us  browse
3ms     checkout
3500us  browse
4ms     browse
1s      browse
1000500us browse
1001ms  checkout
1002ms  browse
2s      browse
2001ms  browse
2002ms  checkout
2003ms  browse
2500ms  browse
";

/// The open-loop workload target system.
pub struct WorkloadSystem {
    name: &'static str,
    registry: Arc<Registry>,
    ids: WorkloadIds,
    tests: Vec<(TestCase, WorkloadSpec)>,
    summaries: Mutex<Vec<WorkloadSummary>>,
}

impl Default for WorkloadSystem {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkloadSystem {
    fn build_registry() -> (Arc<Registry>, WorkloadIds) {
        let mut b = RegistryBuilder::new("workload");
        let fn_server = b.func("RequestServer.drainBatch");
        let fn_handle = b.func("RequestServer.handleRequest");
        let fn_monitor = b.func("AdmissionMonitor.poll");
        let l_drain = b.workload_loop(fn_server, 30, true, "drain_loop");
        let l_warmup = b.const_loop(fn_server, 12, 2, "drain_warmup");
        let tp_timeout = b.throw_point(
            fn_handle,
            55,
            "TimeoutException",
            ExceptionCategory::SystemSpecific,
            "req_timeout",
        );
        let np_admission = b.negation_point(
            fn_monitor,
            8,
            false,
            BoolSource::ErrorDetector,
            "admission_ok",
        );
        let np_empty =
            b.negation_point(fn_monitor, 10, true, BoolSource::JdkUtility, "queue_empty");
        let br_backlog = b.branch(fn_server, 31);
        let ids = WorkloadIds {
            fn_server,
            fn_handle,
            fn_monitor,
            l_drain,
            l_warmup,
            tp_timeout,
            np_admission,
            np_empty,
            br_backlog,
        };
        (Arc::new(b.build()), ids)
    }

    /// The standard four-workload system: Poisson steady state, bursty
    /// traffic with the retry amplifier, a diurnal rate curve, and a
    /// recorded-trace replay.
    pub fn new() -> Self {
        let (registry, ids) = Self::build_registry();
        let tests = vec![
            (
                TestCase {
                    id: TestId(0),
                    name: "test_poisson_steady",
                    description: "Poisson 1500 rps open loop, retries disabled",
                },
                WorkloadSpec::default(),
            ),
            (
                TestCase {
                    id: TestId(1),
                    name: "test_bursty_retry",
                    description: "on/off bursts with speculative retry fanout 5",
                },
                WorkloadSpec {
                    source: ArrivalSource::Process {
                        arrival: Arrival::Bursty {
                            rate_per_sec: 3_000.0,
                            on: VirtualTime::from_millis(200),
                            off: VirtualTime::from_millis(300),
                        },
                        offered: 3_000,
                    },
                    retry_fanout: 5,
                    max_retries: 2,
                    ..WorkloadSpec::default()
                },
            ),
            (
                TestCase {
                    id: TestId(2),
                    name: "test_diurnal_sweep",
                    description: "raised-cosine diurnal rate 200–2500 rps",
                },
                WorkloadSpec {
                    source: ArrivalSource::Process {
                        arrival: Arrival::Diurnal {
                            low_per_sec: 200.0,
                            high_per_sec: 2_500.0,
                            period: VirtualTime::from_secs(4),
                        },
                        offered: 4_000,
                    },
                    ..WorkloadSpec::default()
                },
            ),
            (
                TestCase {
                    id: TestId(3),
                    name: "test_trace_replay",
                    description: "bundled recorded trace replayed verbatim",
                },
                WorkloadSpec {
                    source: ArrivalSource::Trace(
                        RecordedTrace::parse(SAMPLE_TRACE).expect("bundled trace parses"),
                    ),
                    horizon: VirtualTime::from_secs(10),
                    ..WorkloadSpec::default()
                },
            ),
        ];
        WorkloadSystem {
            name: "workload:open-loop",
            registry,
            ids,
            tests,
            summaries: Mutex::new(Vec::new()),
        }
    }

    /// A single-workload system over an arbitrary spec — the bench and
    /// example entry point for million-request experiments.
    pub fn with_spec(name: &'static str, spec: WorkloadSpec) -> Self {
        let (registry, ids) = Self::build_registry();
        let tests = vec![(
            TestCase {
                id: TestId(0),
                name: "test_custom_open_loop",
                description: "caller-specified open-loop workload",
            },
            spec,
        )];
        WorkloadSystem {
            name,
            registry,
            ids,
            tests,
            summaries: Mutex::new(Vec::new()),
        }
    }

    /// The instrumentation ids (used by examples and tests).
    pub fn ids(&self) -> WorkloadIds {
        self.ids
    }

    /// The spec backing a test case.
    pub fn spec_for(&self, test: TestId) -> Option<&WorkloadSpec> {
        self.tests
            .iter()
            .find(|(tc, _)| tc.id == test)
            .map(|(_, spec)| spec)
    }
}

#[derive(Debug, Clone, Copy)]
struct Req {
    intended: VirtualTime,
    retries: u8,
}

enum Ev {
    Arrive,
    Tick,
    Monitor,
}

/// Latency accounting: exact whole-run samples plus per-window samples.
struct LatencyLog {
    window_us: u64,
    /// Per-window samples; completions past the horizon fold into the
    /// last window.
    windows: Vec<Vec<u32>>,
    all: Vec<u32>,
}

impl LatencyLog {
    fn new(window: VirtualTime, horizon: VirtualTime, capacity: usize) -> Self {
        let window_us = window.as_micros().max(1);
        let count = (horizon.as_micros() / window_us + 1).min(4_096) as usize;
        LatencyLog {
            window_us,
            windows: (0..count.max(1)).map(|_| Vec::new()).collect(),
            all: Vec::with_capacity(capacity),
        }
    }

    fn record(&mut self, completed_at: VirtualTime, latency: VirtualTime) {
        let us = latency.as_micros().min(u32::MAX as u64) as u32;
        self.all.push(us);
        let idx = (completed_at.as_micros() / self.window_us) as usize;
        let idx = idx.min(self.windows.len() - 1);
        self.windows[idx].push(us);
    }
}

/// Nearest-rank percentile of an already-sorted sample set.
fn percentile(sorted: &[u32], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1] as u64
}

struct WorkloadWorld {
    agent: Rc<Agent>,
    ids: WorkloadIds,
    spec: WorkloadSpec,
    arrivals: Vec<VirtualTime>,
    next_arrival: usize,
    queue: VecDeque<Req>,
    completed: u64,
    dropped: u64,
    latency: LatencyLog,
}

impl World for WorkloadWorld {
    type Event = Ev;

    fn handle(&mut self, sim: &mut Sim<Ev>, ev: Ev) {
        match ev {
            Ev::Arrive => {
                // Open-loop: the latency clock starts at the *intended*
                // arrival instant even when this event runs late behind a
                // backed-up simulator queue.
                let intended = self.arrivals[self.next_arrival];
                self.next_arrival += 1;
                if self.queue.len() >= self.spec.queue_cap {
                    self.dropped += 1;
                } else {
                    self.queue.push_back(Req {
                        intended,
                        retries: 0,
                    });
                }
            }
            Ev::Tick => {
                let _f = self.agent.frame(self.ids.fn_server);
                {
                    let warm = self.agent.loop_enter(self.ids.l_warmup);
                    for _ in 0..2 {
                        warm.iter(sim);
                    }
                }
                self.agent
                    .branch(self.ids.br_backlog, !self.queue.is_empty());
                {
                    let drain = self.agent.loop_enter(self.ids.l_drain);
                    while let Some(req) = self.queue.pop_front() {
                        drain.iter(sim);
                        sim.advance(self.spec.service);
                        let _h = self.agent.frame(self.ids.fn_handle);
                        let latency = sim.now().saturating_sub(req.intended);
                        let timed_out = self.agent.throw_guard(self.ids.tp_timeout).is_some()
                            || if latency > self.spec.deadline {
                                self.agent.throw_fired(self.ids.tp_timeout);
                                true
                            } else {
                                false
                            };
                        if timed_out {
                            // Speculative re-execution: the retry-storm
                            // amplifier behind the seeded cascade.
                            if self.spec.retry_fanout > 0 && req.retries < self.spec.max_retries {
                                for _ in 0..self.spec.retry_fanout {
                                    self.queue.push_back(Req {
                                        intended: sim.now(),
                                        retries: req.retries + 1,
                                    });
                                }
                            }
                        } else {
                            self.completed += 1;
                            self.latency.record(sim.now(), latency);
                        }
                    }
                }
                sim.schedule(self.spec.tick, Ev::Tick);
            }
            Ev::Monitor => {
                let _f = self.agent.frame(self.ids.fn_monitor);
                let ok = self.agent.negation_point(
                    self.ids.np_admission,
                    self.queue.len() < self.spec.queue_cap / 2,
                );
                if !ok {
                    self.agent.mark_flag("admission_overload");
                }
                let _ = self
                    .agent
                    .negation_point(self.ids.np_empty, self.queue.is_empty());
                sim.schedule(VirtualTime::from_secs(1), Ev::Monitor);
            }
        }
    }
}

impl WorkloadWorld {
    fn into_summary(mut self, test: TestId, seed: u64, offered: u64) -> WorkloadSummary {
        self.latency.all.sort_unstable();
        let all = &self.latency.all;
        let window_ms = (self.latency.window_us / 1_000).max(1);
        let windows = self
            .latency
            .windows
            .iter_mut()
            .enumerate()
            .map(|(i, samples)| {
                samples.sort_unstable();
                WorkloadWindow {
                    start_ms: i as u64 * window_ms,
                    completed: samples.len() as u64,
                    p50_us: percentile(samples, 50.0),
                    p99_us: percentile(samples, 99.0),
                }
            })
            .collect();
        WorkloadSummary {
            test,
            seed,
            offered,
            completed: self.completed,
            dropped: self.dropped,
            p50_us: percentile(all, 50.0),
            p90_us: percentile(all, 90.0),
            p99_us: percentile(all, 99.0),
            max_us: all.last().copied().unwrap_or(0) as u64,
            windows,
        }
    }
}

impl TargetSystem for WorkloadSystem {
    fn name(&self) -> &'static str {
        self.name
    }

    fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    fn tests(&self) -> Vec<TestCase> {
        self.tests.iter().map(|(tc, _)| *tc).collect()
    }

    fn run(&self, test: TestId, plan: Option<InjectionPlan>, seed: u64) -> RunTrace {
        let spec = self
            .spec_for(test)
            .unwrap_or_else(|| panic!("unknown workload test {test:?}"))
            .clone();
        let ids = self.ids;
        let agent = Rc::new(Agent::new(Arc::clone(&self.registry), plan));
        agent.set_tracing(csnake_inject::tracing_switch::get());
        let mut sim = Sim::new(seed);
        sim.event_limit = spec.event_limit;

        // Sample the arrival stream from a derived sub-RNG and pre-schedule
        // every request open-loop: arrivals never yield to server
        // back-pressure, which is what lets a cascade's queueing delay
        // compound instead of self-throttling.
        let arrivals = spec.source.times(&mut sim.rng().derive("arrivals"));
        let offered = arrivals.len() as u64;
        for t in &arrivals {
            sim.schedule_at(*t, Ev::Arrive);
        }
        sim.schedule(spec.tick, Ev::Tick);
        sim.schedule(VirtualTime::from_secs(1), Ev::Monitor);

        let mut world = WorkloadWorld {
            agent: Rc::clone(&agent),
            ids,
            latency: LatencyLog::new(spec.window, spec.horizon, arrivals.len()),
            spec,
            arrivals,
            next_arrival: 0,
            queue: VecDeque::new(),
            completed: 0,
            dropped: 0,
        };
        let horizon = world.spec.horizon;
        sim.run(&mut world, horizon);
        let trace = agent.finish(sim.now(), sim.events_executed());
        let summary = world.into_summary(test, seed, offered);
        self.summaries
            .lock()
            .expect("summary buffer poisoned")
            .push(summary);
        trace
    }

    fn known_bugs(&self) -> Vec<KnownBug> {
        vec![KnownBug {
            id: "workload-retry-storm",
            jira: "WORK-1",
            summary:
                "drain-loop delay times out open-loop requests whose speculative retries re-load the drain loop",
            labels: vec!["drain_loop", "req_timeout"],
        }]
    }

    fn drain_workload_summaries(&self) -> Vec<WorkloadSummary> {
        std::mem::take(&mut self.summaries.lock().expect("summary buffer poisoned"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csnake_core::driver::seed_for;

    fn profile(test: u32) -> (WorkloadSystem, RunTrace) {
        let sys = WorkloadSystem::new();
        let t = sys.run(TestId(test), None, seed_for(1, TestId(test), 0));
        (sys, t)
    }

    #[test]
    fn profile_completes_the_offered_load() {
        let (sys, trace) = profile(0);
        let summary = sys.drain_workload_summaries().pop().expect("one summary");
        assert_eq!(summary.offered, 6_000);
        assert_eq!(summary.completed, 6_000);
        assert_eq!(summary.dropped, 0);
        assert!(!trace.occurred(sys.ids().tp_timeout), "no natural timeouts");
        assert!(summary.p50_us > 0 && summary.p99_us >= summary.p50_us);
        assert_eq!(
            summary.p99_inflection_milli(),
            None,
            "stable profile must not inflect"
        );
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let sys = WorkloadSystem::new();
        let a = sys.run(TestId(1), None, 9);
        let b = sys.run(TestId(1), None, 9);
        assert_eq!(a.loop_counts, b.loop_counts);
        assert_eq!(a.events, b.events);
        let summaries = sys.drain_workload_summaries();
        assert_eq!(
            summaries[0],
            WorkloadSummary {
                seed: 9,
                ..summaries[1].clone()
            }
        );
    }

    #[test]
    fn delay_injection_times_out_requests_and_inflects_p99() {
        let (sys, _) = profile(0);
        sys.drain_workload_summaries();
        let ids = sys.ids();
        let plan = InjectionPlan::delay(ids.l_drain, VirtualTime::from_millis(100));
        let trace = sys.run(TestId(0), Some(plan), 3);
        assert!(trace.injected.is_some());
        assert!(trace.occurred(ids.tp_timeout), "delay must trip timeouts");
        let summary = sys.drain_workload_summaries().pop().expect("one summary");
        assert!(summary.completed < summary.offered);
        assert!(
            summary.p99_inflection_milli().is_some(),
            "cascade must inflect the windowed p99: {:?}",
            summary.windows
        );
    }

    #[test]
    fn throw_injection_amplifies_drain_loop_on_retry_workload() {
        let sys = WorkloadSystem::new();
        let ids = sys.ids();
        let base = sys.run(TestId(1), None, 3).loop_count(ids.l_drain);
        let t = sys.run(TestId(1), Some(InjectionPlan::throw(ids.tp_timeout)), 3);
        let inj = t.loop_count(ids.l_drain);
        assert!(
            inj >= base + 5,
            "retry fanout must amplify the drain loop: {inj} vs {base}"
        );
    }

    #[test]
    fn trace_replay_offers_exactly_the_recorded_requests() {
        let (sys, _) = profile(3);
        let summary = sys.drain_workload_summaries().pop().expect("one summary");
        let recorded = RecordedTrace::parse(SAMPLE_TRACE).expect("bundled trace");
        assert_eq!(summary.offered, recorded.len() as u64);
        assert_eq!(summary.completed, summary.offered);
    }

    #[test]
    fn bounded_queue_sheds_overflow() {
        let sys = WorkloadSystem::with_spec(
            "workload:tiny-queue",
            WorkloadSpec {
                source: ArrivalSource::Process {
                    arrival: Arrival::Paced {
                        interval: VirtualTime::from_micros(10),
                    },
                    offered: 1_000,
                },
                queue_cap: 64,
                tick: VirtualTime::from_millis(100),
                ..WorkloadSpec::default()
            },
        );
        sys.run(TestId(0), None, 5);
        let summary = sys.drain_workload_summaries().pop().expect("one summary");
        assert!(summary.dropped > 0, "cap 64 must shed a 100 rps·ms burst");
        assert_eq!(summary.completed + summary.dropped, summary.offered);
    }

    #[test]
    fn driver_profiles_the_workload_target() {
        use csnake_core::{Driver, DriverConfig};
        let sys = WorkloadSystem::with_spec(
            "workload:driver-smoke",
            WorkloadSpec {
                source: ArrivalSource::Process {
                    arrival: Arrival::Poisson {
                        rate_per_sec: 500.0,
                    },
                    offered: 300,
                },
                horizon: VirtualTime::from_secs(5),
                ..WorkloadSpec::default()
            },
        );
        let cfg = DriverConfig {
            reps: 2,
            delay_values_ms: vec![800],
            ..DriverConfig::default()
        };
        let driver = Driver::new(&sys, cfg);
        assert!(driver.runs_executed >= 2);
        // Driver construction clears the profiling-run summaries.
        assert!(sys.drain_workload_summaries().is_empty());
    }
}
