//! Deterministic open-loop arrival processes.
//!
//! An [`Arrival`] describes *when requests arrive*, independently of how
//! fast the service drains them — the defining property of an open-loop
//! workload. Sampling is driven entirely by a [`SimRng`], so a process is a
//! pure function of `(parameters, seed)`: the same seed reproduces the same
//! request stream bit-for-bit, which keeps workload-driven campaigns inside
//! the simulator's determinism contract.

use csnake_sim::{SimRng, VirtualTime};

use crate::trace::RecordedTrace;

/// An open-loop arrival process over virtual time.
#[derive(Debug, Clone, PartialEq)]
pub enum Arrival {
    /// Poisson process: independent exponential inter-arrival gaps with
    /// mean `1 / rate_per_sec`.
    Poisson {
        /// Mean arrival rate, requests per virtual second.
        rate_per_sec: f64,
    },
    /// On/off burst process: Poisson arrivals at `rate_per_sec` during each
    /// `on` window, silence during each `off` window, repeating.
    Bursty {
        /// Arrival rate while the source is on, requests per second.
        rate_per_sec: f64,
        /// Active window length.
        on: VirtualTime,
        /// Silent window length.
        off: VirtualTime,
    },
    /// Diurnal rate curve: a Poisson process whose instantaneous rate
    /// follows a raised-cosine between `low_per_sec` (at phase 0) and
    /// `high_per_sec` (half a period in), sampled by thinning.
    Diurnal {
        /// Trough rate, requests per second.
        low_per_sec: f64,
        /// Peak rate, requests per second.
        high_per_sec: f64,
        /// Full low→high→low cycle length.
        period: VirtualTime,
    },
    /// Fixed-interval pacing (no randomness): request `i` arrives at
    /// exactly `interval · i`.
    Paced {
        /// Gap between consecutive requests.
        interval: VirtualTime,
    },
}

impl Arrival {
    /// Samples the first `count` arrival instants, nondecreasing, starting
    /// at or after time zero. Deterministic in `(self, rng state)`.
    pub fn times(&self, rng: &mut SimRng, count: usize) -> Vec<VirtualTime> {
        let mut out = Vec::with_capacity(count);
        match *self {
            Arrival::Poisson { rate_per_sec } => {
                let mut t = 0u64;
                for _ in 0..count {
                    t = t.saturating_add(exp_gap_us(rng, rate_per_sec));
                    out.push(VirtualTime::from_micros(t));
                }
            }
            Arrival::Bursty {
                rate_per_sec,
                on,
                off,
            } => {
                // Sample in "active time" (the concatenation of on-windows)
                // and map back to wall time — exact, no rejection.
                let on_us = on.as_micros().max(1);
                let cycle_us = on_us.saturating_add(off.as_micros());
                let mut active = 0u64;
                for _ in 0..count {
                    active = active.saturating_add(exp_gap_us(rng, rate_per_sec));
                    let wall = (active / on_us)
                        .saturating_mul(cycle_us)
                        .saturating_add(active % on_us);
                    out.push(VirtualTime::from_micros(wall));
                }
            }
            Arrival::Diurnal {
                low_per_sec,
                high_per_sec,
                period,
            } => {
                // Lewis–Shedler thinning against the peak rate.
                let high = high_per_sec.max(low_per_sec);
                let period_us = period.as_micros().max(1) as f64;
                let mut t = 0u64;
                while out.len() < count {
                    t = t.saturating_add(exp_gap_us(rng, high));
                    let phase = (t as f64 / period_us) * std::f64::consts::TAU;
                    let rate = low_per_sec + (high - low_per_sec) * 0.5 * (1.0 - phase.cos());
                    if rng.unit() * high < rate {
                        out.push(VirtualTime::from_micros(t));
                    }
                }
            }
            Arrival::Paced { interval } => {
                for i in 0..count as u64 {
                    out.push(VirtualTime::from_micros(
                        interval.as_micros().saturating_mul(i),
                    ));
                }
            }
        }
        out
    }

    /// The long-run mean rate in requests per virtual second (the pacing
    /// target an experiment offers the service).
    pub fn mean_rate_per_sec(&self) -> f64 {
        match *self {
            Arrival::Poisson { rate_per_sec } => rate_per_sec,
            Arrival::Bursty {
                rate_per_sec,
                on,
                off,
            } => {
                let on_us = on.as_micros() as f64;
                let cycle = on_us + off.as_micros() as f64;
                if cycle == 0.0 {
                    rate_per_sec
                } else {
                    rate_per_sec * on_us / cycle
                }
            }
            Arrival::Diurnal {
                low_per_sec,
                high_per_sec,
                ..
            } => (low_per_sec + high_per_sec.max(low_per_sec)) / 2.0,
            Arrival::Paced { interval } => {
                let us = interval.as_micros();
                if us == 0 {
                    f64::INFINITY
                } else {
                    1e6 / us as f64
                }
            }
        }
    }
}

/// One exponential inter-arrival gap at `rate_per_sec`, in µs (≥ 1).
fn exp_gap_us(rng: &mut SimRng, rate_per_sec: f64) -> u64 {
    let rate = rate_per_sec.max(1e-9);
    // -ln(1-U)/λ; 1-U ∈ (0, 1] avoids ln(0).
    let gap_s = -(1.0 - rng.unit()).ln() / rate;
    ((gap_s * 1e6) as u64).max(1)
}

/// Where a workload's request stream comes from: a sampled arrival process
/// or a recorded trace replayed verbatim.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalSource {
    /// Sample `offered` arrivals from the process.
    Process {
        /// The arrival process to sample.
        arrival: Arrival,
        /// How many requests to offer.
        offered: u64,
    },
    /// Replay a recorded trace's timestamps exactly.
    Trace(RecordedTrace),
}

impl ArrivalSource {
    /// The request instants this source offers, nondecreasing.
    pub fn times(&self, rng: &mut SimRng) -> Vec<VirtualTime> {
        match self {
            ArrivalSource::Process { arrival, offered } => arrival.times(rng, *offered as usize),
            ArrivalSource::Trace(trace) => trace.arrival_times(),
        }
    }

    /// Number of requests the source offers.
    pub fn offered(&self) -> u64 {
        match self {
            ArrivalSource::Process { offered, .. } => *offered,
            ArrivalSource::Trace(trace) => trace.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_nondecreasing(times: &[VirtualTime]) {
        for pair in times.windows(2) {
            assert!(pair[0] <= pair[1], "{} > {}", pair[0], pair[1]);
        }
    }

    #[test]
    fn poisson_is_deterministic_and_near_rate() {
        let arrival = Arrival::Poisson {
            rate_per_sec: 1000.0,
        };
        let a = arrival.times(&mut SimRng::new(7), 10_000);
        let b = arrival.times(&mut SimRng::new(7), 10_000);
        assert_eq!(a, b);
        assert_nondecreasing(&a);
        // 10k arrivals at 1000/s should take ≈10 s of virtual time.
        let span_s = a.last().unwrap().as_micros() as f64 / 1e6;
        assert!((8.0..12.0).contains(&span_s), "{span_s}");
    }

    #[test]
    fn bursty_leaves_off_windows_empty() {
        let on = VirtualTime::from_millis(100);
        let off = VirtualTime::from_millis(400);
        let arrival = Arrival::Bursty {
            rate_per_sec: 2000.0,
            on,
            off,
        };
        let times = arrival.times(&mut SimRng::new(3), 2_000);
        assert_nondecreasing(&times);
        let cycle = on.as_micros() + off.as_micros();
        for t in &times {
            assert!(
                t.as_micros() % cycle < on.as_micros(),
                "arrival {t} inside an off-window"
            );
        }
    }

    #[test]
    fn diurnal_peak_half_period_outpaces_trough() {
        let period = VirtualTime::from_secs(10);
        let arrival = Arrival::Diurnal {
            low_per_sec: 100.0,
            high_per_sec: 2000.0,
            period,
        };
        let times = arrival.times(&mut SimRng::new(11), 8_000);
        assert_nondecreasing(&times);
        // Phase [0.25, 0.75) of each period holds the raised-cosine peak.
        let peak = times
            .iter()
            .filter(|t| {
                let pos = t.as_micros() % period.as_micros();
                (period.as_micros() / 4..3 * period.as_micros() / 4).contains(&pos)
            })
            .count();
        assert!(
            peak * 2 > times.len(),
            "peak half-period got {peak}/{} arrivals",
            times.len()
        );
    }

    #[test]
    fn paced_is_an_exact_grid() {
        let arrival = Arrival::Paced {
            interval: VirtualTime::from_millis(5),
        };
        let times = arrival.times(&mut SimRng::new(1), 4);
        assert_eq!(
            times,
            vec![
                VirtualTime::ZERO,
                VirtualTime::from_millis(5),
                VirtualTime::from_millis(10),
                VirtualTime::from_millis(15),
            ]
        );
    }

    #[test]
    fn mean_rates_reflect_duty_cycle() {
        let bursty = Arrival::Bursty {
            rate_per_sec: 1000.0,
            on: VirtualTime::from_millis(100),
            off: VirtualTime::from_millis(300),
        };
        assert!((bursty.mean_rate_per_sec() - 250.0).abs() < 1e-9);
        let paced = Arrival::Paced {
            interval: VirtualTime::from_millis(2),
        };
        assert!((paced.mean_rate_per_sec() - 500.0).abs() < 1e-9);
    }
}
