//! End-to-end tests of the scenario subsystem.
//!
//! * the toy port (`scenarios/toy.csnake-scn`) must produce a
//!   `DetectionReport` *field-identical* to the hand-coded `ToySystem` —
//!   same traces, same causal edges, same cycles, same scores;
//! * every new corpus scenario's seeded ground-truth cycle must be found
//!   by the full staged-`Session` pipeline (the detector never sees the
//!   labels);
//! * the scenario-aware `by_name` resolves corpus systems and reports
//!   typed errors listing all known names.

use std::sync::Arc;

use csnake::core::{detect, DetectConfig, ProgressCollector, Session, TargetSystem, ThreePhase};
use csnake::scenario::{corpus_dir, load_file};
use csnake::targets::ToySystem;

fn fast_config() -> DetectConfig {
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800];
    cfg
}

#[test]
fn toy_port_report_is_field_identical_to_the_hand_coded_target() {
    let scn = load_file(corpus_dir().join("toy.csnake-scn")).expect("toy port loads");
    let hand = ToySystem::new();

    // The instrumentation inventory itself must be identical: same interned
    // functions, same dense ids, same labels/kinds/metadata.
    assert_eq!(
        csnake::core::registry_fingerprint(&scn.registry()),
        csnake::core::registry_fingerprint(&hand.registry()),
        "registry fingerprints differ"
    );

    // Every workload must record identical traces (profile side).
    for test in hand.tests() {
        let a = hand.run(test.id, None, 7);
        let b = scn.run(test.id, None, 7);
        assert_eq!(a.coverage, b.coverage, "{:?} coverage", test.name);
        assert_eq!(a.occurrences, b.occurrences, "{:?} occurrences", test.name);
        assert_eq!(a.loop_counts, b.loop_counts, "{:?} loop counts", test.name);
        assert_eq!(a.loop_states, b.loop_states, "{:?} loop states", test.name);
        assert_eq!(a.call_edges, b.call_edges, "{:?} call graph", test.name);
        assert_eq!(a.hook_count, b.hook_count, "{:?} hook count", test.name);
        assert_eq!(a.events, b.events, "{:?} event count", test.name);
        assert_eq!(a.end_time, b.end_time, "{:?} end time", test.name);
    }

    // And the full pipeline must produce a field-identical report.
    let cfg = fast_config();
    let hand_detection = detect(&hand, &cfg);
    let scn_detection = detect(&scn, &cfg);
    assert_eq!(
        format!("{:?}", hand_detection.report),
        format!("{:?}", scn_detection.report),
        "DetectionReport differs between the Rust toy and its scenario port"
    );
    assert_eq!(hand_detection.runs_executed, scn_detection.runs_executed);
    assert_eq!(
        hand_detection.alloc.experiments_run,
        scn_detection.alloc.experiments_run
    );
    assert_eq!(hand_detection.report.matches.len(), 1);
    assert_eq!(hand_detection.report.matches[0].bug.id, "toy-retry-storm");
}

/// Drives the staged pipeline over one corpus scenario and asserts every
/// declared ground-truth bug is matched.
fn assert_scenario_detects(file: &str, expected_bugs: &[&str]) {
    let system =
        load_file(corpus_dir().join(file)).unwrap_or_else(|e| panic!("{file} failed to load: {e}"));
    let cfg = fast_config();
    let progress = Arc::new(ProgressCollector::new());
    let mut session = Session::builder(&system)
        .config(cfg.clone())
        .observer(progress.clone())
        .build()
        .expect("scenario target is drivable");
    let report = session
        .run_to_report(&ThreePhase::new(cfg.alloc.clone()))
        .expect("staged pipeline runs");

    let found: Vec<&str> = report.matches.iter().map(|m| m.bug.id).collect();
    for bug in expected_bugs {
        assert!(
            found.contains(bug),
            "[{file}] bug {bug} undetected; matches: {found:?}; undetected: {:?}; edges: {}",
            report.undetected.iter().map(|b| b.id).collect::<Vec<_>>(),
            report.edge_count,
        );
    }
    assert!(
        report.undetected.is_empty(),
        "[{file}] undetected bugs: {:?}",
        report.undetected.iter().map(|b| b.id).collect::<Vec<_>>()
    );
    // The observer saw the campaign stream.
    let seen = progress.snapshot();
    assert!(seen.experiments > 0 && seen.cycles > 0);
}

#[test]
fn cassandra_hints_cycle_is_detected() {
    assert_scenario_detects("cassandra-hints.csnake-scn", &["cassandra-hint-pileup"]);
}

#[test]
fn kafka_isr_cycle_is_detected() {
    assert_scenario_detects("kafka-isr.csnake-scn", &["kafka-isr-refetch"]);
}

#[test]
fn zookeeper_session_cycle_is_detected() {
    assert_scenario_detects("zookeeper-session.csnake-scn", &["zk-session-storm"]);
}

#[test]
fn etcd_lease_cycle_is_detected() {
    assert_scenario_detects("etcd-lease.csnake-scn", &["etcd-lease-stampede"]);
}

#[test]
fn gossip_antientropy_cycle_is_detected() {
    assert_scenario_detects(
        "gossip-antientropy.csnake-scn",
        &["gossip-repair-amplifier"],
    );
}

#[test]
fn corpus_has_at_least_six_specs_and_all_lint_clean() {
    let specs = csnake::scenario::corpus_specs().expect("corpus parses");
    assert!(
        specs.len() >= 6,
        "corpus must ship at least six specs, found {}",
        specs.len()
    );
    for (name, (path, spec)) in &specs {
        let system = csnake::scenario::compile(spec)
            .unwrap_or_else(|e| panic!("{} does not compile: {e}", path.display()));
        assert_eq!(system.name(), name);
        // Canonical round-trip, the invariant the lint tool enforces.
        let printed = csnake::scenario::print(spec);
        let reparsed = csnake::scenario::parse_str(&printed)
            .unwrap_or_else(|e| panic!("{name} reprint fails to parse: {e}"));
        assert_eq!(&reparsed, spec, "{name} round-trip changed the spec");
    }
}

#[test]
fn scenario_by_name_resolves_and_reports_typed_errors() {
    // Builtin wins for "toy".
    let toy = csnake::scenario::by_name("toy").expect("builtin resolves");
    assert_eq!(toy.name(), "toy");
    // Corpus scenarios resolve by declared name.
    let kafka = csnake::scenario::by_name("kafka-isr").expect("corpus scenario resolves");
    assert!(!kafka.tests().is_empty());
    // Unknown names list builtins and corpus names in a typed error.
    match csnake::scenario::by_name("does-not-exist") {
        Err(csnake::core::CsnakeError::InvalidTarget(msg)) => {
            assert!(msg.contains("mini-hdfs2"), "{msg}");
            assert!(msg.contains("kafka-isr"), "{msg}");
        }
        Err(other) => panic!("expected InvalidTarget, got {other}"),
        Ok(t) => panic!("unexpectedly resolved {:?}", t.name()),
    }
}
