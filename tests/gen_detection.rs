//! Differential smoke over the scenario synthesizer: at least one
//! generated spec per cycle shape is detected end-to-end by the staged
//! `Session` pipeline, always evaluating the *reparse of the canonical
//! print* so the text form stays load-bearing.
//!
//! As of this revision **no shape family is a known gap** — all four
//! (queue, retry, timer, cross) detect across broad seed sweeps
//! (`BENCH_gen.json` records 60/60). If a future generator or pipeline
//! change makes a family undetectable, demote its case here to a
//! `#[ignore]`d known-gap test (with the failing seed pinned) rather
//! than deleting it.

use std::sync::Arc;

use csnake::core::{
    run_random_allocation_with, DetectConfig, NoopObserver, ProgressCollector, Session, ThreePhase,
};
use csnake_gen::{generate, GenConfig, Shape};
use csnake_scenario::{compile, parse_str, print, ScenarioSystem};

/// The reduced-but-proven campaign configuration (the corpus smoke
/// settings).
fn cfg(cache: bool) -> DetectConfig {
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800];
    cfg.driver.cache_injections = cache;
    cfg
}

/// Generates seed `seed`, round-trips it through the printer, compiles
/// the reparsed spec.
fn roundtripped_system(seed: u64, gen_cfg: &GenConfig) -> ScenarioSystem {
    let g = generate(seed, gen_cfg);
    let text = print(&g.spec);
    let spec = parse_str(&text).expect("generated specs parse");
    assert_eq!(spec, g.spec, "round-trip changed the spec");
    compile(&spec).expect("generated specs compile")
}

fn assert_detected(seed: u64, shape: Shape) {
    let gen_cfg = GenConfig {
        shape: Some(shape),
        ..GenConfig::default()
    };
    let g = generate(seed, &gen_cfg);
    let system = roundtripped_system(seed, &gen_cfg);
    let cfg = cfg(false);
    let mut session = Session::builder(&system)
        .config(cfg.clone())
        .build()
        .expect("generated targets are drivable");
    let report = session
        .run_to_report(&ThreePhase::new(cfg.alloc.clone()))
        .expect("staged pipeline runs");
    assert!(
        report.undetected.is_empty(),
        "gen:{seed} [{shape}]: planted bugs undetected: {:?}",
        report.undetected.iter().map(|b| b.id).collect::<Vec<_>>()
    );
    for planted in &g.truth {
        assert!(
            report.matches.iter().any(|m| m.bug.id == planted.bug_id),
            "gen:{seed} [{shape}]: {} not matched",
            planted.bug_id
        );
    }
}

#[test]
fn queue_shape_is_detected_end_to_end() {
    assert_detected(0, Shape::Queue);
}

#[test]
fn retry_shape_is_detected_end_to_end() {
    assert_detected(1, Shape::Retry);
}

#[test]
fn timer_shape_is_detected_end_to_end() {
    assert_detected(2, Shape::Timer);
}

#[test]
fn cross_shape_is_detected_end_to_end() {
    assert_detected(3, Shape::Cross);
}

/// Two planted cycles in one spec: both bugs detected by one campaign.
///
/// Multi-cycle specs carry a volume/recovery workload pair *per cycle*,
/// so the `(fault, test)` combination space is `5·|F|` and the default
/// `4·|F|` budget no longer exhausts it — at 4·|F| roughly a third of
/// two-cycle seeds lose one cycle's amplification edge to allocation
/// luck. The paper calls 4·|F| a *minimum* (§5.2); scaling the budget
/// with the workload count (6·|F| here) detects both cycles across
/// seed sweeps.
#[test]
fn two_planted_cycles_are_both_detected() {
    let gen_cfg = GenConfig {
        planted: 2,
        ..GenConfig::default()
    };
    let system = roundtripped_system(9, &gen_cfg);
    let g = generate(9, &gen_cfg);
    assert_eq!(g.truth.len(), 2);
    let mut cfg = cfg(false);
    cfg.alloc.budget_per_fault = 6;
    let mut session = Session::builder(&system)
        .config(cfg.clone())
        .build()
        .unwrap();
    let report = session
        .run_to_report(&ThreePhase::new(cfg.alloc.clone()))
        .expect("staged pipeline runs");
    for planted in &g.truth {
        assert!(
            report.matches.iter().any(|m| m.bug.id == planted.bug_id),
            "gen:9 two-cycle: {} not matched (undetected: {:?})",
            planted.bug_id,
            report.undetected.iter().map(|b| b.id).collect::<Vec<_>>()
        );
    }
}

/// The injection-run cache never changes results: the same generated
/// target produces an identical report with the cache on and off, the
/// first campaign is all misses, and a second (random-baseline) campaign
/// over the same driver replays from cache without new simulator runs.
#[test]
fn injection_cache_is_result_equivalent_and_hits_on_reuse() {
    let gen_cfg = GenConfig {
        shape: Some(Shape::Queue),
        ..GenConfig::default()
    };
    let system = roundtripped_system(4, &gen_cfg);

    let run = |cache: bool| {
        let cfg = cfg(cache);
        let progress = Arc::new(ProgressCollector::new());
        let mut session = Session::builder(&system)
            .config(cfg.clone())
            .observer(progress.clone())
            .build()
            .unwrap();
        session
            .run_to_report(&ThreePhase::new(cfg.alloc.clone()))
            .expect("staged pipeline runs");
        (session, progress)
    };

    let (mut cached, progress) = run(true);
    let (plain, _) = run(false);
    assert_eq!(
        format!("{:?}", cached.detection_report().unwrap()),
        format!("{:?}", plain.detection_report().unwrap()),
        "cache changed the detection report"
    );

    // First campaign: every combination was new.
    let seen = progress.snapshot();
    assert!(seen.trace_cache_misses > 0, "campaign recorded no misses");
    assert_eq!(seen.trace_cache_hits, 0, "first campaign cannot hit");

    // A comparison campaign over the same driver replays from cache.
    let engine = cached.engine_mut().expect("profiled session");
    let runs_before = engine.runs_executed;
    let budget = engine.analysis.injectable.len() * 4;
    let alloc = run_random_allocation_with(engine, budget, 0x7777, &NoopObserver);
    assert!(alloc.experiments_run > 0);
    let (hits, _) = engine.trace_cache_stats();
    assert!(hits > 0, "random baseline never hit the cache");
    assert_eq!(
        engine.runs_executed, runs_before,
        "cache hits must not re-run the simulator"
    );
}
