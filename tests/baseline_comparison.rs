//! Baseline comparisons (§8.2, §8.2.1) as integration tests.

use csnake::baselines::{run_blackbox_campaign, run_naive_strategy, BlackboxConfig, NaiveConfig};
use csnake::core::{detect, DetectConfig, TargetSystem};
use csnake::targets::{MiniFlink, MiniOzone, ToySystem};

#[test]
fn blackbox_fuzzer_finds_no_seeded_cycles() {
    // §8.2.1: Jepsen/Blockade-style campaigns on Flink and Ozone find none
    // of the seeded self-sustaining cascading failures.
    for target in [
        Box::new(MiniFlink::new()) as Box<dyn TargetSystem>,
        Box::new(MiniOzone::new()),
    ] {
        let report = run_blackbox_campaign(
            target.as_ref(),
            &BlackboxConfig {
                rounds: 30,
                seed: 99,
            },
        );
        assert!(
            report.bugs_found.is_empty(),
            "{}: {:?}",
            target.name(),
            report.bugs_found
        );
    }
}

#[test]
fn csnake_beats_naive_strategy_on_ozone() {
    // The heartbeat-pipeline bug's conditions are co-located in one test in
    // our mini-Ozone (the Alt.? = yes row); report-queue and replication
    // need stitching across workloads.
    let target = MiniOzone::new();
    let naive = run_naive_strategy(&target, &NaiveConfig::default());
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800, 3200];
    cfg.alloc.budget_per_fault = 12;
    let det = detect(&target, &cfg);
    assert!(
        det.report.matches.len() > naive.alt_detected.len(),
        "csnake {} vs naive {:?}",
        det.report.matches.len(),
        naive.alt_detected
    );
}

#[test]
fn naive_strategy_reports_are_consistent() {
    let target = ToySystem::new();
    let report = run_naive_strategy(&target, &NaiveConfig::default());
    // Every finding references a real fault point and a real test.
    let reg = target.registry();
    let tests = target.tests();
    for f in &report.findings {
        assert!((f.fault.0 as usize) < reg.points().len());
        assert!((f.test.0 as usize) < tests.len());
        assert_eq!(reg.point(f.fault).label, f.label);
    }
    assert!(report.runs > 0);
}
