//! Fault-tolerant campaign supervisor: kill-and-resume and self-chaos
//! integration tests.
//!
//! * **Kill-at-every-checkpoint matrix** — a campaign streaming mid-phase
//!   checkpoints is "killed" at every checkpoint it ever wrote; resuming
//!   each one must produce a `DetectionReport` Debug-identical to the
//!   uninterrupted run.
//! * **Transient chaos is invisible** — with the self-fault-injection
//!   harness making experiment jobs panic transiently, the supervisor's
//!   retries must reproduce the failure-free report bit-for-bit (same
//!   simulator-run accounting included).
//! * **Permanent chaos degrades gracefully** — cells that keep failing
//!   become enumerated gaps in a completed, annotated report instead of
//!   aborting the campaign.
//! * **Torn snapshots are rejected typed** — truncating a checkpoint at
//!   any byte yields `CsnakeError::SnapshotTorn`/`SnapshotCorrupt`, never
//!   a panic or a silently-wrong resume.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use csnake::core::{
    ChaosConfig, CsnakeError, DetectConfig, ProgressCollector, Session, ThreePhase,
};
use csnake::targets::ToySystem;

fn fast_config() -> DetectConfig {
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800];
    cfg.driver.retry.backoff_base_ms = 1;
    cfg
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("csnake-supervisor-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Observer that archives every checkpoint file the instant it is written,
/// simulating a kill at that exact moment: the archived copy is what a
/// crashed process would find on disk.
struct CheckpointArchiver {
    dir: PathBuf,
    archived: Mutex<Vec<PathBuf>>,
}

impl csnake::core::CampaignObserver for CheckpointArchiver {
    fn checkpoint_written(&self, path: &Path, phase: u8, executed_in_phase: usize) {
        let mut archived = self.archived.lock().unwrap();
        let dst = self.dir.join(format!(
            "ckpt-{:03}-p{phase}-e{executed_in_phase}.csnake",
            archived.len()
        ));
        std::fs::copy(path, &dst).expect("archive checkpoint");
        archived.push(dst);
    }
}

#[test]
fn resuming_from_every_checkpoint_reproduces_the_report() {
    let dir = temp_dir("matrix");
    let target = ToySystem::new();

    // Uninterrupted baseline.
    let mut baseline = Session::builder(&target)
        .config(fast_config())
        .build()
        .expect("drivable");
    let baseline_report = format!(
        "{:?}",
        baseline
            .run_to_report(&ThreePhase::default())
            .expect("baseline")
    );
    let baseline_runs = baseline.runs_executed();

    // Checkpointed run, archiving the file at every write.
    let archiver = Arc::new(CheckpointArchiver {
        dir: dir.clone(),
        archived: Mutex::new(Vec::new()),
    });
    let live = dir.join("live.csnake");
    let mut checkpointed = Session::builder(&target)
        .config(fast_config())
        .observer(archiver.clone())
        .auto_checkpoint(&live, 1)
        .build()
        .expect("drivable");
    let checkpointed_report = format!(
        "{:?}",
        checkpointed
            .run_to_report(&ThreePhase::default())
            .expect("checkpointed run")
    );
    assert_eq!(
        baseline_report, checkpointed_report,
        "checkpointing perturbed the campaign"
    );

    let archived = archiver.archived.lock().unwrap().clone();
    assert!(
        archived.len() >= 4,
        "cadence 1 should checkpoint every experiment, got {}",
        archived.len()
    );

    // Kill at every checkpoint: each archived file must resume into the
    // identical report, with identical run accounting.
    for ckpt in &archived {
        let mut resumed = Session::resume(&target, ckpt)
            .unwrap_or_else(|e| panic!("resume {}: {e}", ckpt.display()));
        let report = resumed
            .run_to_report(&ThreePhase::default())
            .unwrap_or_else(|e| panic!("resumed run {}: {e}", ckpt.display()));
        assert_eq!(
            baseline_report,
            format!("{report:?}"),
            "resume from {} diverged",
            ckpt.display()
        );
        assert_eq!(
            baseline_runs,
            resumed.runs_executed(),
            "resume from {} lost run accounting",
            ckpt.display()
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn transient_chaos_is_invisible_in_the_report() {
    let target = ToySystem::new();

    let mut clean = Session::builder(&target)
        .config(fast_config())
        .build()
        .expect("drivable");
    let clean_report = format!(
        "{:?}",
        clean.run_to_report(&ThreePhase::default()).expect("clean")
    );
    let clean_runs = clean.runs_executed();

    // Every experiment cell has a 40% chance of an injected panic and a
    // 20% chance of an injected stall, each clearing after one retry.
    let mut cfg = fast_config();
    cfg.driver.chaos = ChaosConfig {
        seed: 7,
        experiment_panic: 0.4,
        experiment_stall: 0.2,
        stall_ms: 1,
        transient_attempts: 1,
        ..ChaosConfig::default()
    };
    let progress = Arc::new(ProgressCollector::new());
    let mut chaotic = Session::builder(&target)
        .config(cfg)
        .observer(progress.clone())
        .build()
        .expect("drivable");
    let chaotic_report = format!(
        "{:?}",
        chaotic
            .run_to_report(&ThreePhase::default())
            .expect("chaotic run completes")
    );

    assert_eq!(
        clean_report, chaotic_report,
        "transient failures must not leave a trace in the report"
    );
    assert_eq!(
        clean_runs,
        chaotic.runs_executed(),
        "failed attempts must contribute zero simulator runs"
    );
    let snap = progress.snapshot();
    assert!(
        snap.batch_retries > 0,
        "chaos at these rates must have caused at least one retry"
    );
    assert_eq!(snap.batch_failures, 0, "no cell may fail permanently");
    assert!(!snap.degraded);
}

#[test]
fn permanent_chaos_degrades_gracefully() {
    let target = ToySystem::new();
    let mut cfg = fast_config();
    cfg.driver.chaos = ChaosConfig {
        seed: 11,
        experiment_panic: 0.3,
        permanent: true,
        ..ChaosConfig::default()
    };
    let progress = Arc::new(ProgressCollector::new());
    let mut session = Session::builder(&target)
        .config(cfg)
        .observer(progress.clone())
        .build()
        .expect("drivable");
    let report = session
        .run_to_report(&ThreePhase::default())
        .expect("permanently failing cells must not abort the campaign")
        .clone();

    assert!(report.degraded(), "report must be marked partial");
    assert!(!report.missing_cells.is_empty());
    let snap = progress.snapshot();
    assert!(snap.degraded, "observer must see the degraded event");
    assert_eq!(
        snap.batch_failures,
        report.missing_cells.len(),
        "every missing cell surfaces exactly one batch_failed event"
    );

    // Two runs under the same chaos seed fail the same cells: degraded
    // completion is deterministic too.
    let mut cfg2 = fast_config();
    cfg2.driver.chaos = ChaosConfig {
        seed: 11,
        experiment_panic: 0.3,
        permanent: true,
        ..ChaosConfig::default()
    };
    let mut again = Session::builder(&target)
        .config(cfg2)
        .build()
        .expect("drivable");
    let report2 = again
        .run_to_report(&ThreePhase::default())
        .expect("second run")
        .clone();
    assert_eq!(format!("{report:?}"), format!("{report2:?}"));
}

#[test]
fn torn_checkpoints_are_rejected_typed_at_every_cut() {
    let dir = temp_dir("torn");
    let target = ToySystem::new();
    let mut session = Session::builder(&target)
        .config(fast_config())
        .build()
        .expect("drivable");
    session.profile().expect("profile");
    let path = dir.join("boundary.csnake");
    session.checkpoint(&path).expect("checkpoint");
    let bytes = std::fs::read(&path).expect("read back");

    // A sweep of truncation points across the whole file, plus the exact
    // header boundary: all typed, none panic, none "resume" wrongly.
    let cuts: Vec<usize> = (0..bytes.len()).step_by(97).chain([10, 23, 24]).collect();
    for cut in cuts {
        let torn_path = dir.join("torn.csnake");
        std::fs::write(&torn_path, &bytes[..cut.min(bytes.len() - 1)]).expect("write torn");
        match Session::resume(&target, &torn_path) {
            Err(CsnakeError::SnapshotTorn { expected, found }) => {
                assert!(found < expected, "cut {cut}: torn must report a shortfall");
            }
            Err(CsnakeError::SnapshotCorrupt(_)) => {}
            other => panic!(
                "cut {cut}: expected SnapshotTorn/SnapshotCorrupt, got {:?}",
                other.map(|s| s.stage())
            ),
        }
    }

    // The untruncated file still resumes.
    let resumed = Session::resume(&target, &path).expect("intact file resumes");
    assert_eq!(resumed.stage(), csnake::core::Stage::Profiled);
    std::fs::remove_dir_all(&dir).ok();
}

/// Injected snapshot-IO failures in permanent mode skip every checkpoint;
/// the campaign itself must be unaffected.
#[test]
fn permanent_io_chaos_skips_checkpoints_but_not_the_campaign() {
    let dir = temp_dir("io-chaos");
    let target = ToySystem::new();

    let mut clean = Session::builder(&target)
        .config(fast_config())
        .build()
        .expect("drivable");
    let clean_report = format!(
        "{:?}",
        clean.run_to_report(&ThreePhase::default()).expect("clean")
    );

    let mut cfg = fast_config();
    cfg.driver.chaos = ChaosConfig {
        seed: 3,
        snapshot_io: 1.0,
        permanent: true,
        ..ChaosConfig::default()
    };
    let progress = Arc::new(ProgressCollector::new());
    let path = dir.join("never-written.csnake");
    let mut session = Session::builder(&target)
        .config(cfg)
        .observer(progress.clone())
        .auto_checkpoint(&path, 1)
        .build()
        .expect("drivable");
    let report = format!(
        "{:?}",
        session
            .run_to_report(&ThreePhase::default())
            .expect("campaign survives checkpoint IO failures")
    );

    assert_eq!(clean_report, report);
    assert_eq!(progress.snapshot().checkpoints_written, 0);
    assert!(!path.exists(), "every write was chaos-failed");
    std::fs::remove_dir_all(&dir).ok();
}
