//! End-to-end pipeline test on the toy target: the full CSnake pipeline must
//! discover the seeded retry-storm cycle by stitching edges from two
//! different workloads.

use csnake::core::{detect, ClusterVerdict, DetectConfig, EdgeKind, TargetSystem};
use csnake::targets::ToySystem;

fn fast_config() -> DetectConfig {
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800];
    cfg
}

#[test]
fn toy_cycle_is_detected_end_to_end() {
    let target = ToySystem::new();
    let detection = detect(&target, &fast_config());

    // The static analyzer must keep the three real points and filter the
    // decoys (const warmup loop, JDK-utility boolean).
    assert_eq!(detection.analysis.stats.active_loops, 1);
    assert_eq!(detection.analysis.stats.active_exceptions, 1);
    assert_eq!(detection.analysis.stats.active_negations, 1);

    // The two causal edges must be discovered...
    let db = &detection.alloc.db;
    let kinds: Vec<EdgeKind> = db.edges().iter().map(|e| e.kind).collect();
    assert!(
        kinds.contains(&EdgeKind::ED),
        "delay → job_ioe missing: {kinds:?}"
    );
    assert!(
        kinds.contains(&EdgeKind::SI),
        "job_ioe → work-loop S+ missing: {kinds:?}"
    );

    // ... and stitched into the seeded cycle.
    assert!(
        !detection.report.cycles.is_empty(),
        "no cycles reported; edges: {:?}",
        db.edges()
            .iter()
            .map(|e| e.describe(&target.registry()))
            .collect::<Vec<_>>()
    );
    assert_eq!(
        detection.report.matches.len(),
        1,
        "the toy retry-storm bug must be matched; undetected: {:?}",
        detection.report.undetected
    );
    let m = &detection.report.matches[0];
    assert_eq!(m.bug.id, "toy-retry-storm");
    assert_eq!(m.composition.delays, 1);
    assert_eq!(m.composition.exceptions, 1);
    assert_eq!(m.composition.negations, 0);

    // The matching cluster is a true positive.
    assert!(detection
        .report
        .verdicts
        .contains(&ClusterVerdict::TruePositive));

    // Budget accounting: 3 injectable faults → budget 12, and the toy has
    // 3×3 = 9 (fault, test) combinations, so at most 9 experiments run.
    assert_eq!(detection.alloc.budget, 12);
    assert!(detection.alloc.experiments_run <= 9);
}
