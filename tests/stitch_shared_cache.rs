//! The shared pair-verdict stitch build against the retained per-edge,
//! per-worker-cache reference build.
//!
//! `StitchIndex::build` groups edges by interned (effect fault, effect
//! state), deduplicates compatibility questions into one global table of
//! distinct state pairs, and decides each pair exactly once across all
//! workers. `StitchIndex::build_reference` is the old formulation: one
//! successor list per edge, one memo cache per worker, the same pair
//! re-decided once per worker that encounters it. The two must agree on
//! every successor list and on the beam search's byte-exact output at
//! every thread count — the shared table changes who computes a verdict,
//! never what the verdict is.

use csnake::core::beam::BeamConfig;
use csnake::core::StitchIndex;
use csnake_bench::synthetic_db;

#[test]
fn shared_table_build_matches_per_worker_cache_build_across_thread_counts() {
    // Shapes chosen to exercise both sides of the parallel-build
    // threshold and a loop-heavy db where state pairs repeat most.
    for (n_faults, fanout, loop_share) in [(60u32, 3u32, 0.0), (300, 5, 0.4), (800, 6, 0.3)] {
        let db = synthetic_db(n_faults, fanout, loop_share);
        let reference = StitchIndex::build_reference(&db, 1);
        for threads in [1usize, 2, 4, 8] {
            let index = StitchIndex::build(&db, threads);
            assert_eq!(index.len(), reference.len());
            for i in 0..db.len() as u32 {
                assert_eq!(
                    index.successors(i),
                    reference.successors(i),
                    "n={n_faults} threads={threads} edge {i}"
                );
            }
            let stats = index.compat_stats();
            assert!(
                stats.edge_groups <= stats.edges,
                "grouping can only shrink the table"
            );
        }
    }
}

#[test]
fn shared_table_search_output_is_byte_identical() {
    let db = synthetic_db(300, 5, 0.4);
    let cfg = BeamConfig {
        beam_size: 5_000,
        max_len: 4,
        ..BeamConfig::default()
    };
    let sim = |_: csnake::inject::FaultId| 0.6;
    let expected = StitchIndex::build_reference(&db, 1).search(&sim, &cfg);
    assert!(!expected.is_empty(), "fixture must produce cycles");
    for threads in [1usize, 2, 4, 8] {
        let cycles = StitchIndex::build(&db, threads).search(&sim, &cfg);
        assert_eq!(
            cycles, expected,
            "threads={threads}: shared-table search diverged from per-worker-cache build"
        );
        let reference_cycles = StitchIndex::build_reference(&db, threads).search(&sim, &cfg);
        assert_eq!(
            reference_cycles, expected,
            "threads={threads}: reference build must itself be thread-count-invariant"
        );
    }
}
