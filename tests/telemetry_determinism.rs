//! Flight-recorder invariants as integration tests.
//!
//! Two properties hold the telemetry layer together:
//!
//! 1. **Determinism of the observed stream**: the deterministic subset of
//!    the event journal (stages, phases, experiments, edges, cycles,
//!    budget — everything [`TelemetryRecord::deterministic_key`] keeps)
//!    is a pure function of `(target, config)`. Thread counts change
//!    timestamps and interleavings, never the sequence.
//! 2. **Non-perturbation**: attaching a recorder changes nothing about
//!    the campaign — reports are Debug-identical with it on or off.
//!
//! The on-disk journal also inherits the snapshot threat model: a torn
//! tail and a flipped byte must be *typed* rejections, not garbage reads.

use std::sync::Arc;

use csnake::core::{CsnakeError, DetectConfig, Session, ThreePhase};
use csnake_telemetry::{read_journal, FlightRecorder, TelemetryRecord};

fn fast_config(parallel: bool) -> DetectConfig {
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800];
    cfg.driver.retry.backoff_base_ms = 1;
    cfg.driver.parallel = parallel;
    cfg
}

/// Runs one recorded campaign; returns the report's Debug form and the
/// recorded stream.
fn recorded_run(target_name: &str, parallel: bool) -> (String, Vec<TelemetryRecord>) {
    let target = csnake_gen::by_name(target_name).expect("known target");
    let recorder = Arc::new(
        FlightRecorder::builder()
            .build()
            .expect("in-memory recorder"),
    );
    let mut session = Session::builder(target.as_ref())
        .config(fast_config(parallel))
        .observer(recorder.clone())
        .build()
        .expect("target is drivable");
    let report = session
        .run_to_report(&ThreePhase::default())
        .expect("campaign completes");
    (format!("{report:?}"), recorder.records())
}

/// The timestamp-free deterministic projection of a recorded stream.
fn deterministic_keys(records: &[TelemetryRecord]) -> Vec<String> {
    records
        .iter()
        .filter_map(|r| r.deterministic_key())
        .collect()
}

#[test]
fn event_stream_is_identical_across_thread_counts() {
    for name in ["toy", "gen:5"] {
        let (report_seq, sequential) = recorded_run(name, false);
        let (report_par, parallel) = recorded_run(name, true);
        assert_eq!(
            report_seq, report_par,
            "{name}: thread count changed the report"
        );
        assert_eq!(
            deterministic_keys(&sequential),
            deterministic_keys(&parallel),
            "{name}: thread count changed the deterministic event sequence"
        );
        assert!(
            !deterministic_keys(&sequential).is_empty(),
            "{name}: campaign produced no deterministic events"
        );
    }
}

#[test]
fn recorder_never_perturbs_the_report() {
    for name in ["toy", "gen:5"] {
        let target = csnake_gen::by_name(name).expect("known target");
        let mut bare = Session::builder(target.as_ref())
            .config(fast_config(true))
            .build()
            .expect("target is drivable");
        let baseline = format!(
            "{:?}",
            bare.run_to_report(&ThreePhase::default())
                .expect("campaign completes")
        );
        let (recorded, records) = recorded_run(name, true);
        assert_eq!(baseline, recorded, "{name}: recorder perturbed the report");
        assert!(!records.is_empty(), "{name}: recorder captured nothing");
    }
}

#[test]
fn journal_rejects_truncation_and_garbling_typed() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("csnake-journal-threat-{}.csnj", std::process::id()));
    let recorder = Arc::new(
        FlightRecorder::builder()
            .binary(path.clone())
            .build()
            .expect("journal opens"),
    );
    let target = csnake_gen::by_name("toy").expect("toy exists");
    let mut session = Session::builder(target.as_ref())
        .config(fast_config(true))
        .observer(recorder.clone())
        .build()
        .expect("toy is drivable");
    session
        .run_to_report(&ThreePhase::default())
        .expect("campaign completes");
    recorder.finish().expect("journal flushes");

    let bytes = std::fs::read(&path).expect("journal exists");
    let n = recorder.records().len();
    assert_eq!(
        read_journal(&path).expect("intact journal reads").len(),
        n,
        "round-trip lost records"
    );

    // A torn tail (mid-frame) is a typed SnapshotTorn, and the prefix
    // before the tear is NOT silently returned as a complete journal.
    std::fs::write(&path, &bytes[..bytes.len() - 3]).expect("truncate");
    match read_journal(&path) {
        Err(CsnakeError::SnapshotTorn { .. }) => {}
        other => panic!("truncated journal must be SnapshotTorn, got {other:?}"),
    }

    // A flipped payload byte is a typed SnapshotCorrupt via the checksum.
    let mut garbled = bytes.clone();
    let last = garbled.len() - 1;
    garbled[last] ^= 0x40;
    std::fs::write(&path, &garbled).expect("garble");
    match read_journal(&path) {
        Err(CsnakeError::SnapshotCorrupt(_)) => {}
        other => panic!("garbled journal must be SnapshotCorrupt, got {other:?}"),
    }

    std::fs::remove_file(&path).ok();
}
