//! Equivalence of the campaign analysis hot paths and their retained
//! reference implementations.
//!
//! * **FCA** — the indexed `analyze_experiment` (per-test `ProfileIndex` +
//!   per-experiment `TraceIndex`, batched Welch tests) must be
//!   *byte-identical* to `analyze_experiment_reference`: same interference
//!   set, same edges in the same order, same compatibility states. Checked
//!   over 120 seeded random experiments with adversarial shapes (flaky
//!   occurrences, unfired injections, empty profiles, nested loops) plus a
//!   full synthetic campaign.
//! * **3PA clustering** — the sparse-neighborhood agglomeration
//!   (inverted index + duplicate pre-grouping, see `tests/cluster_sparse.rs`
//!   for the property-based drill-down) must produce the same dendrogram
//!   cuts as the greedy O(n³) closest-pair reference across random vector
//!   sets and thresholds.
//! * **Driver parallelism** — running experiments on the worker pool must
//!   leave every campaign artifact bit-identical to the sequential path.
//!
//! Cases are generated from explicit seeds (SplitMix64), so a failure
//! names the exact seed that reproduces it.

use std::collections::BTreeSet;

use csnake::core::cluster::{hierarchical_cluster, hierarchical_cluster_reference};
use csnake::core::fca::{analyze_experiment, analyze_experiment_reference};
use csnake::core::idf::{IdfVectorizer, SparseVec};
use csnake::core::{DetectConfig, FcaConfig};
use csnake::inject::{
    BoolSource, BranchId, ExceptionCategory, FaultId, FaultKind, FnId, InjectionPlan, LoopState,
    Occurrence, Registry, RegistryBuilder, RunTrace, TestId,
};
use csnake::sim::VirtualTime;
use csnake_bench::campaign::{CampaignSpec, SyntheticCampaign};

/// Deterministic generator so every case reproduces from its seed alone.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((self.next() as u128 * n as u128) >> 64) as u64
    }

    fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
}

/// A random registry: throws, negations, and loops with random
/// parent/sibling structure.
fn random_registry(g: &mut Gen) -> Registry {
    let mut b = RegistryBuilder::new("equiv");
    let f = b.func("Equiv.run");
    let n_throws = 2 + g.below(6) as u32;
    let n_negations = 1 + g.below(4) as u32;
    let n_loops = 2 + g.below(6) as u32;
    for i in 0..n_throws {
        b.throw_point(f, i, "IOException", ExceptionCategory::SystemSpecific, "t");
    }
    for i in 0..n_negations {
        b.negation_point(f, 100 + i, true, BoolSource::ErrorDetector, "n");
    }
    let mut loops = Vec::new();
    for i in 0..n_loops {
        loops.push(b.workload_loop(f, 200 + i, g.chance(50), "l"));
    }
    // Random nesting: each later loop may pick an earlier parent and a
    // later sibling.
    for i in 1..loops.len() {
        if g.chance(50) {
            let p = loops[g.below(i as u64) as usize];
            b.set_parent(loops[i], p);
        }
        if i + 1 < loops.len() && g.chance(40) {
            b.set_sibling(loops[i], loops[i + 1]);
        }
    }
    b.build()
}

/// A random occurrence with a small signature pool so cross-run dedup and
/// profile/injection collisions actually happen.
fn random_occurrence(g: &mut Gen) -> Occurrence {
    let stack = [
        Some(FnId(g.below(5) as u32)),
        if g.chance(50) {
            Some(FnId(g.below(5) as u32))
        } else {
            None
        },
    ];
    let trace = if g.chance(40) {
        vec![(BranchId(g.below(3) as u32), g.chance(50))]
    } else {
        vec![]
    };
    Occurrence::new(stack, trace)
}

/// A random run trace over a registry: sparse occurrences (sometimes empty
/// lists), loop counts with occasional zero/missing entries, loop states,
/// and (for injection runs) a possibly-unfired injection.
fn random_trace(g: &mut Gen, reg: &Registry, injected: Option<FaultId>) -> RunTrace {
    let mut t = RunTrace::default();
    for p in reg.points() {
        if p.kind == FaultKind::LoopPoint {
            if g.chance(70) {
                t.loop_counts.insert(p.id, g.below(200));
                if g.chance(85) {
                    let mut st = LoopState::default();
                    for _ in 0..1 + g.below(2) {
                        st.entry_stacks
                            .insert([Some(FnId(g.below(4) as u32)), None]);
                    }
                    for _ in 0..g.below(3) {
                        st.iter_sigs.insert(g.below(6));
                    }
                    t.loop_states.insert(p.id, st);
                }
            }
            continue;
        }
        if g.chance(25) {
            let occs = t.occurrences.entry(p.id).or_default();
            for _ in 0..g.below(3) {
                occs.push(random_occurrence(g));
            }
        }
    }
    if let Some(f) = injected {
        // ~15% of injection runs fail to fire the fault.
        if g.chance(85) {
            t.injected = Some((f, random_occurrence(g)));
        }
    }
    t
}

#[test]
fn indexed_fca_matches_reference_on_random_experiments() {
    for seed in 0..120u64 {
        let mut g = Gen::new(seed);
        let reg = random_registry(&mut g);
        let n_points = reg.points().len() as u64;
        let target = FaultId(g.below(n_points) as u32);
        let plan = match reg.point(target).kind {
            FaultKind::LoopPoint => {
                InjectionPlan::delay(target, VirtualTime::from_millis(100 + g.below(900)))
            }
            FaultKind::Negation => InjectionPlan::negate(target),
            _ => InjectionPlan::throw(target),
        };
        let reps = g.below(6) as usize; // includes 0-rep edge cases
        let profile: Vec<RunTrace> = (0..1 + g.below(5))
            .map(|_| random_trace(&mut g, &reg, None))
            .collect();
        let injection: Vec<RunTrace> = (0..reps)
            .map(|_| random_trace(&mut g, &reg, Some(target)))
            .collect();
        let cfg = FcaConfig {
            p_value: [0.05, 0.1, 0.3][g.below(3) as usize],
            presence_fraction: [0.4, 0.6, 1.0][g.below(3) as usize],
        };
        let test = TestId(g.below(4) as u32);
        let phase = 1 + g.below(3) as u8;
        let fast = analyze_experiment(&reg, &profile, &injection, plan, test, phase, &cfg);
        let slow =
            analyze_experiment_reference(&reg, &profile, &injection, plan, test, phase, &cfg);
        assert_eq!(fast, slow, "seed {seed} diverged");
    }
}

#[test]
fn indexed_fca_matches_reference_on_synthetic_campaign() {
    let campaign = SyntheticCampaign::generate(&CampaignSpec::smoke());
    let reg = campaign.registry().clone();
    let cfg = FcaConfig::default();
    let mut edges = 0usize;
    for &t in &campaign.tests() {
        let profile = campaign.profile_traces(t);
        for &f in campaign.faults() {
            let injection = campaign.injection_traces(f, t);
            let plan = campaign.plan_for(f);
            let fast = analyze_experiment(&reg, &profile, &injection, plan, t, 1, &cfg);
            let slow = analyze_experiment_reference(&reg, &profile, &injection, plan, t, 1, &cfg);
            assert_eq!(fast, slow, "campaign experiment ({f}, {t}) diverged");
            edges += fast.edges.len();
        }
    }
    assert!(
        edges > 0,
        "campaign produced no edges — vacuous equivalence"
    );
}

/// Random sparse interference vectors via the real IDF pipeline.
fn random_vectors(g: &mut Gen, n: usize) -> Vec<SparseVec> {
    let pool = 4 + g.below(20);
    let docs: Vec<BTreeSet<FaultId>> = (0..n)
        .map(|_| {
            let k = g.below(5);
            (0..k).map(|_| FaultId(g.below(pool) as u32)).collect()
        })
        .collect();
    let m = IdfVectorizer::fit(&docs);
    docs.iter().map(|d| m.vectorize(d)).collect()
}

#[test]
fn sparse_clustering_matches_reference_across_thresholds() {
    let mut cases = 0;
    for seed in 0..40u64 {
        let mut g = Gen::new(0xC1_0000 + seed);
        let n = 2 + g.below(40) as usize;
        let vectors = random_vectors(&mut g, n);
        for threshold in [1e-9, 0.2, 0.5, 0.8, 1.0 + 1e-9] {
            let fast = hierarchical_cluster(&vectors, threshold);
            let slow = hierarchical_cluster_reference(&vectors, threshold);
            assert_eq!(fast, slow, "seed {seed} n {n} threshold {threshold}");
            cases += 1;
        }
    }
    assert!(cases >= 100);
}

#[test]
fn sparse_clustering_handles_duplicate_heavy_inputs() {
    // Tie-heavy inputs (duplicate and zero vectors) are where merge-order
    // freedom could bite; cuts must still match the reference.
    for seed in 0..20u64 {
        let mut g = Gen::new(0xD2_0000 + seed);
        let base = random_vectors(&mut g, 6);
        let mut vectors = Vec::new();
        for _ in 0..4 + g.below(30) {
            vectors.push(base[g.below(base.len() as u64) as usize].clone());
        }
        for threshold in [0.3, 0.6] {
            assert_eq!(
                hierarchical_cluster(&vectors, threshold),
                hierarchical_cluster_reference(&vectors, threshold),
                "seed {seed} threshold {threshold}"
            );
        }
    }
}

#[test]
fn parallel_experiment_execution_is_deterministic() {
    use csnake::core::detect;
    use csnake::targets::ToySystem;

    let target = ToySystem::new();
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800];
    cfg.driver.parallel = false;
    let sequential = detect(&target, &cfg);
    cfg.driver.parallel = true;
    let parallel = detect(&target, &cfg);

    assert_eq!(
        sequential.alloc.db.edges(),
        parallel.alloc.db.edges(),
        "worker-pool campaign produced different causal edges"
    );
    assert_eq!(sequential.alloc.outcomes, parallel.alloc.outcomes);
    assert_eq!(sequential.alloc.clusters, parallel.alloc.clusters);
    assert_eq!(sequential.alloc.sim_scores, parallel.alloc.sim_scores);
    assert_eq!(sequential.runs_executed, parallel.runs_executed);
    assert_eq!(sequential.report.cycles.len(), parallel.report.cycles.len());
}
