//! Equivalence of the indexed beam search and the reference implementation.
//!
//! The stitch-index rewrite (`csnake_core::stitch`) must be *observably
//! equivalent* to the retained straightforward search
//! (`beam_search_reference`): same cycles, same edge indices, same
//! bit-identical scores, same order — across random databases, both
//! ablation knobs (`compatibility_check: false`, `max_delay_injections`),
//! thread counts, and aggressive beam pruning.
//!
//! Databases are generated from explicit seeds (SplitMix64), so a failure
//! names the exact seed that reproduces it.

use std::collections::BTreeSet;

use csnake::core::beam::{beam_search, beam_search_reference, BeamConfig, Cycle};
use csnake::core::edge::{CausalDb, CausalEdge, CompatState, EdgeKind};
use csnake::core::StitchIndex;
use csnake::inject::{FaultId, FnId, LoopState, Occurrence, TestId};

/// Deterministic generator so every case reproduces from its seed alone.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((self.next() as u128 * n as u128) >> 64) as u64
    }
}

const KINDS: [EdgeKind; 6] = [
    EdgeKind::ED,
    EdgeKind::SD,
    EdgeKind::EI,
    EdgeKind::SI,
    EdgeKind::Icfg,
    EdgeKind::Cfg,
];

/// A random occurrence-style state: 1–3 occurrences over a small tag pool,
/// so partial signature overlaps (the interesting compatibility cases)
/// are common.
fn occ_state(g: &mut Gen, fault: u64) -> CompatState {
    let n = 1 + g.below(3);
    let occs = (0..n)
        .map(|_| {
            let tag = (fault * 4 + g.below(4)) as u32;
            Occurrence::new([Some(FnId(tag)), None], vec![])
        })
        .collect();
    CompatState::Occurrences(occs)
}

/// A random loop-style state: 1–2 entry stacks and 0–3 iteration sigs from
/// small per-fault pools.
fn loop_state(g: &mut Gen, fault: u64) -> CompatState {
    let mut st = LoopState::default();
    for _ in 0..1 + g.below(2) {
        st.entry_stacks
            .insert([Some(FnId((fault * 3 + g.below(3)) as u32)), None]);
    }
    for _ in 0..g.below(4) {
        st.iter_sigs.insert(fault * 100 + g.below(5));
    }
    CompatState::Loop(st)
}

/// Builds a random database. Each fault is consistently loop- or
/// occurrence-shaped, as in real traces.
fn random_db(seed: u64) -> CausalDb {
    let mut g = Gen::new(seed);
    let n_faults = 3 + g.below(9);
    let is_loop: Vec<bool> = (0..n_faults).map(|_| g.below(3) == 0).collect();
    let n_edges = 1 + g.below(60);
    let mut edges = Vec::new();
    for _ in 0..n_edges {
        let cause = g.below(n_faults);
        let effect = g.below(n_faults);
        let kind = KINDS[g.below(6) as usize];
        let state_of = |g: &mut Gen, f: u64| {
            if is_loop[f as usize] {
                loop_state(g, f)
            } else {
                occ_state(g, f)
            }
        };
        edges.push(CausalEdge {
            cause: FaultId(cause as u32),
            effect: FaultId(effect as u32),
            kind,
            test: TestId(g.below(3) as u32),
            phase: 1,
            cause_state: state_of(&mut g, cause),
            effect_state: state_of(&mut g, effect),
        });
    }
    CausalDb::from_edges(edges)
}

/// A seed-dependent SimScore map (injection ranking input).
fn sim_fn(seed: u64) -> impl Fn(FaultId) -> f64 + Sync {
    move |f: FaultId| ((f.0 as u64).wrapping_mul(2654435761).wrapping_add(seed) % 97) as f64 / 97.0
}

fn assert_identical(seed: u64, label: &str, fast: &[Cycle], reference: &[Cycle]) {
    assert_eq!(
        fast.len(),
        reference.len(),
        "seed {seed} [{label}]: cycle count {} vs {}",
        fast.len(),
        reference.len()
    );
    for (i, (f, r)) in fast.iter().zip(reference).enumerate() {
        assert_eq!(
            f.edges, r.edges,
            "seed {seed} [{label}]: cycle {i} edge indices differ"
        );
        assert_eq!(
            f.score.to_bits(),
            r.score.to_bits(),
            "seed {seed} [{label}]: cycle {i} score bits differ ({} vs {})",
            f.score,
            r.score
        );
    }
}

fn check_seed(seed: u64) {
    let db = random_db(seed);
    let sim = sim_fn(seed);
    let mut g = Gen::new(seed ^ 0xbeef);
    let base = BeamConfig {
        beam_size: [1, 3, 10, 10_000][g.below(4) as usize],
        max_len: 2 + g.below(4) as usize,
        max_delay_injections: None,
        threads: 1 + g.below(4) as usize,
        compatibility_check: true,
    };

    // Base config, plus both §8 ablation knobs.
    let mut configs = vec![("base", base.clone())];
    configs.push((
        "no-compat",
        BeamConfig {
            compatibility_check: false,
            ..base.clone()
        },
    ));
    configs.push((
        "delay-cap",
        BeamConfig {
            max_delay_injections: Some(g.below(3) as usize),
            ..base.clone()
        },
    ));

    // One index serves every config (both successor tables are prebuilt).
    let index = StitchIndex::build(&db, base.threads);
    for (label, cfg) in &configs {
        let fast = beam_search(&db, &sim, cfg);
        let reference = beam_search_reference(&db, &sim, cfg);
        assert_identical(seed, label, &fast, &reference);
        let indexed = index.search(&sim, cfg);
        assert_identical(seed, &format!("{label}/prebuilt"), &indexed, &reference);
    }
}

#[test]
fn indexed_search_matches_reference_on_random_dbs() {
    // ≥ 200 random databases, 3 configs each (base + both ablations), each
    // checked through both the convenience entry point and a prebuilt index.
    for seed in 0..250u64 {
        check_seed(seed);
    }
}

#[test]
fn equivalence_holds_under_heavy_beam_pruning() {
    // Tiny beams exercise the select_nth + stable-order path hard: the
    // boundary between kept and dropped chains moves every level.
    for seed in 0..64u64 {
        let db = random_db(seed.wrapping_mul(7919).wrapping_add(13));
        let sim = sim_fn(seed);
        for beam_size in [1usize, 2, 5] {
            let cfg = BeamConfig {
                beam_size,
                max_len: 5,
                max_delay_injections: None,
                threads: 2,
                compatibility_check: true,
            };
            let fast = beam_search(&db, &sim, &cfg);
            let reference = beam_search_reference(&db, &sim, &cfg);
            assert_identical(seed, &format!("beam={beam_size}"), &fast, &reference);
        }
    }
}

#[test]
fn equivalence_is_thread_count_invariant() {
    // The pooled parallel expansion must reassemble results in chunk order;
    // any ordering leak shows up as a diff between thread counts.
    for seed in [3u64, 17, 41, 99] {
        let db = random_db(seed);
        let sim = sim_fn(seed);
        let single = beam_search(
            &db,
            &sim,
            &BeamConfig {
                threads: 1,
                ..BeamConfig::default()
            },
        );
        for threads in [2usize, 4, 8] {
            let multi = beam_search(
                &db,
                &sim,
                &BeamConfig {
                    threads,
                    ..BeamConfig::default()
                },
            );
            assert_identical(seed, &format!("threads={threads}"), &multi, &single);
        }
    }
}

#[test]
fn reported_cycles_are_well_formed() {
    // Structural invariants on the indexed search's output (mirrors the
    // long-standing property test, but through the new path): closure,
    // connectivity, bounded length, no duplicate structural keys.
    for seed in 0..64u64 {
        let db = random_db(seed.wrapping_add(10_000));
        let cfg = BeamConfig::default();
        let cycles = beam_search(&db, &|_| 0.5, &cfg);
        let mut seen: BTreeSet<Vec<(FaultId, FaultId, u8)>> = BTreeSet::new();
        for c in &cycles {
            assert!(!c.edges.is_empty() && c.edges.len() <= cfg.max_len);
            for w in c.edges.windows(2) {
                assert_eq!(db.edge(w[0]).effect, db.edge(w[1]).cause, "seed {seed}");
            }
            let first = db.edge(c.edges[0]);
            let last = db.edge(*c.edges.last().unwrap());
            assert_eq!(last.effect, first.cause, "seed {seed}: not closed");
            let mut key: Vec<(FaultId, FaultId, u8)> = c
                .edges
                .iter()
                .map(|&i| {
                    let e = db.edge(i);
                    (e.cause, e.effect, e.kind as u8)
                })
                .collect();
            key.sort_unstable();
            assert!(seen.insert(key), "seed {seed}: structural duplicate");
        }
    }
}
