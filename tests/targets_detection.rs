//! End-to-end detection smoke tests on the smaller paper targets.
//!
//! The full five-system campaign lives in the `table3` bench binary; here
//! the fast targets run in CI-sized time and assert that their seeded bugs
//! are detected by causal stitching.

use csnake::core::{detect, DetectConfig};
use csnake::targets::{MiniFlink, MiniHBase, MiniOzone};

fn cfg() -> DetectConfig {
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800, 3200];
    cfg.alloc.budget_per_fault = 12;
    cfg
}

#[test]
fn hbase_detects_both_seeded_bugs() {
    let target = MiniHBase::new();
    let d = detect(&target, &cfg());
    let found: Vec<&str> = d.report.matches.iter().map(|m| m.bug.id).collect();
    assert!(
        found.contains(&"hbase-wal-replay"),
        "undetected: {:?}",
        d.report.undetected
    );
    assert!(
        found.contains(&"hbase-region-retry"),
        "undetected: {:?}",
        d.report.undetected
    );
    // The WAL cycle is 1 delay + 1 negation, as in Table 3.
    let wal = d
        .report
        .matches
        .iter()
        .find(|m| m.bug.id == "hbase-wal-replay")
        .unwrap();
    assert_eq!(wal.composition.delays, 1);
    assert_eq!(wal.composition.negations, 1);
    assert_eq!(wal.composition.exceptions, 0);
}

#[test]
fn flink_detects_both_seeded_bugs() {
    let target = MiniFlink::new();
    let d = detect(&target, &cfg());
    let found: Vec<&str> = d.report.matches.iter().map(|m| m.bug.id).collect();
    assert!(
        found.contains(&"flink-task-worker"),
        "undetected: {:?}",
        d.report.undetected
    );
    assert!(
        found.contains(&"flink-aggregation"),
        "undetected: {:?}",
        d.report.undetected
    );
    for m in &d.report.matches {
        // Both Flink rows are 1D | 2E | 0N in Table 3.
        assert_eq!(m.composition.delays, 1, "{}", m.bug.id);
        assert_eq!(m.composition.exceptions, 2, "{}", m.bug.id);
        assert_eq!(m.composition.negations, 0, "{}", m.bug.id);
    }
}

#[test]
fn ozone_detects_all_three_seeded_bugs() {
    let target = MiniOzone::new();
    let d = detect(&target, &cfg());
    let found: Vec<&str> = d.report.matches.iter().map(|m| m.bug.id).collect();
    for bug in [
        "ozone-report-queue",
        "ozone-heartbeat-pipeline",
        "ozone-replication-cmd",
    ] {
        assert!(
            found.contains(&bug),
            "missing {bug}; undetected: {:?}",
            d.report.undetected
        );
    }
}

#[test]
fn detection_is_reproducible_for_a_fixed_seed() {
    let target = MiniOzone::new();
    let a = detect(&target, &cfg());
    let b = detect(&target, &cfg());
    assert_eq!(a.alloc.experiments_run, b.alloc.experiments_run);
    assert_eq!(a.alloc.db.len(), b.alloc.db.len());
    assert_eq!(a.report.cycles.len(), b.report.cycles.len());
    let ids_a: Vec<&str> = a.report.matches.iter().map(|m| m.bug.id).collect();
    let ids_b: Vec<&str> = b.report.matches.iter().map(|m| m.bug.id).collect();
    assert_eq!(ids_a, ids_b);
}

#[test]
fn budget_accounting_matches_protocol() {
    let target = MiniOzone::new();
    let d = detect(&target, &cfg());
    let budget = 12 * d.analysis.injectable.len();
    assert_eq!(d.alloc.budget, budget);
    assert!(d.alloc.experiments_run <= budget);
    // Every experiment belongs to an injectable fault.
    for o in &d.alloc.outcomes {
        assert!(d.analysis.injectable.contains(&o.fault));
    }
}
