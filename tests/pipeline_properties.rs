//! Property-based tests on the core pipeline invariants.

use std::collections::BTreeSet;

use csnake::core::beam::{beam_search, BeamConfig};
use csnake::core::cluster::hierarchical_cluster;
use csnake::core::edge::{CausalDb, CausalEdge, CompatState, EdgeKind};
use csnake::core::idf::{cosine_distance, IdfVectorizer};
use csnake::core::stats::{t_sf, welch_one_sided_p};
use csnake::inject::{fnv1a, FaultId, FnId, Occurrence, TestId};
use proptest::prelude::*;

fn doc_strategy() -> impl Strategy<Value = BTreeSet<FaultId>> {
    proptest::collection::btree_set((0u32..40).prop_map(FaultId), 0..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn idf_vectors_are_unit_or_zero(docs in proptest::collection::vec(doc_strategy(), 1..30)) {
        let m = IdfVectorizer::fit(&docs);
        for d in &docs {
            let v = m.vectorize(d);
            let norm = v.norm();
            prop_assert!(v.is_zero() || (norm - 1.0).abs() < 1e-9, "norm = {norm}");
        }
    }

    #[test]
    fn cosine_distance_is_bounded_and_symmetric(
        docs in proptest::collection::vec(doc_strategy(), 2..20)
    ) {
        let m = IdfVectorizer::fit(&docs);
        let vs: Vec<_> = docs.iter().map(|d| m.vectorize(d)).collect();
        for a in &vs {
            for b in &vs {
                let d1 = cosine_distance(a, b);
                let d2 = cosine_distance(b, a);
                prop_assert!((0.0..=1.0).contains(&d1), "{d1}");
                prop_assert!((d1 - d2).abs() < 1e-12);
            }
            prop_assert!(cosine_distance(a, a) < 1e-9);
        }
    }

    #[test]
    fn clustering_is_a_partition(
        docs in proptest::collection::vec(doc_strategy(), 1..40),
        threshold in 0.0f64..1.0
    ) {
        let m = IdfVectorizer::fit(&docs);
        let vs: Vec<_> = docs.iter().map(|d| m.vectorize(d)).collect();
        let c = hierarchical_cluster(&vs, threshold);
        prop_assert_eq!(c.assignment.len(), docs.len());
        prop_assert!(c.n_clusters >= 1);
        prop_assert!(c.n_clusters <= docs.len());
        for &a in &c.assignment {
            prop_assert!(a < c.n_clusters);
        }
        // Every cluster id is used.
        let used: BTreeSet<usize> = c.assignment.iter().copied().collect();
        prop_assert_eq!(used.len(), c.n_clusters);
    }

    #[test]
    fn welch_p_is_a_probability(
        a in proptest::collection::vec(0.0f64..1e6, 2..8),
        b in proptest::collection::vec(0.0f64..1e6, 2..8)
    ) {
        let p = welch_one_sided_p(&a, &b);
        prop_assert!((0.0..=1.0).contains(&p), "{p}");
        // Complementarity with swapped samples (up to the point mass at
        // equal means).
        let q = welch_one_sided_p(&b, &a);
        prop_assert!((0.0..=1.0).contains(&q));
    }

    #[test]
    fn t_sf_is_monotone_decreasing(df in 1.0f64..100.0) {
        let mut last = 1.0;
        for i in 0..20 {
            let t = i as f64 * 0.5;
            let s = t_sf(t, df);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!(s <= last + 1e-12);
            last = s;
        }
    }

    #[test]
    fn fnv1a_distinguishes_inputs(xs in proptest::collection::vec(0u64..1000, 0..20),
                                  ys in proptest::collection::vec(0u64..1000, 0..20)) {
        let hx = fnv1a(xs.clone());
        let hy = fnv1a(ys.clone());
        if xs == ys {
            prop_assert_eq!(hx, hy);
        }
        prop_assert_eq!(hx, fnv1a(xs));
        prop_assert_eq!(hy, fnv1a(ys));
    }
}

/// Random small causal graphs: every reported cycle must be genuinely
/// connected, closed, and within the configured bounds.
fn edge_strategy() -> impl Strategy<Value = (u32, u32, u32, u32)> {
    // (cause, effect, cause_state_tag, effect_state_tag)
    (0u32..8, 0u32..8, 0u32..3, 0u32..3)
}

fn mk_edge(cause: u32, effect: u32, cs: u32, es: u32) -> CausalEdge {
    let state = |fault: u32, tag: u32| {
        CompatState::Occurrences(vec![Occurrence::new(
            [Some(FnId(fault * 4 + tag)), None],
            vec![],
        )])
    };
    CausalEdge {
        cause: FaultId(cause),
        effect: FaultId(effect),
        kind: EdgeKind::EI,
        test: TestId(0),
        phase: 1,
        cause_state: state(cause, cs),
        effect_state: state(effect, es),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn beam_cycles_are_closed_and_bounded(
        raw in proptest::collection::vec(edge_strategy(), 1..40),
        max_len in 2usize..5
    ) {
        let edges: Vec<CausalEdge> =
            raw.iter().map(|&(c, e, cs, es)| mk_edge(c, e, cs, es)).collect();
        let db = CausalDb::from_edges(edges);
        let cfg = BeamConfig {
            beam_size: 10_000,
            max_len,
            ..BeamConfig::default()
        };
        let cycles = beam_search(&db, &|_| 0.5, &cfg);
        for cycle in &cycles {
            prop_assert!(cycle.edges.len() <= max_len);
            // Connectivity: each edge's effect is the next edge's cause.
            for w in cycle.edges.windows(2) {
                prop_assert_eq!(db.edge(w[0]).effect, db.edge(w[1]).cause);
            }
            // Closure: the last edge's effect is the first edge's cause.
            let first = db.edge(cycle.edges[0]);
            let last = db.edge(*cycle.edges.last().unwrap());
            prop_assert_eq!(last.effect, first.cause);
            // Scores are valid.
            prop_assert!(cycle.score.is_finite());
        }
    }

    #[test]
    fn delay_cap_never_increases_cycle_count(
        raw in proptest::collection::vec(edge_strategy(), 1..30)
    ) {
        // Make a mix of delay-cause and exception-cause edges.
        let edges: Vec<CausalEdge> = raw
            .iter()
            .enumerate()
            .map(|(i, &(c, e, cs, es))| {
                let mut edge = mk_edge(c, e, cs, es);
                if i % 2 == 0 {
                    edge.kind = EdgeKind::ED;
                }
                edge
            })
            .collect();
        let db = CausalDb::from_edges(edges);
        let unlimited = beam_search(&db, &|_| 0.5, &BeamConfig::default()).len();
        let capped = beam_search(
            &db,
            &|_| 0.5,
            &BeamConfig {
                max_delay_injections: Some(1),
                ..BeamConfig::default()
            },
        )
        .len();
        prop_assert!(capped <= unlimited, "capped {capped} > unlimited {unlimited}");
    }
}
