//! Full-campaign tests on the two HDFS targets.
//!
//! These run the complete pipeline with the evaluation budget and take tens
//! of seconds in release mode, so they are `#[ignore]`d by default:
//!
//! ```sh
//! cargo test --release --test hdfs_full_campaign -- --ignored
//! ```

use csnake::core::{detect, DetectConfig};
use csnake::targets::{MiniHdfs2, MiniHdfs3};

fn cfg() -> DetectConfig {
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800, 3200];
    cfg.alloc.budget_per_fault = 12;
    cfg
}

#[test]
#[ignore = "full campaign: ~15s in release, minutes in debug"]
fn hdfs2_detects_all_six_seeded_bugs() {
    let target = MiniHdfs2::new();
    let d = detect(&target, &cfg());
    let found: Vec<&str> = d.report.matches.iter().map(|m| m.bug.id).collect();
    for bug in [
        "hdfs2-lease-recovery",
        "hdfs2-editlog-failover",
        "hdfs2-block-recovery",
        "hdfs2-write-pipeline",
        "hdfs2-block-cache",
        "hdfs2-ibr-throttle",
    ] {
        assert!(
            found.contains(&bug),
            "missing {bug}; undetected: {:?}",
            d.report.undetected
        );
    }
    // Every matched cycle uses exactly one delay injection (Table 3 shape).
    for m in &d.report.matches {
        assert_eq!(m.composition.delays, 1, "{}", m.bug.id);
    }
}

#[test]
#[ignore = "full campaign: ~15s in release, minutes in debug"]
fn hdfs3_detects_v3_bugs_and_shared_ibr_throttle() {
    let target = MiniHdfs3::new();
    let d = detect(&target, &cfg());
    let found: Vec<&str> = d.report.matches.iter().map(|m| m.bug.id).collect();
    for bug in [
        "hdfs3-block-deletion",
        "hdfs3-reconstruction-ibr",
        "hdfs2-ibr-throttle",
    ] {
        assert!(
            found.contains(&bug),
            "missing {bug}; undetected: {:?}",
            d.report.undetected
        );
    }
    // The reconstruction bug is the paper's only 2-delay cycle.
    let recon = d
        .report
        .matches
        .iter()
        .find(|m| m.bug.id == "hdfs3-reconstruction-ibr")
        .unwrap();
    assert_eq!(recon.composition.delays, 2);
    assert_eq!(recon.composition.negations, 1);
}
