//! The sparse-neighborhood clustering against its retained references.
//!
//! Property tests drive the sparse inverted-index agglomeration
//! (`hierarchical_cluster`) against the greedy O(n³) closest-pair
//! reference over random vector sets — including the adversarial shapes
//! the sparse formulation special-cases: exact-duplicate-heavy inputs
//! (pre-grouped before edge generation) and all-zero vectors (distance
//! 0 to each other, exactly 1 to everything else). At a scale where the
//! reference is unaffordable, `verify_cut_quality` checks the bounds
//! that define a correct average-linkage cut instead: mean intra-cluster
//! distance < θ, mean distance between shared-dimension cluster pairs
//! ≥ θ, and connectivity of every cluster under candidate edges.

use std::collections::BTreeSet;

use csnake::core::cluster::{
    hierarchical_cluster, hierarchical_cluster_reference, hierarchical_cluster_with_stats,
    hierarchical_cluster_with_stats_capped, verify_cut_quality,
};
use csnake::core::idf::IdfVectorizer;
use csnake::inject::FaultId;
use csnake_bench::campaign::synthetic_vectors;
use proptest::prelude::*;

fn doc_strategy() -> impl Strategy<Value = BTreeSet<FaultId>> {
    // A small dimension pool keeps the inputs dense in shared dimensions,
    // which is where candidate generation and tie-breaking are stressed.
    proptest::collection::btree_set((0u32..24).prop_map(FaultId), 0..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sparse_matches_reference_on_random_inputs(
        docs in proptest::collection::vec(doc_strategy(), 1..40),
        threshold in 0.0f64..1.2
    ) {
        let m = IdfVectorizer::fit(&docs);
        let vs: Vec<_> = docs.iter().map(|d| m.vectorize(d)).collect();
        prop_assert_eq!(
            hierarchical_cluster(&vs, threshold),
            hierarchical_cluster_reference(&vs, threshold),
            "threshold {}", threshold
        );
    }

    #[test]
    fn sparse_matches_reference_on_tie_heavy_inputs(
        base in proptest::collection::vec(doc_strategy(), 2..8),
        picks in proptest::collection::vec(0usize..8, 4..48),
        threshold in 0.0f64..1.0
    ) {
        // Duplicate-heavy inputs maximise distance ties, where merge-order
        // freedom could diverge; the duplicate pre-grouping must still
        // reproduce the reference's cuts exactly.
        let m = IdfVectorizer::fit(&base);
        let pool: Vec<_> = base.iter().map(|d| m.vectorize(d)).collect();
        let vs: Vec<_> = picks.iter().map(|&i| pool[i % pool.len()].clone()).collect();
        prop_assert_eq!(
            hierarchical_cluster(&vs, threshold),
            hierarchical_cluster_reference(&vs, threshold),
            "threshold {}", threshold
        );
    }

    #[test]
    fn sparse_matches_reference_with_zero_vectors(
        docs in proptest::collection::vec(doc_strategy(), 1..24),
        zeros in 1usize..12,
        threshold in 0.0f64..1.0
    ) {
        // All-zero vectors (faults whose interference lists vanish after
        // IDF weighting) sit at distance 0 from each other and exactly 1
        // from every non-zero vector; both implementations must merge the
        // zeros together and keep them apart from everything else.
        let mut docs = docs;
        for _ in 0..zeros {
            docs.push(BTreeSet::new());
        }
        let m = IdfVectorizer::fit(&docs);
        let vs: Vec<_> = docs.iter().map(|d| m.vectorize(d)).collect();
        prop_assert_eq!(
            hierarchical_cluster(&vs, threshold),
            hierarchical_cluster_reference(&vs, threshold),
            "threshold {}", threshold
        );
    }

    #[test]
    fn capped_hot_dimensions_match_reference_on_random_inputs(
        docs in proptest::collection::vec(doc_strategy(), 1..32),
        hot_cap in 0usize..4,
        threshold in 0.0f64..1.2
    ) {
        // The hot-posting cap is a performance knob, not an approximation:
        // forcing dimensions hot on reference-sized inputs (cap 0 = every
        // dimension; tiny caps = a mix) must reproduce the reference cut
        // exactly — including pairs reachable only through hot dimensions,
        // which the Cauchy–Schwarz sweep has to recover.
        let m = IdfVectorizer::fit(&docs);
        let vs: Vec<_> = docs.iter().map(|d| m.vectorize(d)).collect();
        let (capped, _) = hierarchical_cluster_with_stats_capped(&vs, threshold, hot_cap);
        prop_assert_eq!(
            capped,
            hierarchical_cluster_reference(&vs, threshold),
            "threshold {} cap {}", threshold, hot_cap
        );
    }
}

#[test]
fn near_ubiquitous_dimension_is_capped_at_scale() {
    // The candidate-generation worst case: one dimension shared by ~90%
    // of 3000 otherwise-nearly-disjoint vectors. The default cap
    // (posting list > max(256, groups/8)) marks it hot, so the candidate
    // graph is driven by the rare dimensions — and the cut still equals
    // the uncapped run's bit-for-bit.
    let vectors = csnake_bench::campaign::hot_dimension_vectors(3000, 0xB0B);
    let (capped, stats) = hierarchical_cluster_with_stats(&vectors, 0.5);
    assert!(
        stats.hot_dims >= 1,
        "the shared dimension must trip the default cap: {stats:?}"
    );
    let quadratic = stats.groups * (stats.groups - 1) / 2;
    assert!(
        stats.candidate_edges < quadratic / 50,
        "hot capping must keep the graph far from quadratic: {} of {} pairs",
        stats.candidate_edges,
        quadratic
    );
    verify_cut_quality(&vectors, &capped, 0.5, 64).expect("capped cut quality");
    // Exactness at scale: an absurd cap disables hot handling entirely
    // and pays the full posting-list square — same cut.
    let (uncapped, ustats) = hierarchical_cluster_with_stats_capped(&vectors, 0.5, usize::MAX);
    assert_eq!(ustats.hot_dims, 0);
    assert!(
        ustats.candidate_edges > stats.candidate_edges * 50,
        "worst case must actually be quadratic uncapped: {} vs {}",
        ustats.candidate_edges,
        stats.candidate_edges
    );
    assert_eq!(
        capped, uncapped,
        "the cap must not change the dendrogram cut"
    );
}

#[test]
fn large_input_cut_quality_is_verified() {
    // Past reference scale: the cut-quality bounds stand in for exact
    // equivalence. 3000 synthetic vectors with the duplicate/mutant mix
    // the campaign benchmark uses.
    let vectors = synthetic_vectors(3000, 0xC577);
    for threshold in [0.3, 0.5, 0.8] {
        let (clustering, stats) = hierarchical_cluster_with_stats(&vectors, threshold);
        assert!(
            stats.sparse_graph_bytes < stats.matrix_bytes,
            "sparse working set must undercut the dense matrix: {} vs {}",
            stats.sparse_graph_bytes,
            stats.matrix_bytes
        );
        verify_cut_quality(&vectors, &clustering, threshold, 64)
            .unwrap_or_else(|e| panic!("cut quality at threshold {threshold}: {e}"));
    }
}

#[test]
fn all_zero_corpus_collapses_to_one_cluster() {
    // Zero vectors sit at distance 0 from each other (and exactly 1 from
    // everything else); an all-zero corpus is one exact-duplicate group,
    // which the sparse path collapses before edge generation.
    let docs: Vec<BTreeSet<FaultId>> = vec![BTreeSet::new(); 50];
    let m = IdfVectorizer::fit(&docs);
    let vs: Vec<_> = docs.iter().map(|d| m.vectorize(d)).collect();
    let c = hierarchical_cluster(&vs, 0.999);
    assert_eq!(c, hierarchical_cluster_reference(&vs, 0.999));
    assert_eq!(c.n_clusters, 1);
}
