//! The staged `Session` API must be *exactly* the old one-shot pipeline:
//!
//! * `detect()` (now a shim over a session) ≡ an explicitly staged session
//!   ≡ a session checkpointed to a `.csnake` snapshot and resumed — at
//!   every stage boundary (post-profile, post-allocate, post-stitch) — on
//!   the toy and mini-HDFS2 targets, compared field by field down to the
//!   `Debug` rendering of the final `DetectionReport`.
//! * Snapshot integrity failures (corruption, version bumps, wrong target)
//!   surface as typed errors, never as panics or silently-wrong campaigns.

use std::path::PathBuf;
use std::sync::Arc;

use csnake::core::{
    detect, CsnakeError, DetectConfig, Detection, ProgressCollector, Session, Stage, TargetSystem,
    ThreePhase,
};
use csnake::targets::{MiniHdfs2, ToySystem};

fn toy_config() -> DetectConfig {
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800];
    cfg
}

/// A deliberately small mini-HDFS2 campaign: equivalence holds at any
/// scale, and the snapshot/restore machinery is exercised identically.
fn hdfs_config() -> DetectConfig {
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 2;
    cfg.driver.delay_values_ms = vec![800];
    cfg.alloc.budget_per_fault = 2;
    cfg
}

/// Field-by-field comparison of two detections, down to the Debug
/// rendering of the report (cycles, clusters, verdicts, matches, scores).
fn assert_detections_identical(a: &Detection, b: &Detection, what: &str) {
    assert_eq!(a.runs_executed, b.runs_executed, "{what}: runs_executed");
    assert_eq!(
        format!("{:?}", a.analysis),
        format!("{:?}", b.analysis),
        "{what}: analysis"
    );
    assert_eq!(
        a.alloc.db.edges(),
        b.alloc.db.edges(),
        "{what}: causal database"
    );
    assert_eq!(a.alloc.outcomes, b.alloc.outcomes, "{what}: outcomes");
    assert_eq!(a.alloc.clusters, b.alloc.clusters, "{what}: fault clusters");
    assert_eq!(
        a.alloc
            .sim_scores
            .iter()
            .map(|s| s.to_bits())
            .collect::<Vec<_>>(),
        b.alloc
            .sim_scores
            .iter()
            .map(|s| s.to_bits())
            .collect::<Vec<_>>(),
        "{what}: sim scores"
    );
    assert_eq!(
        a.alloc.experiments_run, b.alloc.experiments_run,
        "{what}: experiments_run"
    );
    assert_eq!(a.alloc.budget, b.alloc.budget, "{what}: budget");
    assert_eq!(
        format!("{:?}", a.report),
        format!("{:?}", b.report),
        "{what}: detection report"
    );
}

/// Runs the campaign as an explicitly staged session.
fn staged(target: &dyn TargetSystem, cfg: &DetectConfig) -> Detection {
    let mut session = Session::builder(target)
        .config(cfg.clone())
        .build()
        .expect("drivable");
    session.profile().expect("profile");
    session
        .allocate(&ThreePhase::new(cfg.alloc.clone()))
        .expect("allocate");
    session.stitch().expect("stitch");
    session.report().expect("report");
    session.into_detection().expect("reported")
}

/// Runs the campaign, checkpointing+resuming at the given stage boundary.
fn resumed_at(target: &dyn TargetSystem, cfg: &DetectConfig, boundary: Stage) -> Detection {
    let path = snapshot_path(target.name(), boundary);
    {
        let mut session = Session::builder(target)
            .config(cfg.clone())
            .build()
            .expect("drivable");
        session.profile().expect("profile");
        if boundary >= Stage::Allocated {
            session
                .allocate(&ThreePhase::new(cfg.alloc.clone()))
                .expect("allocate");
        }
        if boundary >= Stage::Stitched {
            session.stitch().expect("stitch");
        }
        session.checkpoint(&path).expect("checkpoint");
        // The writing session is dropped here — everything after this point
        // happens in the resumed session.
    }
    let mut session = Session::resume(target, &path).expect("resume");
    assert_eq!(session.stage(), boundary, "resume restores the stage");
    std::fs::remove_file(&path).ok();
    if boundary < Stage::Allocated {
        session
            .allocate(&ThreePhase::new(cfg.alloc.clone()))
            .expect("allocate after resume");
    }
    if boundary < Stage::Stitched {
        session.stitch().expect("stitch after resume");
    }
    session.report().expect("report after resume");
    session.into_detection().expect("reported")
}

fn snapshot_path(target: &str, boundary: Stage) -> PathBuf {
    std::env::temp_dir().join(format!(
        "csnake-equivalence-{target}-{boundary:?}-{}.csnake",
        std::process::id()
    ))
}

fn assert_equivalent_everywhere(target: &dyn TargetSystem, cfg: &DetectConfig) {
    let shim = detect(target, cfg);
    let staged_run = staged(target, cfg);
    assert_detections_identical(&shim, &staged_run, "shim vs staged");
    for boundary in [Stage::Profiled, Stage::Allocated, Stage::Stitched] {
        let resumed = resumed_at(target, cfg, boundary);
        assert_detections_identical(&shim, &resumed, &format!("shim vs resumed@{boundary:?}"));
    }
}

#[test]
fn toy_shim_staged_and_resumed_sessions_are_bit_identical() {
    let target = ToySystem::new();
    assert_equivalent_everywhere(&target, &toy_config());
}

#[test]
fn hdfs2_shim_staged_and_resumed_sessions_are_bit_identical() {
    let target = MiniHdfs2::new();
    assert_equivalent_everywhere(&target, &hdfs_config());
}

#[test]
fn observers_do_not_perturb_campaign_results() {
    let target = ToySystem::new();
    let cfg = toy_config();
    let unobserved = detect(&target, &cfg);

    let progress = Arc::new(ProgressCollector::new());
    let mut session = Session::builder(&target)
        .config(cfg.clone())
        .observer(progress.clone())
        .build()
        .expect("drivable");
    session
        .run_to_report(&ThreePhase::new(cfg.alloc.clone()))
        .expect("full run");
    let observed = session.into_detection().expect("reported");

    assert_detections_identical(&unobserved, &observed, "unobserved vs observed");
    let seen = progress.snapshot();
    assert_eq!(seen.experiments, observed.alloc.experiments_run);
    assert_eq!(seen.edges, observed.alloc.db.len());
    assert_eq!(seen.cycles, observed.report.cycles.len());
    assert_eq!(seen.stages_finished, 4);
}

#[test]
fn corrupted_snapshot_is_rejected_with_a_typed_error() {
    let target = ToySystem::new();
    let cfg = toy_config();
    let mut session = Session::builder(&target)
        .config(cfg)
        .build()
        .expect("drivable");
    session.profile().expect("profile");
    let bytes = session.snapshot().to_bytes();

    // Flip one payload byte: checksum catches it.
    let mut corrupt = bytes.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0x55;
    match csnake::core::Snapshot::from_bytes(&corrupt) {
        Err(CsnakeError::SnapshotCorrupt(_)) => {}
        other => panic!("expected SnapshotCorrupt, got {other:?}"),
    }

    // Bump the header version: typed version error.
    let mut wrong_version = bytes.clone();
    wrong_version[4..8].copy_from_slice(&(csnake::core::SNAPSHOT_VERSION + 7).to_le_bytes());
    match csnake::core::Snapshot::from_bytes(&wrong_version) {
        Err(CsnakeError::SnapshotVersion { found, supported }) => {
            assert_eq!(found, csnake::core::SNAPSHOT_VERSION + 7);
            assert_eq!(supported, csnake::core::SNAPSHOT_VERSION);
        }
        other => panic!("expected SnapshotVersion, got {other:?}"),
    }

    // Resume a valid toy snapshot against the wrong target: typed mismatch.
    let snap = csnake::core::Snapshot::from_bytes(&bytes).expect("valid snapshot");
    let hdfs = MiniHdfs2::new();
    match Session::from_snapshot(&hdfs, snap, Arc::new(csnake::core::NoopObserver)) {
        Err(CsnakeError::TargetMismatch { snapshot, actual }) => {
            assert_eq!(snapshot, "toy");
            assert_eq!(actual, "mini-hdfs2");
        }
        other => panic!(
            "expected TargetMismatch, got {:?}",
            other.map(|s| s.stage())
        ),
    }
}
