//! Facade crate re-exporting the CSnake workspace.
pub use csnake_analyzer as analyzer;
pub use csnake_baselines as baselines;
pub use csnake_core as core;
pub use csnake_inject as inject;
pub use csnake_scenario as scenario;
pub use csnake_sim as sim;
pub use csnake_targets as targets;
pub use csnake_telemetry as telemetry;
pub use csnake_workload as workload;
